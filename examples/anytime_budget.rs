//! The anytime engine of Section 5.1: quality under a time budget.
//!
//! Atlas should feel instantaneous. On large working sets the anytime engine
//! runs the pipeline on growing samples, so the analyst gets a usable map in
//! milliseconds and a refined one if they wait. This example prints each
//! iteration: sample size, elapsed time, the attributes of the best map, and
//! how close its covers are to the exact (full-data) answer.
//!
//! Run with: `cargo run --release --example anytime_budget`

use atlas::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let table = Arc::new(CensusGenerator::with_rows(200_000, 99).generate());
    println!("loaded table: {table}");

    let config = AnytimeConfig {
        initial_sample: 1_000,
        growth_factor: 4.0,
        budget: Duration::from_millis(2_000),
        ..AnytimeConfig::default()
    };
    let anytime = AnytimeAtlas::new(Arc::clone(&table), config).expect("valid configuration");

    let query = ConjunctiveQuery::all("census");
    let outcome = anytime.run(&query).expect("anytime run succeeds");

    // The exact answer, for reference (what an unbounded run would return).
    let exact = Atlas::with_defaults(Arc::clone(&table))
        .expect("valid configuration")
        .explore(&query)
        .expect("exact exploration succeeds");
    let exact_best = exact.best().expect("at least one exact map");
    let exact_covers = exact_best.map.covers(exact.working_set_size);

    println!(
        "{:<12} {:>10} {:>12} {:>28} {:>16}",
        "iteration", "sample", "elapsed(ms)", "best map attributes", "max cover error"
    );
    for (i, iteration) in outcome.iterations.iter().enumerate() {
        let best = iteration
            .result
            .best()
            .expect("at least one map per iteration");
        let covers = best.map.covers(iteration.result.working_set_size);
        let max_error = covers
            .iter()
            .zip(exact_covers.iter())
            .map(|(a, e)| (a - e).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{:<12} {:>10} {:>12.1} {:>28} {:>16.4}",
            i,
            iteration.sample_size,
            iteration.elapsed.as_secs_f64() * 1000.0,
            best.map.source_attributes.join(","),
            max_error
        );
    }
    println!(
        "\nreached full data: {} (working set {} tuples)",
        outcome.reached_full_data, outcome.working_set_size
    );
    println!(
        "exact engine took {:.1} ms end-to-end for comparison",
        exact.timings.total_ms
    );
}
