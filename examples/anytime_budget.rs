//! The anytime exploration of Section 5.1: quality under a time budget.
//!
//! Atlas should feel instantaneous. On large working sets the engine's
//! `explore_iter` runs the pipeline on growing samples, so the analyst gets a
//! usable map in milliseconds and a refined one if they wait. Since the
//! prepared-engine redesign there is no separate anytime engine: the same
//! `Atlas` that answers exact queries streams approximate iterations when
//! given `ExploreOptions` with a budget. This example consumes the stream
//! live, printing each iteration as it is produced: sample size, elapsed
//! time, the attributes of the best map, and how close its covers are to the
//! exact (full-data) answer.
//!
//! Run with: `cargo run --release --example anytime_budget`

use atlas::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let table = Arc::new(CensusGenerator::with_rows(200_000, 99).generate());
    println!("loaded table: {table}");

    // One prepared engine serves both the exact and the anytime exploration.
    let atlas = Atlas::builder(Arc::clone(&table))
        .build()
        .expect("valid configuration");
    let query = ConjunctiveQuery::all("census");

    // The exact answer, for reference (what an unbounded run would return).
    let exact = atlas.explore(&query).expect("exact exploration succeeds");
    let exact_best = exact.best().expect("at least one exact map");
    let exact_covers = exact_best.map.covers(exact.working_set_size);

    let options = ExploreOptions {
        initial_sample: 1_000,
        growth_factor: 4.0,
        budget: Some(Duration::from_millis(2_000)),
        ..ExploreOptions::default()
    };

    println!(
        "{:<12} {:>10} {:>12} {:>28} {:>16}",
        "iteration", "sample", "elapsed(ms)", "best map attributes", "max cover error"
    );
    let mut reached_full = false;
    let mut working_set_size = 0;
    for (i, step) in atlas
        .explore_iter(&query, options)
        .expect("anytime iterator starts")
        .enumerate()
    {
        let iteration = step.expect("iteration succeeds");
        let best = iteration
            .result
            .best()
            .expect("at least one map per iteration");
        let covers = best.map.covers(iteration.result.working_set_size);
        let max_error = covers
            .iter()
            .zip(exact_covers.iter())
            .map(|(a, e)| (a - e).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{:<12} {:>10} {:>12.1} {:>28} {:>16.4}",
            i,
            iteration.sample_size,
            iteration.elapsed.as_secs_f64() * 1000.0,
            best.map.source_attributes.join(","),
            max_error
        );
        reached_full = iteration.sample_size == exact.working_set_size;
        working_set_size = exact.working_set_size;
    }
    println!("\nreached full data: {reached_full} (working set {working_set_size} tuples)");
    println!(
        "exact engine took {:.1} ms end-to-end for comparison",
        exact.timings.total_ms
    );
}
