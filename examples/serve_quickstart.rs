//! Serving Atlas: boot the exploration server on an ephemeral port, drive
//! one full exploration over a real socket, and shut down cleanly.
//!
//! Run with: `cargo run --example serve_quickstart`

use atlas::prelude::*;
use atlas::serve::wire::Json;
use atlas::serve::Client;
use std::sync::Arc;

fn main() {
    // 1. Register a dataset and boot the server (port 0 = ephemeral).
    let table = Arc::new(CensusGenerator::with_rows(10_000, 42).generate());
    let mut registry = Registry::new();
    registry
        .add_table("census", table, DatasetOptions::default())
        .expect("dataset registers");
    let handle = Server::start(registry, ServeConfig::default()).expect("server boots");
    println!("serving on http://{}", handle.addr());

    // 2. Create a session — every interaction below addresses its token.
    let client = Client::new(handle.addr());
    let token = client.create_session("census").expect("session opens");
    println!("session token: {token}");

    // 3. Explore: the body is the same restricted SQL the paper's front-end
    //    speaks; the reply is ranked data maps with region predicates
    //    rendered back as SQL.
    let reply = client
        .post_text(
            &format!("/sessions/{token}/explore"),
            "SELECT * FROM census WHERE age BETWEEN 17 AND 65",
        )
        .expect("explore succeeds");
    assert_eq!(reply.status, 200);
    let reply = reply.json().expect("JSON reply");
    println!(
        "explore: {} rows in the working set, {} maps",
        reply.get("working_set_size").unwrap().num().unwrap(),
        reply.get("num_maps").unwrap().num().unwrap(),
    );
    let best = &reply.get("maps").unwrap().items().unwrap()[0];
    println!(
        "best map (score {:.3} bits) cuts on {:?}:",
        best.get("score").unwrap().num().unwrap(),
        best.get("source_attributes").unwrap().encode(),
    );
    for region in best.get("regions").unwrap().items().unwrap() {
        println!(
            "  {:>6} rows | {}",
            region.get("count").unwrap().num().unwrap(),
            region.get("sql").unwrap().str().unwrap(),
        );
    }

    // 4. Drill into the first region of the best map — its query becomes the
    //    next exploration step, exactly like Session::drill_down in-process.
    let drilled = client
        .post_json(
            &format!("/sessions/{token}/drill"),
            &Json::object(vec![
                ("map", Json::from(0usize)),
                ("region", Json::from(0usize)),
            ]),
        )
        .expect("drill succeeds")
        .json()
        .expect("JSON reply");
    println!(
        "drilled: {} rows, {} maps, depth {}",
        drilled.get("working_set_size").unwrap().num().unwrap(),
        drilled.get("num_maps").unwrap().num().unwrap(),
        drilled.get("depth").unwrap().num().unwrap(),
    );

    // 5. The history shows the whole trail; /metrics shows the server's own
    //    accounting of it.
    let history = client
        .get(&format!("/sessions/{token}/history"))
        .expect("history loads")
        .json()
        .expect("JSON reply");
    for step in history.get("steps").unwrap().items().unwrap() {
        println!("history: {}", step.get("sql").unwrap().str().unwrap());
    }
    let metrics = client
        .get("/metrics")
        .expect("metrics load")
        .json()
        .expect("JSON reply");
    println!(
        "served {} requests, p50 {} ms",
        metrics.get("requests_total").unwrap().num().unwrap(),
        metrics
            .get("latency")
            .unwrap()
            .get("p50_ms")
            .map(|p| p.encode())
            .unwrap_or_default(),
    );

    // 6. Graceful shutdown: in-flight work drains, threads join.
    handle.shutdown();
    println!("server stopped");
}
