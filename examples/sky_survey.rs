//! Exploring a sky-survey-like catalog (the SDSS scenario of Section 5.2).
//!
//! The table is wide and numeric: positions carry no structure, while the
//! magnitudes and the redshift are driven by the (hidden) object class. Atlas
//! should propose maps built on the correlated photometric attributes and
//! rank the structure-free positional attributes last — and the maps it
//! proposes should align well with the hidden classes.
//!
//! Run with: `cargo run --release --example sky_survey`

use atlas::prelude::*;
use std::sync::Arc;

fn main() {
    let table = Arc::new(SdssGenerator::with_rows(40_000, 2013).generate());
    println!("loaded catalog: {table}");

    // Hide the class column from the engine: the point of the experiment is
    // to see whether Atlas finds the class structure from photometry alone.
    let attributes: Vec<String> = table
        .schema()
        .names()
        .into_iter()
        .filter(|name| *name != "class")
        .map(|s| s.to_string())
        .collect();
    let atlas = Atlas::builder(Arc::clone(&table))
        .config(AtlasConfig {
            attributes: Some(attributes),
            ..AtlasConfig::quality()
        })
        .build()
        .expect("valid configuration");

    let query = parse_query("SELECT * FROM photo_obj WHERE mag_r BETWEEN 10 AND 30")
        .expect("well-formed query");
    let result = atlas.explore(&query).expect("exploration succeeds");
    println!("{}", render_result(&result));

    // Compare the best map against the hidden classes.
    let class_column = table.column("class").expect("class column exists");
    let truth: Vec<u32> = class_column.category_codes();
    if let Some((idx, quality)) = MapQuality::best_of(&result.maps, &truth) {
        println!(
            "best map vs hidden classes: map #{idx}, ARI {:.3}, NMI {:.3}, purity {:.3}",
            quality.ari, quality.nmi, quality.purity
        );
    }

    println!(
        "\nphase timings: cut {:.1} ms, cluster {:.1} ms, merge {:.1} ms, total {:.1} ms",
        result.timings.candidates_ms,
        result.timings.clustering_ms,
        result.timings.merge_ms,
        result.timings.total_ms
    );
}
