//! Quickstart: load a dataset, prepare an engine once, ask questions.
//!
//! This walks through the minimal Atlas loop of Figure 1 of the paper:
//! a query goes in, a ranked list of data maps comes out. The engine is
//! *prepared* — `Atlas::builder` profiles every column once at build time,
//! so repeated questions skip the per-column statistics entirely (watch the
//! hit/miss counters of the statistics profile below).
//!
//! Run with: `cargo run --release --example quickstart`

use atlas::prelude::*;
use std::sync::Arc;

fn main() {
    // A synthetic stand-in for the Adult census survey of the paper's
    // introduction: age, sex, height, education, salary, hours, eye colour,
    // with planted dependencies (education↔salary, age↔hours, sex↔height).
    let table = Arc::new(CensusGenerator::with_rows(20_000, 42).generate());
    println!("loaded table: {table}");

    // Build a prepared engine with the paper's default configuration: two-way
    // cuts at the median, Variation-of-Information distance, single-linkage
    // clustering, composition merging, entropy ranking, ≤ 8 regions, ≤ 3
    // predicates. Column statistics are computed here, once.
    let atlas = Atlas::builder(Arc::clone(&table))
        .build()
        .expect("valid default configuration");

    // The user query of the paper's Figure 2, in the restricted SQL syntax.
    let query = parse_query(
        "SELECT * FROM census WHERE age BETWEEN 17 AND 90 \
         AND eye_color IN ('Blue', 'Green', 'Brown') \
         AND education IN ('BSc', 'MSc', 'PhD', 'HighSchool')",
    )
    .expect("well-formed query");
    println!("\nuser query:\n  {}\n", to_sql(&query));

    let result = atlas.explore(&query).expect("exploration succeeds");
    println!("{}", render_result(&result));

    println!(
        "generated {} maps over {} tuples in {:.1} ms \
         (cut {:.1} ms, cluster {:.1} ms, merge {:.1} ms, rank {:.1} ms)",
        result.num_maps(),
        result.working_set_size,
        result.timings.total_ms,
        result.timings.candidates_ms,
        result.timings.clustering_ms,
        result.timings.merge_ms,
        result.timings.rank_ms,
    );

    // Ask again: candidate generation reuses the build-time statistics (the
    // hits below); the misses come from composition merging, which re-cuts
    // inside regions and therefore genuinely needs subset statistics.
    let everything = parse_query("SELECT * FROM census").expect("well-formed query");
    let again = atlas.explore(&everything).expect("exploration succeeds");
    let profile = atlas.profile_stats();
    println!(
        "\nsecond question answered in {:.1} ms; statistics profile: {} hits, {} misses",
        again.timings.total_ms, profile.hits, profile.misses
    );

    // Every region is itself a query: pick one and it becomes the next
    // exploration step.
    if let Some(best) = result.best() {
        if let Some(region) = best.map.regions.first() {
            println!(
                "\nTo drill down, submit for example:\n  {}",
                to_sql(&region.query)
            );
        }
    }
}
