//! A multi-step exploration session over the census survey.
//!
//! Reproduces the interaction loop of Figure 1 / Figure 2 of the paper: the
//! analyst starts from the whole survey, receives several alternative maps of
//! the same data, drills into a region, and keeps going until the working set
//! is small enough to inspect directly. The session rides one prepared
//! engine, so every step after the first reuses the build-time column
//! statistics.
//!
//! Run with: `cargo run --release --example census_exploration`

use atlas::prelude::*;
use std::sync::Arc;

fn main() {
    let table = Arc::new(CensusGenerator::with_rows(50_000, 7).generate());
    let engine = Atlas::builder(Arc::clone(&table))
        .build()
        .expect("valid configuration");
    let mut session = Session::with_engine(engine);

    // Step 1: the analyst knows nothing — map everything.
    let step = session
        .submit(ConjunctiveQuery::all("census"))
        .expect("initial exploration succeeds");
    println!(
        "=== step 1: the whole survey ({} tuples) ===",
        step.working_set_size()
    );
    println!("{}", render_result(&step.result));

    // The top maps group statistically dependent attributes, exactly as in
    // Figure 2: one view of the data via (education, salary), another via
    // demographic attributes. Show what each map is "about".
    for (i, ranked) in step.result.maps.iter().enumerate() {
        println!(
            "map #{i} is about [{}] — {} regions, score {:.3}",
            ranked.map.source_attributes.join(", "),
            ranked.map.num_regions(),
            ranked.score
        );
    }

    // Step 2: drill into the first region of the best map.
    let step = session.drill_down(0, 0).expect("drill-down succeeds");
    println!(
        "\n=== step 2: drilled into region 0 of map 0 ({} tuples) ===",
        step.working_set_size()
    );
    println!("query now: {}", to_sql(&step.query));
    println!("{}", render_result(&step.result));

    // Step 3: drill once more, then report the exploration path.
    let step = session
        .drill_down(0, 0)
        .expect("second drill-down succeeds");
    println!(
        "\n=== step 3: drilled again ({} tuples) ===",
        step.working_set_size()
    );
    println!("query now: {}", to_sql(&step.query));

    println!("\nexploration path:");
    for (depth, visited) in session.history().iter().enumerate() {
        println!(
            "  depth {depth}: {} tuples — {}",
            visited.working_set_size(),
            to_sql(&visited.query)
        );
    }

    // Going back is cheap: the session keeps the whole history.
    session.back();
    println!("\nafter back(): depth = {}", session.depth());

    let profile = session.engine().profile_stats();
    println!(
        "statistics profile over the whole session: {} hits, {} misses",
        profile.hits, profile.misses
    );
}
