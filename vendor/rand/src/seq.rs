//! Sequence helpers, mirroring `rand::seq`.

use crate::distributions::SampleUniform;
use crate::Rng;

/// Extension methods on slices: in-place shuffling and random choice.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Return a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_inclusive(rng, 0, i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_half_open(rng, 0, self.len())])
        }
    }
}
