//! Distributions and uniform range sampling.

use crate::Rng;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`, sampled with an [`Rng`].
pub trait Distribution<T> {
    /// Draw one value from the distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: `[0, 1)` for floats, uniform over
/// the full value range for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

/// Types that can be sampled uniformly from a range.
///
/// Implemented for the primitive integers and floats Atlas uses. Integer
/// sampling uses the widening-multiply method, which has negligible bias for
/// the span sizes that occur here.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`. Panics if `low > high`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + draw) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let unit: f64 = Standard.sample(rng);
                let v = low as f64 + unit * (high as f64 - low as f64);
                // Guard against rounding landing exactly on `high`.
                if v as $t >= high { low } else { v as $t }
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                let unit: f64 = Standard.sample(rng);
                (low as f64 + unit * (high as f64 - low as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Uniform distribution over a half-open range, mirroring
/// `rand::distributions::Uniform`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T: SampleUniform> {
    low: T,
    high: T,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        Uniform { low, high }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> UniformInclusive<T> {
        UniformInclusive { low, high }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.low, self.high)
    }
}

/// Uniform distribution over an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct UniformInclusive<T: SampleUniform> {
    low: T,
    high: T,
}

impl<T: SampleUniform> Distribution<T> for UniformInclusive<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.low, self.high)
    }
}

/// Bernoulli distribution: `true` with probability `p`.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Build a Bernoulli distribution; errors if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, BernoulliError> {
        if (0.0..=1.0).contains(&p) {
            Ok(Bernoulli { p })
        } else {
            Err(BernoulliError::InvalidProbability)
        }
    }
}

/// Error returned by [`Bernoulli::new`] for probabilities outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BernoulliError {
    /// The probability was not in `[0, 1]`.
    InvalidProbability,
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let x: f64 = Standard.sample(rng);
        x < self.p
    }
}
