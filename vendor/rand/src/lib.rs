//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small, API-compatible subset of `rand` 0.8 that
//! Atlas actually uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! [`seq::SliceRandom`], and [`distributions::Distribution`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 stream of the real crate, but a fast,
//! well-studied generator that is more than adequate for the seeded synthetic
//! datasets and randomised algorithms in this workspace. Determinism holds:
//! the same seed always yields the same stream on every platform.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// A low-level source of random 64-bit words.
///
/// Everything else in this crate ([`Rng`], the distributions, the slice
/// helpers) is derived from this single method.
pub trait RngCore {
    /// Return the next 64 random bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits from the generator.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator seedable from a small integer, for reproducible
/// runs.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation, mirroring `rand::Rng` 0.8.
///
/// Blanket-implemented for every [`RngCore`], so any generator (and any
/// `&mut` borrow of one) exposes `gen`, `gen_range`, `gen_bool` and `sample`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, uniform over all values for integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        let x: f64 = self.gen();
        x < p
    }

    /// Sample a value from an explicit distribution.
    fn sample<T, D>(&mut self, distribution: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distribution.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
