//! Concrete generators. Only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seedable generator: xoshiro256++ with SplitMix64
/// seed expansion.
///
/// The real `rand::rngs::StdRng` wraps ChaCha12; this stand-in trades
/// cryptographic strength (which Atlas never relies on) for zero
/// dependencies. Streams are deterministic per seed and identical across
/// platforms.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { state }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
