//! Collection strategies: random-length `Vec`s and `BTreeSet`s.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A target size for a generated collection: either exact or a half-open
/// range, mirroring `proptest::collection::SizeRange`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    low: usize,
    high: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.high <= self.low + 1 {
            self.low
        } else {
            rng.gen_range(self.low..self.high)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            low: exact,
            high: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange {
            low: range.start,
            high: range.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate `Vec`s of values from `element`, with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set below target; cap the attempts so tiny
        // value domains (e.g. 0..4) cannot loop forever.
        let mut attempts = 0;
        while set.len() < target && attempts < target * 16 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Generate `BTreeSet`s of values from `element`, with target size in `size`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
