//! The commonly used names, mirroring `proptest::prelude`.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
    Strategy,
};
