//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API that the workspace's property
//! tests use:
//!
//! * the [`Strategy`] trait — implemented for numeric ranges, string
//!   patterns like `"[a-z]{1,6}"`, tuples of strategies, and [`any`] — with
//!   [`Strategy::prop_map`];
//! * [`collection::vec`], [`collection::btree_set`], [`option::weighted`]
//!   and the [`prop_oneof!`] choice combinator;
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`] and [`prop_assert_eq!`];
//! * [`prelude::ProptestConfig`] with `with_cases`.
//!
//! The one deliberate omission is *shrinking*: on failure the offending
//! inputs are reported via the panic message of the underlying assert, but
//! no minimisation pass runs. Cases are generated from a deterministic
//! per-test seed, so failures reproduce exactly across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;

pub mod collection;
pub mod prelude;
pub mod string;

/// A recipe for generating random values of an associated type.
///
/// The real proptest `Strategy` carries a value tree for shrinking; this
/// stand-in only needs [`Strategy::generate`].
pub trait Strategy {
    /// The type of values the strategy produces.
    type Value;

    /// Produce one value using the given generator.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `map`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals act as regex-like string strategies (e.g. `"[a-z]{1,6}"`).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        string::generate_matching(self, rng)
    }
}

/// A strategy producing a constant value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.map)(self.strategy.generate(rng))
    }
}

/// The strategy returned by [`any`]: arbitrary values of `T` from its
/// standard distribution (uniform over all values for integers and `bool`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Strategy for Any<T>
where
    rand::distributions::Standard: rand::distributions::Distribution<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen()
    }
}

/// Generate arbitrary values of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T>() -> Any<T>
where
    rand::distributions::Standard: rand::distributions::Distribution<T>,
{
    Any(std::marker::PhantomData)
}

// Tuples of strategies generate tuples of values, componentwise in order.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// The strategy built by [`prop_oneof!`]: pick one of several boxed
/// strategies, with probability proportional to its weight.
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build a union from `(weight, strategy)` options.
    ///
    /// # Panics
    /// Panics if `options` is empty or every weight is zero.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strategy) in &self.options {
            let weight = *weight as u64;
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total");
    }
}

/// Box a strategy for storage in a [`Union`] (used by [`prop_oneof!`] so the
/// macro needs no explicit casts).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Choose among strategies, mirroring `proptest::prop_oneof!`. Accepts the
/// plain form (`prop_oneof![a, b, c]`, equal weights) and the weighted form
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::boxed($strategy))),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($strategy))),+])
    };
}

pub mod option {
    //! Strategies for `Option<T>`, mirroring `proptest::option`.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy returned by [`weighted`] (and [`of`]).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        some_probability: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            // Draw the coin first so the inner stream is consumed only for
            // `Some`, matching how the real crate's trees are laid out.
            if rng.gen_bool(self.some_probability) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some(value)` with probability `some_probability`, else `None`.
    pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy {
            some_probability,
            inner,
        }
    }

    /// `Some`/`None` with the real crate's default 3:1 bias towards `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.75, inner)
    }
}

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[doc(hidden)]
pub mod __internal {
    //! Support machinery used by the macro expansions.

    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Derive a per-test base seed from the test name, so each property
    /// explores a distinct but fully deterministic input stream.
    pub fn seed_for(test_name: &str) -> u64 {
        // FNV-1a, folded with a fixed tweak so the stream differs from other
        // FNV users in the workspace.
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ 0x41544c4153 // "ATLAS"
    }
}

/// Define property tests: each `fn` runs its body over many generated inputs.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = <$crate::__internal::StdRng as $crate::__internal::SeedableRng>::seed_from_u64(
                $crate::__internal::seed_for(stringify!($name)),
            );
            for _case in 0..config.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                $body
            }
        }
    )*};
}

/// Assert a condition inside a property; on failure the test panics with the
/// formatted message (no shrinking pass runs in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property. See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property. See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
