//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API that the workspace's property
//! tests use:
//!
//! * the [`Strategy`] trait, implemented for numeric ranges and for string
//!   patterns like `"[a-z]{1,6}"`;
//! * [`collection::vec`] and [`collection::btree_set`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`] and [`prop_assert_eq!`];
//! * [`prelude::ProptestConfig`] with `with_cases`.
//!
//! The one deliberate omission is *shrinking*: on failure the offending
//! inputs are reported via the panic message of the underlying assert, but
//! no minimisation pass runs. Cases are generated from a deterministic
//! per-test seed, so failures reproduce exactly across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;

pub mod collection;
pub mod prelude;
pub mod string;

/// A recipe for generating random values of an associated type.
///
/// The real proptest `Strategy` carries a value tree for shrinking; this
/// stand-in only needs [`Strategy::generate`].
pub trait Strategy {
    /// The type of values the strategy produces.
    type Value;

    /// Produce one value using the given generator.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals act as regex-like string strategies (e.g. `"[a-z]{1,6}"`).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        string::generate_matching(self, rng)
    }
}

/// A strategy producing a constant value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[doc(hidden)]
pub mod __internal {
    //! Support machinery used by the macro expansions.

    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Derive a per-test base seed from the test name, so each property
    /// explores a distinct but fully deterministic input stream.
    pub fn seed_for(test_name: &str) -> u64 {
        // FNV-1a, folded with a fixed tweak so the stream differs from other
        // FNV users in the workspace.
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ 0x41544c4153 // "ATLAS"
    }
}

/// Define property tests: each `fn` runs its body over many generated inputs.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = <$crate::__internal::StdRng as $crate::__internal::SeedableRng>::seed_from_u64(
                $crate::__internal::seed_for(stringify!($name)),
            );
            for _case in 0..config.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                $body
            }
        }
    )*};
}

/// Assert a condition inside a property; on failure the test panics with the
/// formatted message (no shrinking pass runs in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property. See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property. See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
