//! Generation of strings matching a small regex-like pattern language.
//!
//! Supports what the workspace's tests use: literal characters, character
//! classes like `[a-z0-9_]`, and `{m}` / `{m,n}` quantifiers after a class
//! or literal. Anything fancier falls back to a panic naming the pattern,
//! which keeps silent mismatches impossible.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Piece {
    Literal(char),
    Class(Vec<(char, char)>),
}

impl Piece {
    fn emit(&self, rng: &mut StdRng, out: &mut String) {
        match self {
            Piece::Literal(c) => out.push(*c),
            Piece::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total);
                for (lo, hi) in ranges {
                    let span = *hi as u32 - *lo as u32 + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick).expect("valid scalar"));
                        return;
                    }
                    pick -= span;
                }
                unreachable!("pick is bounded by the total span");
            }
        }
    }
}

/// Generate a random string matching `pattern`.
///
/// # Panics
/// Panics if the pattern uses syntax outside the supported subset.
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let piece = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in pattern {pattern:?}"));
                        assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                Piece::Class(ranges)
            }
            '\\' => Piece::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
            }
            other => Piece::Literal(other),
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for q in chars.by_ref() {
                if q == '}' {
                    break;
                }
                spec.push(q);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in pattern {pattern:?}")
                    }),
                    n.trim().parse::<usize>().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in pattern {pattern:?}")
                    }),
                ),
                None => {
                    let m = spec.trim().parse::<usize>().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in pattern {pattern:?}")
                    });
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = if max > min {
            rng.gen_range(min..=max)
        } else {
            min
        };
        for _ in 0..count {
            piece.emit(rng, &mut out);
        }
    }
    out
}
