//! A minimal `rayon`-style scoped thread pool, vendored because the build
//! environment has no crates.io access.
//!
//! The pool offers the small work-splitting surface Atlas needs:
//!
//! * [`ThreadPool::scope`] / [`Scope::spawn`] — structured fork/join over
//!   borrowed data, mirroring `std::thread::scope` but running the closures on
//!   a fixed set of **persistent** worker threads instead of spawning one
//!   thread per task;
//! * [`ThreadPool::join`] — run two closures, potentially in parallel;
//! * [`ThreadPool::par_map`] / [`ThreadPool::par_map_indexed`] /
//!   [`ThreadPool::par_chunks`] — order-preserving data-parallel helpers built
//!   on `scope`.
//!
//! # Determinism
//!
//! Every helper returns its results **in input order**, regardless of which
//! worker executed which chunk. A pool created with one thread
//! ([`ThreadPool::sequential`], or `ThreadPool::new(1)`) executes everything
//! inline on the calling thread, in input order, with no queue and no workers
//! — it *is* the sequential code path, not a simulation of it. Callers whose
//! closures are pure functions of their inputs therefore get bit-for-bit
//! identical results at every thread count.
//!
//! # Safety contract
//!
//! [`Scope::spawn`] erases the `'scope` lifetime of the task closure so it can
//! sit in the pool's `'static` work queue (the same lifetime erasure
//! `rayon-core` and `crossbeam` perform). The erasure is sound because of two
//! invariants enforced by this module and nothing else:
//!
//! 1. **`scope` never returns before every spawned task has finished.**
//!    [`ThreadPool::scope`] blocks — helping to drain the queue while it waits
//!    — until the scope's pending-task count reaches zero, even when the scope
//!    closure or a task panics. A task can therefore never observe a dangling
//!    `'scope` borrow.
//! 2. **Tasks never outlive the pool.** Workers are joined in
//!    [`ThreadPool`]'s `Drop` after the queue is drained of the shutdown flag;
//!    since tasks only enter the queue inside `scope`, and `scope` borrows the
//!    pool, all tasks are gone before the pool can be dropped.
//!
//! Panics inside a task are caught, forwarded to the scope owner, and re-raised
//! from `scope` after all sibling tasks finished (first payload wins), so a
//! panicking task still cannot unwind past the borrowed data's lifetime.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased unit of work. `'static` is a lie told by [`Scope::spawn`];
/// see the module-level safety contract.
type Task = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled on task enqueue, scope completion, and shutdown. Workers and
    /// waiting scopes both sleep on it.
    signal: Condvar,
}

impl Shared {
    fn push(&self, task: Task) {
        let mut queue = self.queue.lock().expect("pool queue is never poisoned");
        queue.tasks.push_back(task);
        drop(queue);
        self.signal.notify_all();
    }

    fn try_pop(&self) -> Option<Task> {
        self.queue
            .lock()
            .expect("pool queue is never poisoned")
            .tasks
            .pop_front()
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("pool queue is never poisoned");
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .signal
                    .wait(queue)
                    .expect("pool queue is never poisoned");
            }
        };
        // Tasks are always the catch_unwind wrappers built by `Scope::spawn`,
        // so a panic in user code never unwinds into this loop.
        task();
    }
}

/// A fixed-size pool of persistent worker threads with a shared FIFO work
/// queue.
///
/// `ThreadPool::new(n)` keeps `n - 1` workers: the thread calling
/// [`ThreadPool::scope`] always participates in the work, so `n` is the total
/// number of threads that can run tasks concurrently. `n = 1` spawns no
/// workers at all and executes every task inline — the sequential path.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Create a pool able to run `threads` tasks concurrently (the caller
    /// counts as one). `threads` is clamped to at least 1.
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            signal: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("minirayon-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("worker thread spawns")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// A process-wide single-threaded pool: every task runs inline on the
    /// calling thread. Handy default for one-shot code paths that take a
    /// `&ThreadPool` but have nothing to gain from parallelism.
    pub fn sequential() -> &'static ThreadPool {
        static SEQUENTIAL: OnceLock<ThreadPool> = OnceLock::new();
        SEQUENTIAL.get_or_init(|| ThreadPool::new(1))
    }

    /// Number of threads that can run tasks concurrently (callers included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run a structured-concurrency scope: `f` may [`Scope::spawn`] tasks that
    /// borrow from the enclosing environment (`'env`), and `scope` only
    /// returns once every spawned task has finished.
    ///
    /// Panics from tasks (or from `f` itself) are re-raised here after all
    /// tasks completed, so borrowed data stays valid for as long as any task
    /// can touch it.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: ScopeState {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
            },
            scope: PhantomData,
            env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.wait_all();
        if let Some(payload) = scope
            .state
            .panic
            .lock()
            .expect("panic slot lock is never poisoned")
            .take()
        {
            resume_unwind(payload);
        }
        match result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Run two closures, potentially in parallel, and return both results.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.threads == 1 {
            return (a(), b());
        }
        let mut rb = None;
        let ra = self.scope(|s| {
            s.spawn(|| rb = Some(b()));
            a()
        });
        (ra, rb.expect("join task ran to completion"))
    }

    /// Split `0..len` into contiguous chunks of at least `min_chunk` indices,
    /// apply `f` to each chunk, and return the chunk results **in range
    /// order**. With one thread (or a single chunk) this is a plain loop.
    pub fn par_chunks<U, F>(&self, len: usize, min_chunk: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(Range<usize>) -> U + Sync,
    {
        let min_chunk = min_chunk.max(1);
        let chunk = len.div_ceil(self.threads * TASKS_PER_THREAD).max(min_chunk);
        let starts: Vec<usize> = (0..len).step_by(chunk).collect();
        if self.threads == 1 || starts.len() <= 1 {
            return starts
                .into_iter()
                .map(|start| f(start..(start + chunk).min(len)))
                .collect();
        }
        let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(starts.len()));
        self.scope(|s| {
            for &start in &starts {
                let f = &f;
                let results = &results;
                s.spawn(move || {
                    let value = f(start..(start + chunk).min(len));
                    results
                        .lock()
                        .expect("results lock is never poisoned")
                        .push((start, value));
                });
            }
        });
        let mut parts = results
            .into_inner()
            .expect("results lock is never poisoned");
        parts.sort_by_key(|&(start, _)| start);
        parts.into_iter().map(|(_, value)| value).collect()
    }

    /// Apply `f` to every index in `0..len` and collect the results in index
    /// order. `min_chunk` bounds how finely the index range is split.
    pub fn par_map_indexed<U, F>(&self, len: usize, min_chunk: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if self.threads == 1 {
            return (0..len).map(f).collect();
        }
        let chunks = self.par_chunks(len, min_chunk, |range| range.map(&f).collect::<Vec<U>>());
        let mut out = Vec::with_capacity(len);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }

    /// Apply `f` to every item of `items` and collect the results in item
    /// order.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_indexed(items.len(), 1, |i| f(&items[i]))
    }
}

/// Target number of tasks per thread when splitting ranges: a little
/// oversubscription smooths out uneven per-item cost without drowning the
/// queue in tiny tasks.
const TASKS_PER_THREAD: usize = 4;

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .expect("pool queue is never poisoned");
            queue.shutdown = true;
        }
        self.shared.signal.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A fork/join scope created by [`ThreadPool::scope`]. Mirrors
/// `std::thread::Scope`: tasks spawned here may borrow anything that outlives
/// the `scope` call (`'env`).
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    state: ScopeState,
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queue `f` to run on the pool (or run it inline on a single-threaded
    /// pool). The task may borrow from the scope's environment; `scope` will
    /// not return until it has finished.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.pool.threads == 1 {
            f();
            return;
        }
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state: &ScopeState = &self.state;
        let shared: &Shared = &self.pool.shared;
        let wrapper = move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().expect("panic slot is never poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let remaining = state.pending.fetch_sub(1, Ordering::SeqCst) - 1;
            if remaining == 0 {
                // Lock/notify so a scope owner checking `pending` under the
                // queue lock cannot miss the wakeup.
                let _queue = shared.queue.lock().expect("pool queue is never poisoned");
                shared.signal.notify_all();
            }
        };
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(wrapper);
        // SAFETY: this transmute erases only the closure's `'scope` lifetime
        // bound (the vtable and layout of the two `Box<dyn FnOnce() + Send>`
        // types are identical; lifetimes have no runtime representation), so
        // soundness reduces to proving the erased bound is never violated —
        // i.e. the task cannot run, be dropped late, or be observed after any
        // `'scope` borrow it captures has expired. That holds because:
        //
        // 1. The borrows captured by `wrapper` (`f`'s captures plus `state`
        //    and `shared`) all outlive `'scope`: `f: 'scope` by this fn's
        //    bound, `state` borrows from `self: &'scope Scope`, and `shared`
        //    borrows from the pool, which outlives the scope by construction.
        // 2. `'scope` itself does not end before `ThreadPool::scope` returns,
        //    and `ThreadPool::scope` always calls `wait_all` before returning
        //    — including on the panic path, where the scope closure runs
        //    under `catch_unwind` and its payload is re-thrown only after
        //    `wait_all` — so every
        //    spawned task has finished executing (and its closure has been
        //    dropped by the worker that ran it) while the borrows are live.
        // 3. `pending` is incremented above *before* the task is pushed and
        //    decremented by the wrapper only *after* `f` and the panic
        //    bookkeeping complete, so `wait_all`'s `pending == 0` check
        //    cannot pass while any erased closure is still alive on a worker.
        // 4. The queue never outlives the pool (workers drain it until
        //    shutdown, and `ThreadPool::drop` joins them), so no erased task
        //    can survive into a context where `'scope` data is gone.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(task)
        };
        self.pool.shared.push(task);
    }

    /// Block until every task spawned on this scope has finished, executing
    /// queued tasks (from any scope on this pool) while waiting.
    fn wait_all(&self) {
        if self.pool.threads == 1 {
            return;
        }
        loop {
            if self.state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if let Some(task) = self.pool.shared.try_pop() {
                task();
                continue;
            }
            let queue = self
                .pool
                .shared
                .queue
                .lock()
                .expect("pool queue is never poisoned");
            if self.state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if !queue.tasks.is_empty() {
                continue;
            }
            // Releases the lock; woken by task enqueue or scope completion.
            drop(
                self.pool
                    .shared
                    .signal
                    .wait(queue)
                    .expect("pool queue is never poisoned"),
            );
        }
    }
}

impl fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope")
            .field("pending", &self.state.pending.load(Ordering::SeqCst))
            .finish()
    }
}

/// The number of hardware threads, used as the default pool size.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_task_exactly_once() {
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(threads);
            let counter = AtomicU64::new(0);
            pool.scope(|s| {
                for i in 0..100u64 {
                    let counter = &counter;
                    s.spawn(move || {
                        counter.fetch_add(i + 1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), 5050, "threads={threads}");
        }
    }

    #[test]
    fn par_map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..997).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.par_map(&items, |&x| x * x), expected);
            assert_eq!(
                pool.par_map_indexed(997, 1, |i| items[i] * items[i]),
                expected
            );
        }
    }

    #[test]
    fn par_chunks_covers_the_range_in_order() {
        let pool = ThreadPool::new(4);
        let ranges = pool.par_chunks(103, 10, |range| range);
        assert_eq!(ranges.first().map(|r| r.start), Some(0));
        assert_eq!(ranges.last().map(|r| r.end), Some(103));
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "contiguous, ordered chunks");
        }
        assert!(ranges.iter().all(|r| r.len() >= 10 || r.end == 103));
        // Empty ranges produce no chunks.
        assert!(pool.par_chunks(0, 1, |range| range).is_empty());
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(threads);
            let (a, b) = pool.join(|| 2 + 2, || "ok".to_string());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn tasks_borrow_and_mutate_disjoint_environment_data() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 64];
        pool.scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move || *slot = i * 3);
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn panics_propagate_after_all_tasks_finish() {
        let pool = ThreadPool::new(3);
        let finished = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..20u64 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 7 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "the task panic must surface");
        assert_eq!(finished.load(Ordering::SeqCst), 19, "siblings still ran");
        // The pool survives a panicked scope.
        assert_eq!(pool.par_map(&[1, 2, 3], |&x: &i32| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let total = &total;
                let pool = &pool;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn sequential_pool_is_single_threaded_and_inline() {
        let pool = ThreadPool::sequential();
        assert_eq!(pool.threads(), 1);
        // Inline execution: tasks run in spawn order, on the calling thread.
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..5 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn new_clamps_zero_threads_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(available_threads() >= 1);
        assert_eq!(format!("{pool:?}"), "ThreadPool { threads: 1 }");
    }
}
