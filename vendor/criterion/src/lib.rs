//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion 0.5 API the Atlas benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] knobs (`sample_size`,
//! `warm_up_time`, `measurement_time`, `throughput`), `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark warms up for the
//! configured time, then runs timed batches until both the sample budget and
//! the measurement time are spent, and prints mean / min / max wall-clock
//! time per iteration. There is no statistical outlier analysis, HTML
//! report, or baseline comparison — the numbers are honest but coarse,
//! suitable for spotting order-of-magnitude regressions in CI logs.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let defaults = self.clone();
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: defaults.sample_size,
            warm_up_time: defaults.warm_up_time,
            measurement_time: defaults.measurement_time,
            throughput: None,
        }
    }

    /// Benchmark a closure outside of any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, &mut f);
        group.finish();
        self
    }
}

/// A set of benchmarks sharing a name prefix and timing configuration.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set how long to run the closure untimed before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Record the work per iteration, reported as a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark identified by `id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&label, self.throughput.as_ref());
        self
    }

    /// Run a benchmark that borrows a prepared input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group. (No cross-benchmark analysis in this stand-in.)
    pub fn finish(&mut self) {}
}

/// Times a closure; handed to each benchmark body.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine`, running it repeatedly inside the configured budget.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measurement: one sample per routine call, until both the sample
        // count is reached and further samples would bust the time budget.
        let measure_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, label: &str, throughput: Option<&Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<60} (no samples collected)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let rate = throughput.map(|t| t.rate(mean)).unwrap_or_default();
        println!(
            "{label:<60} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples){rate}",
            self.samples.len(),
        );
    }
}

/// A benchmark label, optionally `function/parameter`-structured.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label a benchmark with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Label a benchmark with a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`]; lets `bench_function` accept both
/// string labels and structured ids.
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// The amount of work one iteration performs, for rate reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Throughput {
    fn rate(&self, mean: Duration) -> String {
        let secs = mean.as_secs_f64();
        if secs <= 0.0 {
            return String::new();
        }
        match self {
            Throughput::Elements(n) => format!("  {:.0} elem/s", *n as f64 / secs),
            Throughput::Bytes(n) => format!("  {:.0} B/s", *n as f64 / secs),
        }
    }
}

/// Bundle benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
