//! # Atlas — Fast Cartography for Data Explorers
//!
//! A from-scratch Rust reproduction of **"Fast Cartography for Data
//! Explorers"** (Thibault Sellam & Martin Kersten, PVLDB 6(12), VLDB 2013).
//!
//! Atlas answers queries with queries: instead of returning a long list of
//! tuples, it summarises the result of a user query with a handful of **data
//! maps** — small sets of conjunctive queries, each describing one region of
//! the data — which the user can drill into interactively.
//!
//! This crate is a thin facade that re-exports the public API of the
//! workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`obs`] | `atlas-obs` | span tracing, counters, Chrome trace export (zero-dependency) |
//! | [`columnar`] | `atlas-columnar` | in-memory column store (tables, bitmaps, CSV, statistics) |
//! | [`stats`] | `atlas-stats` | entropy / MI / VI, quantile sketches, 1-D clustering, agreement scores |
//! | [`query`] | `atlas-query` | the conjunctive query language (AST, parser, printer, evaluation) |
//! | [`core`] | `atlas-core` | the map-generation engine: CUT, clustering, merging, ranking, anytime, baselines |
//! | [`datagen`] | `atlas-datagen` | seeded synthetic datasets (census, mixtures, sky survey, orders) |
//! | [`explorer`] | `atlas-explorer` | exploration sessions, rendering, quality metrics |
//! | [`serve`] | `atlas-serve` | the concurrent exploration server: HTTP/JSON wire protocol, multi-tenant sessions, shared engines |
//!
//! # Quickstart
//!
//! ```
//! use atlas::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Get a table (here: the synthetic census of the paper's intro).
//! let table = Arc::new(CensusGenerator::with_rows(5_000, 42).generate());
//!
//! // 2. Build a *prepared* engine: per-column statistics (quantile
//! //    sketches, distinct counts, null masks) are computed once, here,
//! //    and shared by every subsequent exploration. The engine is
//! //    `Send + Sync`, so one `Arc<Atlas>` can serve many threads.
//! let atlas = Atlas::builder(Arc::clone(&table)).build().unwrap();
//!
//! // 3. Ask a question — Atlas answers with ranked data maps.
//! let query = parse_query("SELECT * FROM census WHERE age BETWEEN 17 AND 90").unwrap();
//! let result = atlas.explore(&query).unwrap();
//!
//! assert!(result.num_maps() >= 1);
//! assert!(result.best().unwrap().map.num_regions() <= 8);
//! println!("{}", render_result(&result));
//!
//! // 4. In a hurry? Stream the anytime refinement of Section 5.1: growing
//! //    samples under a time budget, through the very same engine.
//! let options = ExploreOptions::budgeted(std::time::Duration::from_millis(200));
//! for step in atlas.explore_iter(&query, options).unwrap() {
//!     let iteration = step.unwrap();
//!     println!("{} rows sampled -> {} maps",
//!              iteration.sample_size, iteration.result.num_maps());
//! }
//! ```
//!
//! # Incremental ingest
//!
//! Storage is segmented: a [`columnar::Table`] is an ordered list of
//! immutable `Segment`s, so appending data extends state instead of
//! invalidating it. [`Atlas::append`](core::engine::Atlas::append)
//! re-prepares the engine by profiling **only the new segment** and merging
//! its statistics into the build-time profile — the answers are bit-for-bit
//! what a from-scratch rebuild would produce, at a cost proportional to the
//! new rows:
//!
//! ```
//! use atlas::prelude::*;
//! use std::sync::Arc;
//!
//! // A 3-segment census: two "historical" segments plus today's batch.
//! let full = CensusGenerator::new(atlas::datagen::CensusConfig {
//!     rows: 3_000,
//!     seed: 7,
//!     segment_rows: Some(1_000),
//!     ..atlas::datagen::CensusConfig::default()
//! })
//! .generate();
//! let prefix = Arc::new(
//!     Table::from_segments("census", full.schema().clone(), full.segments()[..2].to_vec())
//!         .unwrap(),
//! );
//!
//! let engine = Atlas::with_defaults(prefix).unwrap();
//! let query = parse_query("SELECT * FROM census").unwrap();
//! assert_eq!(engine.explore(&query).unwrap().working_set_size, 2_000);
//!
//! // New data arrives: append the segment and explore again — no rebuild,
//! // no copy of the existing rows.
//! let engine = engine.append(Arc::clone(&full.segments()[2])).unwrap();
//! assert_eq!(engine.explore(&query).unwrap().working_set_size, 3_000);
//! ```
//!
//! The same path serves live sessions
//! ([`Session::append_segment`](explorer::Session::append_segment)) and the
//! streaming CSV reader ([`columnar::csv::read_csv`]), whose parser working
//! state (buffered text, open segment) is bounded by the segment size, not
//! the file size.
//!
//! # Extending the pipeline
//!
//! The four steps of the paper's framework — cut, cluster, merge, rank — are
//! the traits `CutStrategy`, `MapDistance`, `MergePolicy` and `Ranker` of
//! [`core::pipeline`]. [`Atlas::builder`](core::engine::AtlasBuilder) accepts
//! a custom implementation for any step; the remaining steps keep the
//! paper's algorithms:
//!
//! ```
//! use atlas::prelude::*;
//! use std::sync::Arc;
//!
//! /// Rank maps by how many attributes they combine, not by entropy.
//! #[derive(Debug)]
//! struct WidestFirst;
//!
//! impl Ranker for WidestFirst {
//!     fn name(&self) -> &str { "widest-first" }
//!     fn rank(&self, maps: Vec<DataMap>) -> Vec<RankedMap> {
//!         let mut ranked: Vec<RankedMap> = maps
//!             .into_iter()
//!             .map(|map| RankedMap { score: map.source_attributes.len() as f64, map })
//!             .collect();
//!         ranked.sort_by(|a, b| b.score.total_cmp(&a.score));
//!         ranked
//!     }
//! }
//!
//! let table = Arc::new(CensusGenerator::with_rows(2_000, 42).generate());
//! let atlas = Atlas::builder(table).ranker(WidestFirst).build().unwrap();
//! let result = atlas.explore(&parse_query("SELECT * FROM census").unwrap()).unwrap();
//! assert!(result.num_maps() >= 1);
//! ```

#![warn(missing_docs)]

/// Columnar storage: tables, segments, bitmaps, per-column statistics.
pub use atlas_columnar as columnar;
/// The exploration engine: cut → cluster → merge → rank, plus caching and
/// the anytime driver.
pub use atlas_core as core;
/// Deterministic synthetic dataset generators used by tests and benchmarks.
pub use atlas_datagen as datagen;
/// Interactive exploration sessions: history, drill-down, map rendering.
pub use atlas_explorer as explorer;
/// Observability: span tracing, counters, and the Chrome trace export.
pub use atlas_obs as obs;
/// The conjunctive SQL dialect: parser, printer and predicate model.
pub use atlas_query as query;
/// The HTTP/JSON exploration server and the distributed scatter-gather path.
pub use atlas_serve as serve;
/// Statistical kernels: quantiles, histograms, sketches, dependence metrics.
pub use atlas_stats as stats;

/// The most commonly used types, re-exported flat for convenience.
pub mod prelude {
    pub use atlas_columnar::{
        default_segment_rows, Bitmap, Catalog, Column, ColumnStats, ColumnSummary, ColumnView,
        DataType, Field, Schema, Segment, Table, TableBuilder, Value,
    };
    pub use atlas_core::{
        AnytimeAtlas, AnytimeConfig, AnytimeIteration, AnytimeResult, Atlas, AtlasBuilder,
        AtlasConfig, CachedAtlas, CategoricalCutStrategy, CutConfig, CutStrategy, DataMap,
        ExploreOptions, MapDistance, MapDistanceMetric, MapResult, MergePolicy, MergeStrategy,
        NumericCutStrategy, PhaseTimings, PipelineContext, ProfileStats, RankedMap, Ranker, Region,
        TableProfile,
    };
    pub use atlas_datagen::{CensusGenerator, MixtureGenerator, OrdersGenerator, SdssGenerator};
    pub use atlas_explorer::{render_map, render_result, MapQuality, ReadabilityReport, Session};
    pub use atlas_query::{
        parse_query, to_compact, to_sql, ConjunctiveQuery, Predicate, PredicateSet,
    };
    pub use atlas_serve::{DatasetOptions, Registry, ServeConfig, Server, ServerHandle};
}
