//! # Atlas — Fast Cartography for Data Explorers
//!
//! A from-scratch Rust reproduction of **"Fast Cartography for Data
//! Explorers"** (Thibault Sellam & Martin Kersten, PVLDB 6(12), VLDB 2013).
//!
//! Atlas answers queries with queries: instead of returning a long list of
//! tuples, it summarises the result of a user query with a handful of **data
//! maps** — small sets of conjunctive queries, each describing one region of
//! the data — which the user can drill into interactively.
//!
//! This crate is a thin facade that re-exports the public API of the
//! workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`columnar`] | `atlas-columnar` | in-memory column store (tables, bitmaps, CSV, statistics) |
//! | [`stats`] | `atlas-stats` | entropy / MI / VI, quantile sketches, 1-D clustering, agreement scores |
//! | [`query`] | `atlas-query` | the conjunctive query language (AST, parser, printer, evaluation) |
//! | [`core`] | `atlas-core` | the map-generation engine: CUT, clustering, merging, ranking, anytime, baselines |
//! | [`datagen`] | `atlas-datagen` | seeded synthetic datasets (census, mixtures, sky survey, orders) |
//! | [`explorer`] | `atlas-explorer` | exploration sessions, rendering, quality metrics |
//!
//! # Quickstart
//!
//! ```
//! use atlas::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Get a table (here: the synthetic census of the paper's intro).
//! let table = Arc::new(CensusGenerator::with_rows(5_000, 42).generate());
//!
//! // 2. Build the engine with the paper's default configuration.
//! let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
//!
//! // 3. Ask a question — Atlas answers with ranked data maps.
//! let query = parse_query("SELECT * FROM census WHERE age BETWEEN 17 AND 90").unwrap();
//! let result = atlas.explore(&query).unwrap();
//!
//! assert!(result.num_maps() >= 1);
//! assert!(result.best().unwrap().map.num_regions() <= 8);
//! println!("{}", render_result(&result));
//! ```

#![warn(missing_docs)]

pub use atlas_columnar as columnar;
pub use atlas_core as core;
pub use atlas_datagen as datagen;
pub use atlas_explorer as explorer;
pub use atlas_query as query;
pub use atlas_stats as stats;

/// The most commonly used types, re-exported flat for convenience.
pub mod prelude {
    pub use atlas_columnar::{
        Bitmap, Catalog, Column, DataType, Field, Schema, Table, TableBuilder, Value,
    };
    pub use atlas_core::{
        AnytimeAtlas, AnytimeConfig, Atlas, AtlasConfig, CategoricalCutStrategy, CutConfig,
        DataMap, MapDistanceMetric, MapResult, MergeStrategy, NumericCutStrategy, RankedMap,
        Region,
    };
    pub use atlas_datagen::{CensusGenerator, MixtureGenerator, OrdersGenerator, SdssGenerator};
    pub use atlas_explorer::{render_map, render_result, MapQuality, ReadabilityReport, Session};
    pub use atlas_query::{
        parse_query, to_compact, to_sql, ConjunctiveQuery, Predicate, PredicateSet,
    };
}
