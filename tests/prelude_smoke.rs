//! Smoke test: the facade `prelude` re-exports the documented public API.
//!
//! The README and the crate docs promise that `use atlas::prelude::*` is
//! enough to run the whole pipeline. This test uses each promised name
//! directly from the prelude, so any future re-export regression fails to
//! compile rather than surfacing as a broken doc example.

use atlas::prelude::*;
use std::sync::Arc;

#[test]
fn prelude_exports_the_documented_api() {
    // CensusGenerator + the builder API: Atlas::builder -> AtlasBuilder -> Atlas.
    let table: Arc<Table> = Arc::new(CensusGenerator::with_rows(500, 7).generate());
    let builder: AtlasBuilder = Atlas::builder(Arc::clone(&table)).config(AtlasConfig::default());
    let atlas: Atlas = builder.build().expect("default config is valid");

    // parse_query produces a ConjunctiveQuery usable by the engine.
    let query: ConjunctiveQuery =
        parse_query("SELECT * FROM census WHERE age BETWEEN 17 AND 90").expect("query parses");

    let result = atlas.explore(&query).expect("exploration succeeds");
    assert!(result.num_maps() >= 1);

    // The build-time statistics profile is reachable through the prelude.
    let stats: ProfileStats = atlas.profile_stats();
    assert!(stats.hits + stats.misses > 0);

    // DataMap is reachable by name, and render_result works on the result.
    let best: &DataMap = &result.best().expect("at least one map").map;
    assert!(best.num_regions() >= 2);
    let rendered = render_result(&result);
    assert!(!rendered.is_empty());
}

#[test]
fn prelude_exports_the_anytime_surface() {
    let table: Arc<Table> = Arc::new(CensusGenerator::with_rows(2_000, 7).generate());
    let atlas = Atlas::builder(Arc::clone(&table))
        .build()
        .expect("default config is valid");
    let query = parse_query("SELECT * FROM census").expect("query parses");

    // ExploreOptions + explore_iter stream AnytimeIterations.
    let options = ExploreOptions {
        initial_sample: 200,
        ..ExploreOptions::exhaustive()
    };
    let mut last: Option<AnytimeIteration> = None;
    for step in atlas
        .explore_iter(&query, options.clone())
        .expect("iterator starts")
    {
        last = Some(step.expect("iteration succeeds"));
    }
    assert_eq!(last.expect("at least one iteration").sample_size, 2_000);

    // The blocking form returns an AnytimeResult.
    let outcome: AnytimeResult = atlas
        .explore_anytime(&query, options)
        .expect("anytime run succeeds");
    assert!(outcome.reached_full_data);
}

#[test]
fn prelude_exports_the_pipeline_traits() {
    // The stage traits are nameable from the prelude, so user code can write
    // custom implementations against `use atlas::prelude::*` alone.
    #[derive(Debug)]
    struct FewestRegionsFirst;
    impl Ranker for FewestRegionsFirst {
        fn name(&self) -> &str {
            "fewest-regions-first"
        }
        fn rank(&self, maps: Vec<DataMap>) -> Vec<RankedMap> {
            let mut ranked: Vec<RankedMap> = maps
                .into_iter()
                .map(|map| RankedMap {
                    score: -(map.num_regions() as f64),
                    map,
                })
                .collect();
            ranked.sort_by(|a, b| b.score.total_cmp(&a.score));
            ranked
        }
    }

    let table: Arc<Table> = Arc::new(CensusGenerator::with_rows(500, 7).generate());
    let atlas = Atlas::builder(Arc::clone(&table))
        .ranker(FewestRegionsFirst)
        .build()
        .expect("custom ranker builds");
    let result = atlas
        .explore(&parse_query("SELECT * FROM census").expect("query parses"))
        .expect("exploration succeeds");
    for pair in result.maps.windows(2) {
        assert!(pair[0].map.num_regions() <= pair[1].map.num_regions());
    }
}

#[test]
fn prelude_exports_support_types() {
    // Columnar building blocks.
    let schema = Schema::new(vec![Field::new("x", DataType::Float)]).expect("valid schema");
    let mut builder = TableBuilder::new("t", schema);
    builder
        .push_row(&[Value::Float(1.0)])
        .expect("row matches schema");
    let table: Table = builder.build().expect("non-empty table");
    let bitmap: Bitmap = table.full_selection();
    assert_eq!(bitmap.count(), 1);

    // Query pretty-printers round-trip through the parser.
    let query = ConjunctiveQuery::all("t").and(Predicate::range("x", 0.0, 2.0));
    let reparsed = parse_query(&to_sql(&query)).expect("printed SQL parses");
    assert_eq!(reparsed, query);
    assert!(!to_compact(&query).is_empty());
}

#[test]
fn prelude_exports_the_serving_surface() {
    // Registry + DatasetOptions + Server/ServeConfig/ServerHandle: boot on
    // an ephemeral port, check liveness over a real socket, shut down.
    let table = Arc::new(CensusGenerator::with_rows(300, 7).generate());
    let mut registry: Registry = Registry::new();
    registry
        .add_table("census", table, DatasetOptions::default())
        .expect("dataset registers");
    let handle: ServerHandle =
        Server::start(registry, ServeConfig::default().with_threads(2)).expect("server boots");
    let client = atlas::serve::Client::new(handle.addr());
    assert_eq!(client.get("/healthz").expect("healthz answers").status, 200);
    handle.shutdown();
}
