//! Smoke test: the facade `prelude` re-exports the documented public API.
//!
//! The README and the crate docs promise that `use atlas::prelude::*` is
//! enough to run the whole pipeline. This test uses each promised name
//! directly from the prelude, so any future re-export regression fails to
//! compile rather than surfacing as a broken doc example.

use atlas::prelude::*;
use std::sync::Arc;

#[test]
fn prelude_exports_the_documented_api() {
    // CensusGenerator + Atlas + AtlasConfig.
    let table: Arc<Table> = Arc::new(CensusGenerator::with_rows(500, 7).generate());
    let config = AtlasConfig::default();
    let atlas: Atlas = Atlas::new(Arc::clone(&table), config).expect("default config is valid");

    // parse_query produces a ConjunctiveQuery usable by the engine.
    let query: ConjunctiveQuery =
        parse_query("SELECT * FROM census WHERE age BETWEEN 17 AND 90").expect("query parses");

    let result = atlas.explore(&query).expect("exploration succeeds");
    assert!(result.num_maps() >= 1);

    // DataMap is reachable by name, and render_result works on the result.
    let best: &DataMap = &result.best().expect("at least one map").map;
    assert!(best.num_regions() >= 2);
    let rendered = render_result(&result);
    assert!(!rendered.is_empty());
}

#[test]
fn prelude_exports_support_types() {
    // Columnar building blocks.
    let schema = Schema::new(vec![Field::new("x", DataType::Float)]).expect("valid schema");
    let mut builder = TableBuilder::new("t", schema);
    builder
        .push_row(&[Value::Float(1.0)])
        .expect("row matches schema");
    let table: Table = builder.build().expect("non-empty table");
    let bitmap: Bitmap = table.full_selection();
    assert_eq!(bitmap.count(), 1);

    // Query pretty-printers round-trip through the parser.
    let query = ConjunctiveQuery::all("t").and(Predicate::range("x", 0.0, 2.0));
    let reparsed = parse_query(&to_sql(&query)).expect("printed SQL parses");
    assert_eq!(reparsed, query);
    assert!(!to_compact(&query).is_empty());
}
