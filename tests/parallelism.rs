//! The determinism contract of `AtlasConfig::parallelism`: a pool-backed
//! engine must return **bit-for-bit** the same ranked maps as the sequential
//! one, on arbitrary tables and for both merge operators.
//!
//! This is the acceptance test of the parallel-pipeline redesign — the knob
//! may only change *when* the answer arrives, never *what* it is.

use atlas::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// A random survey-shaped table: two numeric and two categorical attributes
/// with a planted numeric↔categorical dependency so clustering and merging
/// both have real work to do.
fn build_table(numeric: &[f64], categories: &[u8]) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("x", DataType::Float),
        Field::new("y", DataType::Float),
        Field::new("c", DataType::Str),
        Field::new("d", DataType::Str),
    ])
    .unwrap();
    let mut builder = TableBuilder::new("t", schema);
    for (i, &x) in numeric.iter().enumerate() {
        let c = categories[i % categories.len()] % 4;
        // y depends on c, d depends on x's sign: dependencies to discover.
        let y = f64::from(c) * 100.0 + x / 10.0;
        let d = if x >= 0.0 { "pos" } else { "neg" };
        builder
            .push_row(&[
                Value::Float(x),
                Value::Float(y),
                Value::Str(format!("cat{c}")),
                Value::Str(d.to_string()),
            ])
            .unwrap();
    }
    Arc::new(builder.build().unwrap())
}

/// Assert two explorations are bit-for-bit identical: same map order, same
/// attribute groups, same region queries and extents, same score bits.
fn assert_identical(a: &atlas::core::MapResult, b: &atlas::core::MapResult) {
    assert_eq!(a.num_maps(), b.num_maps());
    assert_eq!(a.working_set_size, b.working_set_size);
    assert_eq!(a.skipped_attributes, b.skipped_attributes);
    for (ra, rb) in a.maps.iter().zip(b.maps.iter()) {
        assert_eq!(ra.map.source_attributes, rb.map.source_attributes);
        assert_eq!(
            ra.score.to_bits(),
            rb.score.to_bits(),
            "scores must be bit-identical"
        );
        assert_eq!(ra.map.num_regions(), rb.map.num_regions());
        for (qa, qb) in ra.map.regions.iter().zip(rb.map.regions.iter()) {
            assert_eq!(to_sql(&qa.query), to_sql(&qb.query));
            assert_eq!(qa.selection, qb.selection);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_and_sequential_explores_are_bit_identical(
        numeric in proptest::collection::vec(-1000.0..1000.0f64, 16..300),
        categories in proptest::collection::vec(0u8..4, 4..32),
        merge_idx in 0usize..2,
        threads in 2usize..6,
    ) {
        let table = build_table(&numeric, &categories);
        let merge = [MergeStrategy::Product, MergeStrategy::Composition][merge_idx];
        let config = AtlasConfig { merge, ..AtlasConfig::default() };
        let sequential = Atlas::new(Arc::clone(&table), config.clone().with_parallelism(1))
            .unwrap();
        let parallel = Atlas::new(Arc::clone(&table), config.with_parallelism(threads))
            .unwrap();
        let query = ConjunctiveQuery::all("t");
        let a = sequential.explore(&query).unwrap();
        let b = parallel.explore(&query).unwrap();
        assert_identical(&a, &b);

        // Drill-down queries exercise the profile-miss path under the pool.
        let drill = ConjunctiveQuery::all("t").and(Predicate::range("x", -500.0, 500.0));
        let (a, b) = (sequential.explore(&drill), parallel.explore(&drill));
        assert_eq!(
            a.is_ok(),
            b.is_ok(),
            "one engine erred where the other succeeded: {a:?} vs {b:?}"
        );
        if let (Ok(a), Ok(b)) = (a, b) {
            assert_identical(&a, &b);
        }
    }
}

/// The same contract on a realistic generated dataset, across thread counts.
#[test]
fn census_explore_is_identical_across_thread_counts() {
    let table = Arc::new(CensusGenerator::with_rows(5_000, 11).generate());
    let query = ConjunctiveQuery::all("census");
    let reference = Atlas::new(
        Arc::clone(&table),
        AtlasConfig::default().with_parallelism(1),
    )
    .unwrap()
    .explore(&query)
    .unwrap();
    assert!(reference.num_maps() >= 1);
    for threads in [2usize, 3, 8] {
        let result = Atlas::new(
            Arc::clone(&table),
            AtlasConfig::default().with_parallelism(threads),
        )
        .unwrap()
        .explore(&query)
        .unwrap();
        assert_identical(&reference, &result);
    }
}
