//! The merge algebra behind distributed scatter-gather: the coordinator
//! folds per-shard partials — [`ColumnSummary`]s, [`GkSketch`]es, profile
//! segments — and the fold must not care how the data was chunked or in
//! which order the pieces arrive.
//!
//! * `ColumnSummary::merge_from` is associative and order-invariant under
//!   arbitrary fold trees: the counting fields (non-NULL, NULL, exact
//!   distinct) and the extremes are *exactly* invariant, the streamed
//!   moments (mean, variance) to floating-point tolerance.
//! * `GkSketch::merge` keeps every queried quantile within twice the
//!   per-sketch rank bound no matter the fold order.
//! * `TableProfile::build` on the whole table equals any prefix build
//!   extended segment-by-segment with `merge_segment` — stats bit-equal,
//!   sketch answers bit-equal.

use atlas::columnar::{
    Bitmap, ColumnStats, ColumnSummary, DataType, Field, Schema, TableBuilder, Value,
};
use atlas::core::TableProfile;
use atlas::stats::GkSketch;
use proptest::prelude::*;
use std::sync::Arc;

/// Summarise one chunk of optional floats (NULLs included) through the
/// public kernel path: a single-column table, full selection.
fn chunk_summary(chunk: &[Option<f64>]) -> ColumnSummary {
    let schema = Schema::new(vec![Field::new("x", DataType::Float)]).unwrap();
    let mut builder = TableBuilder::new("chunk", schema);
    for value in chunk {
        let value = match value {
            Some(v) => Value::Float(*v),
            None => Value::Null,
        };
        builder.push_row(&[value]).unwrap();
    }
    let table = builder.build().unwrap();
    let full = Bitmap::new_full(table.num_rows());
    table.column("x").unwrap().summary(&full)
}

/// Fold `parts` pairwise in the order dictated by `picks`: each step merges
/// two worklist entries into one, so the sequence of picks walks one
/// arbitrary binary fold tree.
fn fold_tree(parts: Vec<ColumnSummary>, picks: &[usize]) -> ColumnSummary {
    let mut worklist = parts;
    let mut step = 0;
    while worklist.len() > 1 {
        let a = picks.get(step).copied().unwrap_or(0) % worklist.len();
        let mut left = worklist.swap_remove(a);
        let b = picks.get(step + 1).copied().unwrap_or(0) % worklist.len();
        let right = worklist.swap_remove(b);
        left.merge_from(&right);
        worklist.push(left);
        step += 2;
    }
    worklist.pop().expect("at least one part")
}

/// Exact fields must match exactly; streamed moments to relative tolerance.
fn assert_stats_close(a: &ColumnStats, b: &ColumnStats) {
    assert_eq!(a.dtype, b.dtype);
    assert_eq!(a.non_null_count, b.non_null_count);
    assert_eq!(a.null_count, b.null_count);
    assert_eq!(a.distinct_count, b.distinct_count);
    assert_eq!(a.min, b.min, "min is an exact fold");
    assert_eq!(a.max, b.max, "max is an exact fold");
    let close = |x: Option<f64>, y: Option<f64>, what: &str| match (x, y) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() <= 1e-9 * scale, "{what}: {x} vs {y}");
        }
        other => panic!("{what} differs in presence: {other:?}"),
    };
    close(a.mean, b.mean, "mean");
    close(a.variance, b.variance, "variance");
}

/// Split `values` at the (deduplicated, sorted) cut points.
fn chunks_of<T: Clone>(values: &[T], cuts: &[usize]) -> Vec<Vec<T>> {
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (values.len() + 1)).collect();
    bounds.push(0);
    bounds.push(values.len());
    bounds.sort_unstable();
    bounds.dedup();
    bounds
        .windows(2)
        .map(|w| values[w[0]..w[1]].to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any chunking, any fold tree: the merged summary describes the
    /// concatenated column. Values are drawn from a small lattice so
    /// duplicates (and thus a non-trivial exact distinct set) are common;
    /// code 40 stands for NULL.
    #[test]
    fn column_summary_merge_is_order_invariant(
        codes in proptest::collection::vec(0u8..41, 1..120),
        cuts in proptest::collection::vec(0usize..120, 0..8),
        picks in proptest::collection::vec(0usize..64, 32),
    ) {
        let values: Vec<Option<f64>> = codes
            .iter()
            .map(|&code| (code < 40).then(|| (f64::from(code) - 20.0) / 4.0))
            .collect();
        let whole = chunk_summary(&values);
        let parts: Vec<ColumnSummary> =
            chunks_of(&values, &cuts).iter().map(|c| chunk_summary(c)).collect();

        // Reference: the coordinator's canonical ascending fold from empty.
        let mut ascending = ColumnSummary::empty(DataType::Float);
        for part in &parts {
            ascending.merge_from(part);
        }
        // The ascending fold reproduces the unchunked summary's stats.
        assert_stats_close(&whole.to_stats(), &ascending.to_stats());

        // An arbitrary fold tree agrees with the ascending fold.
        let shuffled = fold_tree(parts, &picks);
        assert_stats_close(&ascending.to_stats(), &shuffled.to_stats());
    }

    /// Folding per-chunk GK sketches in any order keeps every queried
    /// quantile's rank error within twice the per-sketch bound.
    #[test]
    fn gk_sketch_merge_is_order_invariant(
        values in proptest::collection::vec(-1e6..1e6f64, 8..300),
        cuts in proptest::collection::vec(0usize..300, 0..6),
        picks in proptest::collection::vec(0usize..64, 16),
        epsilon in 0.02f64..0.2,
    ) {
        let chunks = chunks_of(&values, &cuts);
        let mut parts: Vec<GkSketch> = chunks
            .iter()
            .map(|chunk| {
                let mut sketch = GkSketch::new(epsilon);
                sketch.extend(chunk);
                sketch
            })
            .collect();

        // Fold in the arbitrary order dictated by `picks`.
        let mut step = 0;
        while parts.len() > 1 {
            let a = picks.get(step).copied().unwrap_or(0) % parts.len();
            let mut left = parts.swap_remove(a);
            let b = picks.get(step + 1).copied().unwrap_or(0) % parts.len();
            let right = parts.swap_remove(b);
            left.merge(&right);
            parts.push(left);
            step += 2;
        }
        let merged = parts.pop().unwrap();
        prop_assert_eq!(merged.count(), values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        for p in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let answer = merged.query(p).expect("non-empty sketch");
            let rank = sorted.iter().filter(|v| **v <= answer).count() as f64;
            let target = p * n;
            prop_assert!(
                (rank - target).abs() <= 2.0 * epsilon * n + 1.0,
                "p={} answer={} rank={} target={} n={}",
                p, answer, rank, target, n
            );
        }
    }

    /// `TableProfile::build` over the whole table is bit-identical to
    /// building over a prefix of segments and folding the rest in with
    /// `merge_segment` — the invariant `Atlas::append` (and the distributed
    /// coordinator's summary gather) stands on.
    #[test]
    fn profile_build_equals_segmentwise_merge(
        numeric in proptest::collection::vec(-1000.0..1000.0f64, 12..160),
        labels in proptest::collection::vec(0u8..5, 4..16),
        segment_rows in 4usize..40,
        prefix_len in 1usize..6,
    ) {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("c", DataType::Str),
        ])
        .unwrap();
        let mut builder = TableBuilder::new("t", schema.clone()).with_segment_rows(segment_rows);
        for (i, &x) in numeric.iter().enumerate() {
            let label = labels[i % labels.len()];
            builder
                .push_row(&[Value::Float(x), Value::Str(format!("l{label}"))])
                .unwrap();
        }
        let table = Arc::new(builder.build().unwrap());
        let segments = table.segments();
        let prefix_len = 1 + (prefix_len - 1) % segments.len();

        let full = TableProfile::build(&table, Some(0.05));
        let prefix_table = Arc::new(atlas::columnar::Table::from_segments(
            "t",
            schema,
            segments[..prefix_len].to_vec(),
        ).unwrap());
        let mut folded = TableProfile::build(&prefix_table, Some(0.05));
        for segment in &segments[prefix_len..] {
            folded = folded.merge_segment(segment);
        }

        prop_assert_eq!(full.num_rows(), folded.num_rows());
        for column in ["x", "c"] {
            let a = full.column(column).expect("profiled column");
            let b = folded.column(column).expect("profiled column");
            prop_assert_eq!(&a.stats, &b.stats, "stats of '{}' must be bit-equal", column);
            prop_assert_eq!(&a.non_null, &b.non_null);
            match (&a.sketch, &b.sketch) {
                (None, None) => {}
                (Some(sa), Some(sb)) => {
                    prop_assert_eq!(sa.count(), sb.count());
                    for p in [0.25, 0.5, 0.75] {
                        prop_assert_eq!(
                            sa.query(p).map(f64::to_bits),
                            sb.query(p).map(f64::to_bits),
                            "sketch answers of '{}' must be bit-equal", column
                        );
                    }
                }
                other => panic!("sketch presence differs for '{column}': {other:?}"),
            }
        }
    }
}
