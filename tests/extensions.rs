//! Integration tests for the Section-5 extensions: join materialisation,
//! anticipative caching, and region explanations, used together the way a
//! real exploration front-end would.

use atlas::columnar::hash_join;
use atlas::core::CachedAtlas;
use atlas::explorer::{explain_region, InsightKind};
use atlas::prelude::*;
use std::sync::Arc;

/// Build a tiny star schema: a fact table of orders and a customer dimension,
/// with the planted rule that corporate customers place large orders.
fn star_schema() -> (Table, Table) {
    let orders_schema = Schema::new(vec![
        Field::new("order_id", DataType::Int),
        Field::new("customer_id", DataType::Int),
        Field::new("quantity", DataType::Int),
    ])
    .unwrap();
    let mut orders = TableBuilder::new("orders", orders_schema);
    for i in 0..600i64 {
        let customer_id = i % 30;
        let corporate = customer_id < 10;
        let quantity = if corporate { 40 + i % 10 } else { 1 + i % 10 };
        orders
            .push_row(&[Value::Int(i), Value::Int(customer_id), Value::Int(quantity)])
            .unwrap();
    }
    let customers_schema = Schema::new(vec![
        Field::new("customer_id", DataType::Int),
        Field::new("segment", DataType::Str),
        Field::new("region", DataType::Str),
    ])
    .unwrap();
    let mut customers = TableBuilder::new("customers", customers_schema);
    for c in 0..30i64 {
        let segment = if c < 10 { "corporate" } else { "retail" };
        let region = ["north", "south", "east"][(c % 3) as usize];
        customers
            .push_row(&[
                Value::Int(c),
                Value::Str(segment.into()),
                Value::Str(region.into()),
            ])
            .unwrap();
    }
    (orders.build().unwrap(), customers.build().unwrap())
}

#[test]
fn join_then_map_then_explain() {
    // Section 5.2's "materialize the join into one large temporary table",
    // followed by the normal Atlas pipeline on the denormalised view.
    let (orders, customers) = star_schema();
    let denormalised = hash_join(
        "orders_denorm",
        &orders,
        "customer_id",
        &customers,
        "customer_id",
    )
    .unwrap();
    assert_eq!(denormalised.num_rows(), 600);
    assert!(denormalised.schema().contains("segment"));

    let table = Arc::new(denormalised);
    let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
    let result = atlas
        .explore(&ConjunctiveQuery::all("orders_denorm"))
        .unwrap();
    assert!(result.num_maps() >= 1);
    // The planted dependency quantity ↔ segment must end up in one map.
    let quantity_map = result
        .maps
        .iter()
        .find(|m| m.map.source_attributes.iter().any(|a| a == "quantity"))
        .expect("a map about quantity");
    assert!(
        quantity_map
            .map
            .source_attributes
            .iter()
            .any(|a| a == "segment"),
        "quantity and segment should be grouped, got {:?}",
        quantity_map.map.source_attributes
    );

    // Explain the large-quantity region: the segment distribution should be
    // the stand-out difference.
    let large_region = quantity_map
        .map
        .regions
        .iter()
        .find(|r| {
            r.query
                .predicate_on("quantity")
                .map(|p| p.set.contains_number(45.0))
                .unwrap_or(false)
        })
        .expect("a region of large quantities");
    let insights = explain_region(&table, large_region, &result.working_set);
    let segment_insight = insights
        .iter()
        .find(|i| i.attribute == "segment")
        .expect("segment insight");
    match &segment_insight.kind {
        InsightKind::CategoricalShift {
            most_over_represented,
            ..
        } => assert_eq!(most_over_represented, "corporate"),
        other => panic!("expected a categorical shift, got {other:?}"),
    }
}

#[test]
fn cached_engine_serves_drill_downs_after_prefetch() {
    let table = Arc::new(CensusGenerator::with_rows(5_000, 23).generate());
    let mut cached = CachedAtlas::new(Arc::clone(&table), AtlasConfig::default(), 16).unwrap();
    // Warm up before the first query, as Section 5.1 suggests.
    cached.warm_up().unwrap();
    let result = cached.explore(&ConjunctiveQuery::all("census")).unwrap();
    assert_eq!(
        cached.stats().hits,
        1,
        "warm-up should serve the first query"
    );

    // Idle time: prefetch every region the user can click next.
    let total_regions: usize = result.maps.iter().map(|m| m.map.num_regions()).sum();
    let prefetched = cached.prefetch(&result, total_regions);
    assert!(prefetched >= 3);

    // Whatever region the user drills into is now answered from the cache.
    let best = result.best().unwrap();
    let misses_before = cached.stats().misses;
    for region in best.map.regions.iter().take(2) {
        let drill = cached.explore(&region.query).unwrap();
        assert!(drill.working_set_size <= result.working_set_size);
    }
    assert_eq!(
        cached.stats().misses,
        misses_before,
        "prefetched drill-downs must not recompute"
    );
}

#[test]
fn explanations_are_consistent_with_the_region_queries() {
    // For a region defined by a predicate on an attribute, that attribute's
    // own insight must show a shift in the direction of the predicate.
    let table = Arc::new(CensusGenerator::with_rows(4_000, 3).generate());
    let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
    let result = atlas.explore(&ConjunctiveQuery::all("census")).unwrap();
    let age_map = result
        .maps
        .iter()
        .find(|m| m.map.source_attributes.iter().any(|a| a == "age"));
    let Some(age_map) = age_map else {
        // Age may have been grouped differently on this seed; nothing to check.
        return;
    };
    for region in &age_map.map.regions {
        let Some(predicate) = region.query.predicate_on("age") else {
            continue;
        };
        let insights = explain_region(&table, region, &result.working_set);
        let age_insight = insights.iter().find(|i| i.attribute == "age").unwrap();
        if let InsightKind::NumericShift { region_mean, .. } = &age_insight.kind {
            assert!(
                predicate.set.contains_number(*region_mean),
                "the region's own mean age {region_mean} must satisfy its predicate {predicate}"
            );
        }
    }
}
