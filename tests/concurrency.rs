//! Concurrency guarantees of the prepared engine.
//!
//! The redesign's contract: `Atlas::builder` yields a `Send + Sync` engine
//! whose build-time statistics are shared across explorations, so one
//! `Arc<Atlas>` can serve concurrent traffic. These tests pin the auto-trait
//! bounds at compile time and check that concurrent explorations agree with
//! single-threaded ones.

use atlas::prelude::*;
use std::sync::Arc;
use std::thread;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn engine_types_are_send_and_sync() {
    assert_send_sync::<Atlas>();
    assert_send_sync::<AtlasBuilder>();
    assert_send_sync::<Arc<Atlas>>();
    assert_send_sync::<TableProfile>();
    assert_send_sync::<MapResult>();
}

/// The signature a comparison needs: deterministic per map, order included.
fn fingerprint(result: &MapResult) -> Vec<(Vec<String>, Vec<u64>, f64)> {
    result
        .maps
        .iter()
        .map(|ranked| {
            (
                ranked.map.source_attributes.clone(),
                ranked.map.region_counts(),
                ranked.score,
            )
        })
        .collect()
}

#[test]
fn concurrent_explorations_agree_with_single_threaded_results() {
    const THREADS: usize = 6;
    let table = Arc::new(CensusGenerator::with_rows(6_000, 42).generate());
    let atlas = Arc::new(
        Atlas::builder(Arc::clone(&table))
            .build()
            .expect("default config is valid"),
    );

    // Each thread gets its own query; queries repeat across threads so the
    // shared profile is hit concurrently from several threads at once.
    let queries: Vec<ConjunctiveQuery> = (0..THREADS)
        .map(|i| match i % 3 {
            0 => ConjunctiveQuery::all("census"),
            1 => ConjunctiveQuery::all("census").and(Predicate::range("age", 17.0, 45.0)),
            _ => ConjunctiveQuery::all("census").and(Predicate::values("sex", ["Male"])),
        })
        .collect();

    // Reference: the same queries, answered sequentially.
    let expected: Vec<_> = queries
        .iter()
        .map(|q| fingerprint(&atlas.explore(q).expect("sequential exploration succeeds")))
        .collect();

    let concurrent: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|query| {
                let engine = Arc::clone(&atlas);
                scope.spawn(move || {
                    fingerprint(
                        &engine
                            .explore(query)
                            .expect("concurrent exploration succeeds"),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no exploration thread panics"))
            .collect()
    });

    for (i, (seq, conc)) in expected.iter().zip(concurrent.iter()).enumerate() {
        assert_eq!(seq, conc, "thread {i} diverged from the sequential result");
    }
}

#[test]
fn concurrent_anytime_runs_share_one_engine() {
    let table = Arc::new(CensusGenerator::with_rows(4_000, 7).generate());
    let atlas = Arc::new(
        Atlas::builder(Arc::clone(&table))
            .build()
            .expect("default config is valid"),
    );
    let options = ExploreOptions {
        initial_sample: 250,
        growth_factor: 4.0,
        ..ExploreOptions::exhaustive()
    };

    let outcomes: Vec<AnytimeResult> = thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&atlas);
                let options = options.clone();
                scope.spawn(move || {
                    engine
                        .explore_anytime(&ConjunctiveQuery::all("census"), options)
                        .expect("anytime run succeeds")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no anytime thread panics"))
            .collect()
    });

    // Identical options + identical seed => identical iteration ladders.
    for outcome in &outcomes {
        assert!(outcome.reached_full_data);
        assert_eq!(
            outcome.iterations.len(),
            outcomes[0].iterations.len(),
            "seeded sampling is deterministic across threads"
        );
        let final_result = &outcome.best().expect("at least one iteration").result;
        assert_eq!(
            fingerprint(final_result),
            fingerprint(&outcomes[0].best().unwrap().result)
        );
    }
}
