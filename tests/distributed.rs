//! The distributed scatter-gather acceptance suite: shard servers holding
//! subsets of a table's segments, a [`Coordinator`] that pushes candidate
//! generation and contingency counting down to them, and the property the
//! whole design hangs on — **the shard layout is invisible in the answer**.
//!
//! * Random tables under random segment→shard assignments (empty shards and
//!   a single mega-shard included) explore bit-for-bit identically to the
//!   in-process engine.
//! * The 100k census is bit-identical at N ∈ {1, 2, 4} shards — the
//!   acceptance bar of the distributed refactor.
//! * A shard killed mid-explore surfaces a typed [`AtlasError::Distributed`]
//!   promptly — never a hang, never a partial map.
//! * A slow shard trips the per-request timeout and is retried exactly once.
//! * Real `atlas-serve` processes (one per shard) agree with the in-process
//!   engine too, and their death is detected.

use atlas::core::AtlasError;
use atlas::datagen::CensusConfig;
use atlas::prelude::*;
use atlas::serve::wire::Json;
use atlas::serve::{
    Client, Coordinator, DatasetOptions, Registry, ServeConfig, Server, ServerHandle,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Build a survey-shaped table, sealing a segment after every row index
/// listed in `seals` (plus wherever `segment_rows` forces one).
fn build_table(
    numeric: &[f64],
    categories: &[u8],
    seals: &[usize],
    segment_rows: usize,
) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("x", DataType::Float),
        Field::new("y", DataType::Float),
        Field::new("c", DataType::Str),
        Field::new("d", DataType::Str),
    ])
    .unwrap();
    let mut builder = TableBuilder::new("t", schema).with_segment_rows(segment_rows);
    for (i, &x) in numeric.iter().enumerate() {
        let c = categories[i % categories.len()] % 4;
        let y = f64::from(c) * 100.0 + x / 10.0;
        let d = if x >= 0.0 { "pos" } else { "neg" };
        builder
            .push_row(&[
                Value::Float(x),
                Value::Float(y),
                Value::Str(format!("cat{c}")),
                Value::Str(d.to_string()),
            ])
            .unwrap();
        if seals.contains(&i) {
            builder.seal_segment().unwrap();
        }
    }
    Arc::new(builder.build().unwrap())
}

/// A multi-segment census table matching what `atlas-serve --dataset
/// census:ROWS` generates (seed 42), with a pinned segment layout.
fn census_table(rows: usize, segment_rows: usize) -> Arc<Table> {
    Arc::new(
        CensusGenerator::new(CensusConfig {
            rows,
            seed: 42,
            segment_rows: Some(segment_rows),
            ..CensusConfig::default()
        })
        .generate(),
    )
}

/// The engine configuration every test in this suite runs: the distributed
/// coordinator merges clusters with the product operator (composition's
/// local re-cuts are not pushed down).
fn product_config() -> AtlasConfig {
    AtlasConfig {
        merge: MergeStrategy::Product,
        ..AtlasConfig::default()
    }
    .with_parallelism(2)
}

/// Boot `n` in-process shard servers, each serving the same `Arc<Table>`
/// under `name` on an ephemeral port.
fn boot_shards(
    name: &str,
    table: &Arc<Table>,
    config: &AtlasConfig,
    n: usize,
) -> (Vec<ServerHandle>, Vec<String>) {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..n {
        let mut registry = Registry::new();
        registry
            .add_table(
                name,
                Arc::clone(table),
                DatasetOptions {
                    config: config.clone(),
                    cache_capacity: 0,
                },
            )
            .unwrap();
        let handle = Server::start(registry, ServeConfig::default().with_threads(2)).unwrap();
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }
    (handles, addrs)
}

/// Assert two explorations are bit-for-bit identical: same map order, same
/// attribute groups, same region queries and extents, same score bits.
fn assert_identical(a: &atlas::core::MapResult, b: &atlas::core::MapResult) {
    assert_eq!(a.num_maps(), b.num_maps());
    assert_eq!(a.working_set_size, b.working_set_size);
    assert_eq!(a.skipped_attributes, b.skipped_attributes);
    for (ra, rb) in a.maps.iter().zip(b.maps.iter()) {
        assert_eq!(ra.map.source_attributes, rb.map.source_attributes);
        assert_eq!(
            ra.score.to_bits(),
            rb.score.to_bits(),
            "scores must be bit-identical"
        );
        assert_eq!(ra.map.num_regions(), rb.map.num_regions());
        for (qa, qb) in ra.map.regions.iter().zip(rb.map.regions.iter()) {
            assert_eq!(to_sql(&qa.query), to_sql(&qb.query));
            assert_eq!(qa.selection, qb.selection);
        }
    }
}

/// Compare in-process and distributed explorations of `query`: both succeed
/// with identical output, or both fail with the same error message.
fn assert_agree(reference: &Atlas, coordinator: &Coordinator, query: &ConjunctiveQuery) {
    let local = reference.explore(query);
    let distributed = coordinator.explore(query);
    match (local, distributed) {
        (Ok(a), Ok(b)) => assert_identical(&a, &b),
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!("local {a:?} and distributed {b:?} disagree on success"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: random data, random segment boundaries, and a
    /// random segment→shard assignment across three shard servers (often
    /// leaving some shard empty, sometimes a single mega-shard) explore
    /// bit-for-bit like the in-process engine — covering and drill-down
    /// working sets both.
    #[test]
    fn any_shard_assignment_is_bit_identical(
        numeric in proptest::collection::vec(-1000.0..1000.0f64, 16..160),
        categories in proptest::collection::vec(0u8..4, 4..16),
        seals in proptest::collection::vec(0usize..160, 0..5),
        segment_rows in 8usize..80,
        shard_of in proptest::collection::vec(0usize..3, 1..12),
    ) {
        let table = build_table(&numeric, &categories, &seals, segment_rows);
        let config = product_config();
        let reference = Atlas::new(Arc::clone(&table), config.clone()).unwrap();
        let (handles, addrs) = boot_shards("t", &table, &config, 3);
        let connected =
            Coordinator::connect(&addrs, "t", config.clone(), Duration::from_secs(10)).unwrap();
        prop_assert_eq!(connected.num_rows(), table.num_rows());

        let mut assignment = vec![Vec::new(); 3];
        for segment in 0..connected.num_segments() {
            assignment[shard_of[segment % shard_of.len()]].push(segment);
        }
        let coordinator = connected.with_assignment(assignment).unwrap();

        assert_agree(&reference, &coordinator, &ConjunctiveQuery::all("t"));
        let drill = ConjunctiveQuery::all("t").and(Predicate::range("x", -500.0, 500.0));
        assert_agree(&reference, &coordinator, &drill);

        for handle in handles {
            handle.shutdown();
        }
    }
}

/// Deterministic corner layouts: all segments on one shard of three (two
/// idle), and a rejected non-partition assignment.
#[test]
fn mega_shard_and_empty_shards_agree() {
    let table = census_table(6_000, 1_000);
    let config = product_config();
    let reference = Atlas::new(Arc::clone(&table), config.clone()).unwrap();
    let (handles, addrs) = boot_shards("census", &table, &config, 3);

    let connected =
        Coordinator::connect(&addrs, "census", config.clone(), Duration::from_secs(10)).unwrap();
    assert_eq!(connected.num_segments(), 6);
    let all: Vec<usize> = (0..6).collect();
    let coordinator = connected
        .with_assignment(vec![Vec::new(), all.clone(), Vec::new()])
        .unwrap();
    assert_agree(&reference, &coordinator, &ConjunctiveQuery::all("census"));

    // Not a partition: segment 0 assigned twice.
    let connected =
        Coordinator::connect(&addrs, "census", config.clone(), Duration::from_secs(10)).unwrap();
    let error = connected
        .with_assignment(vec![vec![0, 1, 2], vec![0, 3, 4], vec![5]])
        .unwrap_err();
    assert!(matches!(error, AtlasError::Distributed(_)), "{error}");

    for handle in handles {
        handle.shutdown();
    }
}

/// The acceptance bar from the issue: the 100k census explored through
/// N ∈ {1, 2, 4} shard servers is bit-identical — scores, region SQL,
/// counts — to single-process `Atlas::explore`.
#[test]
fn census_100k_is_bit_identical_at_1_2_4_shards() {
    let table = census_table(100_000, 12_500);
    let config = product_config();
    let reference = Atlas::new(Arc::clone(&table), config.clone()).unwrap();
    let queries = [
        "SELECT * FROM census",
        "SELECT * FROM census WHERE age BETWEEN 25 AND 60",
    ];
    for shards in [1usize, 2, 4] {
        let (handles, addrs) = boot_shards("census", &table, &config, shards);
        let coordinator =
            Coordinator::connect(&addrs, "census", config.clone(), Duration::from_secs(30))
                .unwrap();
        assert_eq!(coordinator.num_segments(), 8);
        for sql in queries {
            assert_agree(&reference, &coordinator, &parse_query(sql).unwrap());
        }
        assert!(coordinator.metrics().fan_out() > 0);
        assert_eq!(coordinator.metrics().retries(), 0);
        for handle in handles {
            handle.shutdown();
        }
    }
}

/// The composition operator is refused up front: its cluster merge re-cuts
/// regions against local storage, which the coordinator cannot push down.
#[test]
fn composition_merge_is_rejected() {
    let table = census_table(2_000, 1_000);
    let config = AtlasConfig::default().with_parallelism(2);
    assert_eq!(config.merge, MergeStrategy::Composition);
    let (handles, addrs) = boot_shards("census", &table, &config, 1);
    let error = Coordinator::connect(&addrs, "census", config, Duration::from_secs(5)).unwrap_err();
    assert!(matches!(error, AtlasError::InvalidConfig(_)), "{error}");
    for handle in handles {
        handle.shutdown();
    }
}

/// Kill one of two shards while an explore is in flight: the coordinator
/// must answer with a typed `Distributed` error well inside its timeout
/// budget — no hang, no partial map.
#[test]
fn killed_shard_surfaces_a_distributed_error() {
    let table = census_table(8_000, 1_000);
    let config = product_config();
    let (mut handles, addrs) = boot_shards("census", &table, &config, 2);
    let coordinator =
        Arc::new(Coordinator::connect(&addrs, "census", config, Duration::from_secs(2)).unwrap());

    // Slow every request on shard 1 by 100 ms so the explore is still
    // mid-scatter when the shard dies.
    let armed = Client::new(handles[1].addr())
        .post_json(
            "/shard/inject",
            &Json::object(vec![
                ("delay_ms", Json::from(100u64)),
                ("times", Json::from(10_000u64)),
            ]),
        )
        .unwrap();
    assert_eq!(armed.status, 200);

    let worker = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || coordinator.explore(&ConjunctiveQuery::all("census")))
    };
    std::thread::sleep(Duration::from_millis(150));
    let started = Instant::now();
    handles.remove(1).shutdown();
    let result = worker.join().unwrap();
    match result {
        Err(AtlasError::Distributed(message)) => {
            assert!(message.contains("shard"), "unhelpful error: {message}")
        }
        other => panic!("expected a Distributed error, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the failure must surface promptly"
    );
    for handle in handles {
        handle.shutdown();
    }
}

/// A shard that answers its first request after the per-request timeout is
/// retried exactly once, and the retried explore is still bit-identical.
#[test]
fn slow_shard_trips_timeout_and_retries_once() {
    let table = census_table(4_000, 1_000);
    let config = product_config();
    let reference = Atlas::new(Arc::clone(&table), config.clone()).unwrap();
    let (handles, addrs) = boot_shards("census", &table, &config, 2);
    let coordinator =
        Coordinator::connect(&addrs, "census", config, Duration::from_millis(400)).unwrap();

    // One injected 1200 ms stall: the first data request to shard 0 times
    // out at 400 ms and the immediate retry sails through.
    let armed = Client::new(handles[0].addr())
        .post_json(
            "/shard/inject",
            &Json::object(vec![
                ("delay_ms", Json::from(1_200u64)),
                ("times", Json::from(1u64)),
            ]),
        )
        .unwrap();
    assert_eq!(armed.status, 200);

    let query = ConjunctiveQuery::all("census");
    let local = reference.explore(&query).unwrap();
    let distributed = coordinator.explore(&query).unwrap();
    assert_identical(&local, &distributed);
    assert_eq!(
        coordinator.metrics().retries(),
        1,
        "the stalled request is retried exactly once"
    );
    for handle in handles {
        handle.shutdown();
    }
}

/// The HTTP face of the coordinator: a front server started with
/// `shards: [...]` answers `POST /distributed/explore` with the same ranked
/// maps (score bits, region SQL, counts) as the in-process engine, and
/// `GET /metrics` exposes the scatter counters.
#[test]
fn distributed_explore_endpoint_matches_in_process() {
    let table = census_table(6_000, 1_500);
    let config = product_config();
    let reference = Atlas::new(Arc::clone(&table), config.clone()).unwrap();
    let (shard_handles, addrs) = boot_shards("census", &table, &config, 2);

    let mut registry = Registry::new();
    registry
        .add_table(
            "census",
            Arc::clone(&table),
            DatasetOptions {
                config: config.clone(),
                cache_capacity: 0,
            },
        )
        .unwrap();
    let mut serve_config = ServeConfig::default().with_threads(2);
    serve_config.shards = addrs.clone();
    serve_config.shard_timeout = Duration::from_secs(10);
    let front = Server::start(registry, serve_config).unwrap();
    let client = Client::new(front.addr());

    let sql = "SELECT * FROM census WHERE age >= 30";
    let reply = client.post_text("/distributed/explore", sql).unwrap();
    assert_eq!(reply.status, 200, "{:?}", reply.json());
    let reply = reply.json().expect("JSON reply");
    let local = reference.explore(&parse_query(sql).unwrap()).unwrap();

    let maps = reply.get("maps").unwrap().items().unwrap();
    assert_eq!(maps.len(), local.num_maps());
    for (wire_map, ranked) in maps.iter().zip(local.maps.iter()) {
        let score = wire_map.get("score").unwrap().num().unwrap();
        assert_eq!(score.to_bits(), ranked.score.to_bits());
        let regions = wire_map.get("regions").unwrap().items().unwrap();
        assert_eq!(regions.len(), ranked.map.num_regions());
        for (wire_region, region) in regions.iter().zip(ranked.map.regions.iter()) {
            assert_eq!(
                wire_region.get("sql").unwrap().str().unwrap(),
                to_sql(&region.query)
            );
            assert_eq!(
                wire_region.get("count").unwrap().num().unwrap() as usize,
                region.count()
            );
        }
    }

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let body = metrics.json().expect("metrics are JSON").encode();
    assert!(body.contains("dist_explore"), "{body}");
    assert!(body.contains("fan_out"), "{body}");

    // A GET on the endpoint is a method error, not a crash.
    let wrong = client.get("/distributed/explore").unwrap();
    assert_eq!(wrong.status, 405);

    front.shutdown();
    for handle in shard_handles {
        handle.shutdown();
    }
}

/// A child `atlas-serve` process that is killed when the test ends, pass or
/// panic.
struct ShardProcess {
    child: std::process::Child,
    addr: String,
    // Kept open so the child's later stderr writes never hit a closed pipe
    // (the few banner lines fit the pipe buffer comfortably).
    _stderr: std::io::BufReader<std::process::ChildStderr>,
}

impl Drop for ShardProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Locate (building if necessary) the `atlas-serve` binary next to the test
/// executable.
fn shard_binary() -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("test executable path");
    // target/<profile>/deps/distributed-<hash> → target/<profile>
    let dir = exe
        .parent()
        .and_then(std::path::Path::parent)
        .expect("target profile directory")
        .to_path_buf();
    let binary = dir.join(format!("atlas-serve{}", std::env::consts::EXE_SUFFIX));
    if !binary.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let mut build = std::process::Command::new(cargo);
        build.args(["build", "-p", "atlas-serve", "--bin", "atlas-serve"]);
        if dir.file_name().and_then(|n| n.to_str()) == Some("release") {
            build.arg("--release");
        }
        let status = build.status().expect("cargo build atlas-serve");
        assert!(status.success(), "building atlas-serve failed");
    }
    binary
}

/// Spawn one `atlas-serve` shard process on an ephemeral port and parse the
/// bound address off its startup banner.
fn spawn_shard(binary: &std::path::Path, spec: &str, segment_rows: usize) -> ShardProcess {
    use std::io::BufRead;
    let mut child = std::process::Command::new(binary)
        .args([
            "--port",
            "0",
            "--dataset",
            spec,
            "--threads",
            "2",
            "--cache",
            "0",
        ])
        .env("ATLAS_SEGMENT_ROWS", segment_rows.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn atlas-serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = std::io::BufReader::new(stderr);
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(rest) = line.split("listening on http://").nth(1) {
            addr = rest.split_whitespace().next().map(String::from);
            break;
        }
        line.clear();
    }
    let addr = addr.unwrap_or_else(|| {
        let _ = child.kill();
        panic!("atlas-serve printed no listening banner");
    });
    ShardProcess {
        child,
        addr,
        _stderr: reader,
    }
}

/// The end-to-end deployment shape: three real `atlas-serve` processes each
/// regenerate `census:20000` (same spec, same seed, same segment layout via
/// `ATLAS_SEGMENT_ROWS`), the coordinator scatters over real sockets, and
/// the answer is bit-identical to the in-process engine. Killing one
/// process turns the next explore into a typed `Distributed` error.
#[test]
fn process_shards_match_and_their_death_is_detected() {
    let binary = shard_binary();
    let shards: Vec<ShardProcess> = (0..3)
        .map(|_| spawn_shard(&binary, "census:20000", 4_096))
        .collect();
    let addrs: Vec<String> = shards.iter().map(|s| s.addr.clone()).collect();

    let table = census_table(20_000, 4_096);
    let config = product_config();
    let reference = Atlas::new(Arc::clone(&table), config.clone()).unwrap();
    let coordinator =
        Coordinator::connect(&addrs, "census", config, Duration::from_secs(30)).unwrap();
    assert_eq!(coordinator.num_rows(), 20_000);
    assert_eq!(coordinator.num_segments(), 5);

    assert_agree(&reference, &coordinator, &ConjunctiveQuery::all("census"));
    let drill = parse_query("SELECT * FROM census WHERE hours_per_week >= 30").unwrap();
    assert_agree(&reference, &coordinator, &drill);

    // One shard process dies (the other two stay up); the very next
    // explore reports it by address.
    let mut shards = shards;
    let mut victim = shards.remove(0);
    victim.child.kill().unwrap();
    victim.child.wait().unwrap();
    let error = coordinator
        .explore(&ConjunctiveQuery::all("census"))
        .unwrap_err();
    match error {
        AtlasError::Distributed(message) => {
            assert!(message.contains("shard"), "unhelpful error: {message}")
        }
        other => panic!("expected a Distributed error, got {other:?}"),
    }
}
