//! Trace propagation and the observability surface, end to end:
//!
//! * A distributed explore over two live shard servers reassembles into a
//!   **single** trace tree containing every pipeline phase, kernel-path
//!   events, and per-shard child spans — while the answer stays
//!   bit-identical to the in-process engine.
//! * Under seeded faults, retried / hedged shard calls and circuit-breaker
//!   skips appear as correctly labeled children of the same tree.
//! * `?trace=1` is purely additive on the wire: the `maps` member is
//!   byte-identical with and without it.
//! * `GET /debug/traces[/:id]`, `GET /healthz`, and the Prometheus
//!   negotiation of `GET /metrics` answer with the documented shapes.
//!
//! Every test flips the process-global tracer (the enabled flag and the
//! span ring), so the whole file serializes on one gate mutex.

use atlas::core::MapResult;
use atlas::datagen::CensusConfig;
use atlas::obs;
use atlas::prelude::*;
use atlas::serve::wire::Json;
use atlas::serve::{
    CircuitConfig, CircuitState, Client, Coordinator, CoordinatorOptions, HedgePolicy, RetryPolicy,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// The whole file shares one process tracer; hold this for any test body.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Turn tracing on with an empty ring; restore "off" on drop (panics
/// included) so the next gate holder starts from the disabled default.
struct Traced;

impl Traced {
    fn begin() -> Traced {
        obs::set_enabled(true);
        obs::tracer().clear();
        Traced
    }
}

impl Drop for Traced {
    fn drop(&mut self) {
        obs::set_enabled(false);
        obs::tracer().clear();
    }
}

/// A multi-segment census table with a pinned layout.
fn census_table(rows: usize, segment_rows: usize) -> Arc<Table> {
    Arc::new(
        CensusGenerator::new(CensusConfig {
            rows,
            seed: 42,
            segment_rows: Some(segment_rows),
            ..CensusConfig::default()
        })
        .generate(),
    )
}

/// Distributed explore requires the product merge.
fn product_config() -> AtlasConfig {
    AtlasConfig {
        merge: MergeStrategy::Product,
        ..AtlasConfig::default()
    }
    .with_parallelism(2)
}

/// Generous timeouts, one retry, no hedge, breakers off: faults only bite
/// where a test arms them.
fn calm_options() -> CoordinatorOptions {
    CoordinatorOptions {
        shard_timeout: Duration::from_secs(10),
        connect_timeout: Duration::from_secs(2),
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(5),
            multiplier: 2.0,
            jitter: 0.5,
        },
        hedge: HedgePolicy::Off,
        circuit: CircuitConfig {
            failure_threshold: 0,
            cool_down: Duration::ZERO,
        },
        ..CoordinatorOptions::default()
    }
}

/// Two live shard servers over one census table plus the in-process
/// reference engine.
struct Rig {
    config: AtlasConfig,
    reference: Atlas,
    handles: Vec<ServerHandle>,
    addrs: Vec<String>,
}

fn rig() -> Rig {
    let table = census_table(3_000, 300);
    let config = product_config();
    let reference = Atlas::new(Arc::clone(&table), config.clone()).unwrap();
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let mut registry = Registry::new();
        registry
            .add_table(
                "census",
                Arc::clone(&table),
                DatasetOptions {
                    config: config.clone(),
                    cache_capacity: 0,
                },
            )
            .unwrap();
        let handle = Server::start(registry, ServeConfig::default().with_threads(2)).unwrap();
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }
    Rig {
        config,
        reference,
        handles,
        addrs,
    }
}

impl Rig {
    fn coordinator(&self, options: CoordinatorOptions) -> Coordinator {
        Coordinator::connect_with(&self.addrs, "census", self.config.clone(), options).unwrap()
    }

    /// Arm a fault plan on one shard through `POST /shard/inject`.
    fn arm(&self, shard: usize, faults: Vec<Json>) {
        let body = Json::object(vec![("plan", Json::array(faults))]);
        let reply = Client::new(self.handles[shard].addr())
            .post_json("/shard/inject", &body)
            .unwrap();
        assert_eq!(reply.status, 200, "{:?}", reply.json());
    }

    fn shutdown(self) {
        for handle in self.handles {
            handle.shutdown();
        }
    }
}

fn delay_fault(ms: u64) -> Json {
    Json::object(vec![("fault", Json::from("delay")), ("ms", Json::from(ms))])
}

fn error_fault(status: u64) -> Json {
    Json::object(vec![
        ("fault", Json::from("error")),
        ("status", Json::from(status)),
    ])
}

fn kill_fault() -> Json {
    Json::object(vec![("fault", Json::from("kill"))])
}

/// Bit-for-bit equality of two explorations: same map order, attribute
/// groups, region SQL and extents, score *bits*.
fn assert_identical(a: &MapResult, b: &MapResult) {
    assert_eq!(a.num_maps(), b.num_maps());
    assert_eq!(a.working_set_size, b.working_set_size);
    for (ra, rb) in a.maps.iter().zip(b.maps.iter()) {
        assert_eq!(ra.map.source_attributes, rb.map.source_attributes);
        assert_eq!(ra.score.to_bits(), rb.score.to_bits());
        for (qa, qb) in ra.map.regions.iter().zip(rb.map.regions.iter()) {
            assert_eq!(to_sql(&qa.query), to_sql(&qb.query));
            assert_eq!(qa.selection, qb.selection);
        }
    }
}

/// The reassembly contract: exactly one root, every other span's parent is
/// present, and children nest inside their parents' intervals — across
/// machines (adopted shard spans) and threads (scatter, hedges).
fn assert_single_tree(spans: &[obs::SpanRecord]) {
    let by_id: HashMap<u64, &obs::SpanRecord> = spans.iter().map(|s| (s.span_id, s)).collect();
    let mut roots = 0;
    for span in spans {
        match by_id.get(&span.parent_id) {
            None => {
                assert_eq!(
                    span.parent_id, 0,
                    "span '{}' points at a parent missing from its trace",
                    span.name
                );
                roots += 1;
            }
            Some(parent) => {
                assert!(
                    parent.start_us <= span.start_us && span.end_us() <= parent.end_us(),
                    "span '{}' [{}..{}] escapes parent '{}' [{}..{}]",
                    span.name,
                    span.start_us,
                    span.end_us(),
                    parent.name,
                    parent.start_us,
                    parent.end_us()
                );
            }
        }
    }
    assert_eq!(roots, 1, "a reassembled trace has exactly one root");
}

fn names_present(spans: &[obs::SpanRecord], names: &[&str]) {
    for name in names {
        assert!(
            spans.iter().any(|s| s.name == *name),
            "no '{name}' span in {:?}",
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
        );
    }
}

/// The PR's acceptance shape: a traced distributed explore over two shards
/// yields one tree holding all five pipeline phases, kernel-path events,
/// and a labeled `shard.call` child per shard — and the answer is still
/// bit-identical to the in-process engine.
#[test]
fn distributed_explore_reassembles_one_trace_tree() {
    let _gate = gate();
    let rig = rig();
    let query = ConjunctiveQuery::all("census");
    let expected = rig.reference.explore(&query).unwrap();

    let _traced = Traced::begin();
    let coordinator = rig.coordinator(calm_options());
    // Drop the handshake's request spans; only the explore matters.
    obs::tracer().clear();
    let root = obs::span_root("test.explore");
    let trace_id = root.context().expect("tracing is enabled").trace_id;
    let result = coordinator.explore(&query).unwrap();
    drop(root);

    assert_identical(&expected, &result);
    let spans = obs::tracer().trace(trace_id);
    names_present(
        &spans,
        &[
            "explore",
            "phase.query",
            "phase.candidates",
            "phase.clustering",
            "phase.merge",
            "phase.rank",
            "shard.request",
        ],
    );
    assert!(
        spans.iter().any(|s| s.name == "kernel.dispatch"),
        "no kernel-path event crossed the wire"
    );
    for shard in ["0", "1"] {
        assert!(
            spans
                .iter()
                .any(|s| s.name == "shard.call" && s.attr("shard") == Some(shard)),
            "no shard.call span for shard {shard}"
        );
    }
    assert_single_tree(&spans);
    rig.shutdown();
}

/// Seeded faults on both shards — one transient 500 (retried), one
/// straggler (hedged) — still reassemble into a single tree whose extra
/// children are labeled `mode=retry` / `mode=hedge`, with the answer
/// bit-identical.
#[test]
fn retried_and_hedged_calls_stay_one_labeled_tree() {
    let _gate = gate();
    let rig = rig();
    let query = ConjunctiveQuery::all("census");
    let expected = rig.reference.explore(&query).unwrap();

    let _traced = Traced::begin();
    let mut options = calm_options();
    options.hedge = HedgePolicy::After(Duration::from_millis(100));
    let coordinator = rig.coordinator(options);
    // Shard 0 answers 500 once (consumed by the first attempt); shard 1
    // stalls its first answer long enough for the hedge to win.
    rig.arm(0, vec![error_fault(500)]);
    rig.arm(1, vec![delay_fault(1_500)]);

    obs::tracer().clear();
    let root = obs::span_root("test.faulted");
    let trace_id = root.context().expect("tracing is enabled").trace_id;
    let result = coordinator.explore(&query).unwrap();
    drop(root);

    assert_identical(&expected, &result);
    assert_eq!(coordinator.metrics().retries(), 1);
    assert_eq!(coordinator.metrics().hedges_launched(), 1);

    let spans = obs::tracer().trace(trace_id);
    let retry = spans
        .iter()
        .find(|s| s.name == "shard.call" && s.attr("mode") == Some("retry"))
        .expect("the second attempt is labeled mode=retry");
    assert_eq!(retry.attr("shard"), Some("0"));
    assert_eq!(retry.attr("attempt"), Some("2"));
    assert!(
        spans
            .iter()
            .any(|s| s.name == "shard.call" && s.attr("mode") == Some("hedge")),
        "the hedge launch is labeled mode=hedge"
    );
    // The faulted attempts are still part of the one tree.
    assert_single_tree(&spans);
    rig.shutdown();
}

/// A shard skipped by an open circuit leaves a `shard.skip` event (with the
/// reason) in the trace instead of a `shard.call` span.
#[test]
fn an_open_circuit_leaves_a_skip_event_in_the_trace() {
    let _gate = gate();
    let rig = rig();
    let query = ConjunctiveQuery::all("census");

    let _traced = Traced::begin();
    let mut options = calm_options();
    options.shard_timeout = Duration::from_millis(250);
    options.retry = options.retry.with_max_attempts(1);
    options.circuit = CircuitConfig {
        failure_threshold: 1,
        cool_down: Duration::from_secs(60),
    };
    let coordinator = rig.coordinator(options);
    rig.arm(0, vec![kill_fault()]);

    // First explore: the killed shard fails and opens its circuit.
    coordinator.explore(&query).unwrap_err();
    assert_eq!(coordinator.circuit_states()[0].1, CircuitState::Open);

    // Second explore: the shard is refused up front, and the refusal is in
    // the trace.
    obs::tracer().clear();
    let root = obs::span_root("test.circuit");
    let trace_id = root.context().expect("tracing is enabled").trace_id;
    coordinator.explore(&query).unwrap_err();
    drop(root);

    let spans = obs::tracer().trace(trace_id);
    let skip = spans
        .iter()
        .find(|s| s.name == "shard.skip")
        .expect("the refused shard leaves a shard.skip event");
    assert_eq!(skip.attr("shard"), Some("0"));
    assert_eq!(skip.attr("reason"), Some("circuit-open"));
    assert_eq!(skip.duration_us, 0, "events are zero-duration");
    rig.shutdown();
}

fn boot_server() -> (ServerHandle, Client) {
    let mut registry = Registry::new();
    registry
        .add_table(
            "census",
            census_table(2_000, 500),
            DatasetOptions {
                config: AtlasConfig::default().with_parallelism(2),
                cache_capacity: 0,
            },
        )
        .unwrap();
    let handle = Server::start(registry, ServeConfig::default().with_threads(2)).unwrap();
    let client = Client::new(handle.addr());
    (handle, client)
}

/// `?trace=1` only *adds* members: the `maps` member is byte-identical with
/// and without it (the bit-identity surface), and the flagged reply carries
/// the inline tree plus the id for `GET /debug/traces/:id`.
#[test]
fn the_trace_flag_is_purely_additive_on_the_wire() {
    let _gate = gate();
    let _traced = Traced::begin();
    let (handle, client) = boot_server();
    let token = client.create_session("census").unwrap();
    let sql = "SELECT * FROM census WHERE age BETWEEN 17 AND 60";

    let plain = client
        .post_text(&format!("/sessions/{token}/explore"), sql)
        .unwrap();
    assert_eq!(plain.status, 200, "{:?}", plain.body_text());
    let plain = plain.json().unwrap();
    let traced = client
        .post_text(&format!("/sessions/{token}/explore?trace=1"), sql)
        .unwrap();
    assert_eq!(traced.status, 200, "{:?}", traced.body_text());
    let traced = traced.json().unwrap();

    assert_eq!(
        plain.get("maps").unwrap().encode(),
        traced.get("maps").unwrap().encode(),
        "?trace=1 must not perturb the answer"
    );
    assert!(plain.get("trace").is_none());
    let trace_id = traced.get("trace_id").unwrap().num().unwrap() as u64;
    let tree = traced.get("trace").unwrap().items().unwrap();
    assert!(!tree.is_empty(), "the inline tree holds the engine's spans");
    // The inline id keys the same trace on the debug endpoint.
    let debug = client.get(&format!("/debug/traces/{trace_id}")).unwrap();
    assert_eq!(debug.status, 200, "{:?}", debug.body_text());
    handle.shutdown();
}

/// `GET /debug/traces` lists the ring's roots newest-first and
/// `GET /debug/traces/:id` serves one assembled tree; bad ids answer 400,
/// unknown ids 404.
#[test]
fn debug_trace_endpoints_serve_the_ring() {
    let _gate = gate();
    let _traced = Traced::begin();
    let (handle, client) = boot_server();
    let token = client.create_session("census").unwrap();
    let reply = client
        .post_text(
            &format!("/sessions/{token}/explore"),
            "SELECT * FROM census",
        )
        .unwrap();
    assert_eq!(reply.status, 200);

    let listing = client.get("/debug/traces").unwrap();
    assert_eq!(listing.status, 200);
    let listing = listing.json().unwrap();
    let traces = listing.get("traces").unwrap().items().unwrap();
    assert!(!traces.is_empty(), "the explore's request root is listed");
    let newest = &traces[0];
    let trace_id = newest.get("trace_id").unwrap().num().unwrap() as u64;

    let detail = client.get(&format!("/debug/traces/{trace_id}")).unwrap();
    assert_eq!(detail.status, 200);
    let detail = detail.json().unwrap();
    assert_eq!(
        detail.get("trace_id").unwrap().num().unwrap() as u64,
        trace_id
    );
    assert!(detail.get("tree").unwrap().items().is_some());

    assert_eq!(
        client.get("/debug/traces/not-a-number").unwrap().status,
        400
    );
    let unused = obs::tracer().alloc_id();
    assert_eq!(
        client
            .get(&format!("/debug/traces/{unused}"))
            .unwrap()
            .status,
        404
    );
    handle.shutdown();
}

/// `/healthz` reports uptime, build info, and the tracer ring occupancy.
#[test]
fn healthz_reports_uptime_build_and_ring() {
    let _gate = gate();
    let (handle, client) = boot_server();
    let reply = client.get("/healthz").unwrap();
    assert_eq!(reply.status, 200);
    let body = reply.json().unwrap();
    assert_eq!(body.get("status").unwrap().str(), Some("ok"));
    assert!(body.get("uptime_seconds").unwrap().num().unwrap() >= 0.0);
    let build = body.get("build").unwrap();
    assert!(!build.get("version").unwrap().str().unwrap().is_empty());
    let profile = build.get("profile").unwrap().str().unwrap();
    assert!(profile == "debug" || profile == "release");
    let trace = body.get("trace").unwrap();
    assert_eq!(trace.get("enabled").unwrap().bool(), Some(false));
    assert!(trace.get("ring_spans").unwrap().num().is_some());
    assert!(trace.get("ring_capacity").unwrap().num().unwrap() > 0.0);
    handle.shutdown();
}

/// `/metrics` speaks Prometheus text to scrapers (`Accept: text/plain`) and
/// keeps the JSON report for everyone else.
#[test]
fn metrics_negotiates_prometheus_text() {
    let _gate = gate();
    let (handle, client) = boot_server();
    // One request so the endpoint counters are non-trivial.
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    let json = client.get("/metrics").unwrap();
    assert_eq!(json.status, 200);
    let body = json.json().expect("default /metrics is still JSON");
    assert!(body.get("trace").is_some());
    assert!(body.get("counters").is_some());
    assert!(body.get("profile_cache").is_some());

    let text = Client::new(handle.addr())
        .with_header("Accept", "text/plain")
        .get("/metrics")
        .unwrap();
    assert_eq!(text.status, 200);
    let text = text.body_text().unwrap().to_string();
    assert!(
        text.contains("# TYPE atlas_requests_total counter"),
        "{text}"
    );
    assert!(
        text.contains("atlas_requests_total{endpoint=\"healthz\"}"),
        "{text}"
    );
    assert!(text.contains("# TYPE atlas_uptime_seconds gauge"), "{text}");
    assert!(text.contains("atlas_trace_ring_capacity"), "{text}");
    handle.shutdown();
}
