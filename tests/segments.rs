//! The segmentation contract of the storage engine: the segment layout is a
//! physical detail that must never change an answer computed by an exact
//! strategy (the default pipeline end to end; the ε-approximate
//! `SketchMedian` cut is the documented exception — its per-segment sketch
//! fold stays within ε but may shift split points with the layout).
//!
//! * Random tables split at **random segment boundaries** explore bit-for-bit
//!   identically to the single-segment table, at parallelism 1 and N — the
//!   acceptance property of the segmented-storage refactor.
//! * `GkSketch::merge` folds per-chunk sketches into a summary whose rank
//!   error stays within twice the per-sketch bound.
//! * `Atlas::append` + incremental profile merge answers exactly like a
//!   from-scratch rebuild over the extended table.

use atlas::prelude::*;
use atlas::stats::GkSketch;
use proptest::prelude::*;
use std::sync::Arc;

/// Build a survey-shaped table, sealing a segment after every row index
/// listed in `seals` (plus wherever `segment_rows` forces one).
fn build_table(
    numeric: &[f64],
    categories: &[u8],
    seals: &[usize],
    segment_rows: usize,
) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("x", DataType::Float),
        Field::new("y", DataType::Float),
        Field::new("c", DataType::Str),
        Field::new("d", DataType::Str),
    ])
    .unwrap();
    let mut builder = TableBuilder::new("t", schema).with_segment_rows(segment_rows);
    for (i, &x) in numeric.iter().enumerate() {
        let c = categories[i % categories.len()] % 4;
        // y depends on c, d depends on x's sign: dependencies to discover.
        let y = f64::from(c) * 100.0 + x / 10.0;
        let d = if x >= 0.0 { "pos" } else { "neg" };
        builder
            .push_row(&[
                Value::Float(x),
                Value::Float(y),
                Value::Str(format!("cat{c}")),
                Value::Str(d.to_string()),
            ])
            .unwrap();
        if seals.contains(&i) {
            builder.seal_segment().unwrap();
        }
    }
    Arc::new(builder.build().unwrap())
}

/// Assert two explorations are bit-for-bit identical: same map order, same
/// attribute groups, same region queries and extents, same score bits.
fn assert_identical(a: &atlas::core::MapResult, b: &atlas::core::MapResult) {
    assert_eq!(a.num_maps(), b.num_maps());
    assert_eq!(a.working_set_size, b.working_set_size);
    assert_eq!(a.skipped_attributes, b.skipped_attributes);
    for (ra, rb) in a.maps.iter().zip(b.maps.iter()) {
        assert_eq!(ra.map.source_attributes, rb.map.source_attributes);
        assert_eq!(
            ra.score.to_bits(),
            rb.score.to_bits(),
            "scores must be bit-identical"
        );
        assert_eq!(ra.map.num_regions(), rb.map.num_regions());
        for (qa, qb) in ra.map.regions.iter().zip(rb.map.regions.iter()) {
            assert_eq!(to_sql(&qa.query), to_sql(&qb.query));
            assert_eq!(qa.selection, qb.selection);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random data, random segment boundaries, random segment sizes: explore
    /// output is identical to the single-segment table, sequentially and on
    /// a thread pool, for both merge operators — and drill-down queries (the
    /// profile-miss path, whose statistics fold across segments) agree too.
    #[test]
    fn explore_is_bit_identical_across_segment_layouts(
        numeric in proptest::collection::vec(-1000.0..1000.0f64, 16..260),
        categories in proptest::collection::vec(0u8..4, 4..32),
        seals in proptest::collection::vec(0usize..260, 0..6),
        segment_rows in 5usize..200,
        merge_idx in 0usize..2,
        threads in 2usize..5,
    ) {
        let reference = build_table(&numeric, &categories, &[], usize::MAX);
        let segmented = build_table(&numeric, &categories, &seals, segment_rows);
        prop_assert_eq!(reference.num_rows(), segmented.num_rows());

        let merge = [MergeStrategy::Product, MergeStrategy::Composition][merge_idx];
        let config = AtlasConfig { merge, ..AtlasConfig::default() };
        let query = ConjunctiveQuery::all("t");
        let single = Atlas::new(Arc::clone(&reference), config.clone().with_parallelism(1))
            .unwrap()
            .explore(&query)
            .unwrap();
        for parallelism in [1usize, threads] {
            let result = Atlas::new(
                Arc::clone(&segmented),
                config.clone().with_parallelism(parallelism),
            )
            .unwrap()
            .explore(&query)
            .unwrap();
            assert_identical(&single, &result);
        }

        // Subset working sets compute their statistics per segment and fold:
        // still identical (or they fail identically on a degenerate subset).
        let drill = ConjunctiveQuery::all("t").and(Predicate::range("x", -500.0, 500.0));
        let a = Atlas::new(Arc::clone(&reference), config.clone().with_parallelism(1))
            .unwrap()
            .explore(&drill);
        let b = Atlas::new(Arc::clone(&segmented), config.with_parallelism(threads))
            .unwrap()
            .explore(&drill);
        prop_assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(a), Ok(b)) = (a, b) {
            assert_identical(&a, &b);
        }
    }

    /// Folding per-chunk GK sketches keeps every queried quantile's rank
    /// within 2ε of exact (the merge bound for same-ε summaries).
    #[test]
    fn gk_sketch_merge_stays_within_twice_epsilon(
        values in proptest::collection::vec(-1e6..1e6f64, 64..3000),
        chunks in 2usize..6,
        eps_idx in 0usize..3,
    ) {
        let eps = [0.02, 0.05, 0.1][eps_idx];
        let chunk_len = values.len().div_ceil(chunks);
        let mut folded = GkSketch::new(eps);
        for chunk in values.chunks(chunk_len) {
            let mut part = GkSketch::new(eps);
            part.extend(chunk);
            folded.merge(&part);
        }
        prop_assert_eq!(folded.count(), values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len() as f64;
        for &p in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let approx = folded.query(p).unwrap();
            // Rank of the returned value (as an interval, to be fair to ties).
            let lo = sorted.partition_point(|&v| v < approx) as f64 / n;
            let hi = sorted.partition_point(|&v| v <= approx) as f64 / n;
            let error = if p < lo { lo - p } else if p > hi { p - hi } else { 0.0 };
            prop_assert!(
                error <= 2.0 * eps + 1.0 / n,
                "p={} error={} (eps={})", p, error, eps
            );
        }
    }
}

/// Appending segments to a prepared engine answers exactly like rebuilding
/// from scratch — at the facade level, across several successive appends.
#[test]
fn successive_appends_equal_rebuilds() {
    let full = Arc::new(
        CensusGenerator::new(atlas::datagen::CensusConfig {
            rows: 3_000,
            seed: 23,
            segment_rows: Some(700),
            ..atlas::datagen::CensusConfig::default()
        })
        .generate(),
    );
    assert_eq!(full.num_segments(), 5);
    let query = ConjunctiveQuery::all("census");

    // Start from the first two segments, append the remaining three one by one.
    let prefix = Arc::new(
        Table::from_segments(
            "census",
            full.schema().clone(),
            full.segments()[..2].to_vec(),
        )
        .unwrap(),
    );
    let mut engine = Atlas::with_defaults(prefix).unwrap();
    let mut expected_rows = 1400;
    for segment in &full.segments()[2..] {
        engine = engine.append(Arc::clone(segment)).unwrap();
        expected_rows += segment.num_rows();
        assert_eq!(engine.table().num_rows(), expected_rows);
    }
    assert_eq!(expected_rows, 3_000);
    let rebuilt = Atlas::with_defaults(Arc::clone(&full)).unwrap();

    let a = engine.explore(&query).unwrap();
    let b = rebuilt.explore(&query).unwrap();
    assert_identical(&a, &b);

    // The anytime path rides the same profile: identical too.
    let options = ExploreOptions {
        budget: None,
        initial_sample: 400,
        growth_factor: 4.0,
        seed: 3,
    };
    let ia = engine.explore_anytime(&query, options.clone()).unwrap();
    let ib = rebuilt.explore_anytime(&query, options).unwrap();
    assert_eq!(ia.iterations.len(), ib.iterations.len());
    assert_identical(&ia.best().unwrap().result, &ib.best().unwrap().result);
}

/// The CSV streaming reader produces the same table (and the same maps) as
/// parsing in one gulp, whatever the segment size.
#[test]
fn streamed_csv_explores_identically() {
    let table = Arc::new(CensusGenerator::with_rows(2_000, 77).generate());
    let mut csv = Vec::new();
    atlas::columnar::csv::write_csv(&table, &mut csv).unwrap();
    let text = String::from_utf8(csv).unwrap();

    let opts = atlas::columnar::csv::CsvOptions::default();
    let one_gulp = atlas::columnar::csv::read_csv_str("census", &text, None, &opts).unwrap();
    let streamed = atlas::columnar::csv::read_csv_str(
        "census",
        &text,
        None,
        &atlas::columnar::csv::CsvOptions {
            segment_rows: Some(301),
            ..atlas::columnar::csv::CsvOptions::default()
        },
    )
    .unwrap();
    assert!(streamed.num_segments() >= 7);

    let query = ConjunctiveQuery::all("census");
    let a = Atlas::with_defaults(Arc::new(one_gulp))
        .unwrap()
        .explore(&query)
        .unwrap();
    let b = Atlas::with_defaults(Arc::new(streamed))
        .unwrap()
        .explore(&query)
        .unwrap();
    assert_identical(&a, &b);
}
