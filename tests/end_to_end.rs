//! Cross-crate integration tests: the full pipeline from synthetic data
//! through the query language, the engine, and the explorer.

use atlas::prelude::*;
use std::sync::Arc;

#[test]
fn census_exploration_reproduces_the_figure_2_behaviour() {
    // The paper's running example: a survey with dependent attribute pairs.
    // Atlas must return several alternative maps of the same working set,
    // grouping dependent attributes together and respecting the readability
    // constraints of Section 2.
    let table = Arc::new(CensusGenerator::with_rows(8_000, 42).generate());
    let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
    let query = parse_query("SELECT * FROM census WHERE age BETWEEN 17 AND 90").unwrap();
    let result = atlas.explore(&query).unwrap();

    assert!(result.num_maps() >= 2, "several alternative maps expected");
    assert!(result.num_maps() <= 10, "less than a dozen maps");
    for ranked in &result.maps {
        assert!(ranked.map.num_regions() >= 2);
        assert!(ranked.map.num_regions() <= 8, "readability: ≤ 8 regions");
        assert!(
            ranked.map.max_predicates() <= 4,
            "user predicate + ≤ 3 new ones"
        );
        assert!(ranked.map.regions_are_disjoint());
    }

    // The planted dependency (education ↔ salary) must surface: whichever map
    // involves education also involves salary, and not the independent
    // distractor (eye colour).
    let education_map = result
        .maps
        .iter()
        .find(|m| m.map.source_attributes.iter().any(|a| a == "education"))
        .expect("a map about education");
    assert!(education_map
        .map
        .source_attributes
        .iter()
        .any(|a| a == "salary"));
    assert!(!education_map
        .map
        .source_attributes
        .iter()
        .any(|a| a == "eye_color"));
}

#[test]
fn sql_round_trip_drill_down_matches_programmatic_drill_down() {
    // Every region of a result can be rendered to SQL, parsed back, and
    // re-submitted: the re-evaluated working set matches the region extent.
    let table = Arc::new(CensusGenerator::with_rows(4_000, 11).generate());
    let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
    let result = atlas.explore(&ConjunctiveQuery::all("census")).unwrap();
    let best = result.best().unwrap();
    for region in &best.map.regions {
        let sql = to_sql(&region.query);
        let reparsed = parse_query(&sql).unwrap();
        let selection = atlas::query::evaluate(&reparsed, &table).unwrap();
        assert_eq!(
            selection.to_indices(),
            region.selection.to_indices(),
            "query {sql} does not reproduce its region"
        );
    }
}

#[test]
fn exploration_session_narrows_until_small() {
    let table = Arc::new(CensusGenerator::with_rows(20_000, 5).generate());
    let mut session = Session::with_defaults(Arc::clone(&table)).unwrap();
    session.submit(ConjunctiveQuery::all("census")).unwrap();
    let mut sizes = vec![session.current().unwrap().working_set_size()];
    // Drill down three times into the largest region of the best map.
    for _ in 0..3 {
        let (map_idx, region_idx) = {
            let step = session.current().unwrap();
            let best = 0;
            let region = step.result.maps[best]
                .map
                .regions
                .iter()
                .enumerate()
                .max_by_key(|(_, r)| r.count())
                .map(|(i, _)| i)
                .unwrap();
            (best, region)
        };
        match session.drill_down(map_idx, region_idx) {
            Ok(step) => sizes.push(step.working_set_size()),
            Err(_) => break,
        }
    }
    assert!(sizes.len() >= 3, "at least two successful drill-downs");
    for pair in sizes.windows(2) {
        assert!(
            pair[1] < pair[0],
            "drilling down must narrow the working set"
        );
        assert!(pair[1] > 0);
    }
}

#[test]
fn orders_table_identifier_columns_are_skipped() {
    let table = Arc::new(OrdersGenerator::with_rows(5_000, 3).generate());
    let atlas = Atlas::with_defaults(Arc::clone(&table)).unwrap();
    let result = atlas.explore(&ConjunctiveQuery::all("orders")).unwrap();
    assert!(result.skipped_attributes.iter().any(|a| a == "order_key"));
    assert!(result
        .skipped_attributes
        .iter()
        .any(|a| a == "comment_code"));
    for ranked in &result.maps {
        assert!(!ranked
            .map
            .source_attributes
            .iter()
            .any(|a| a == "order_key"));
        assert!(!ranked
            .map
            .source_attributes
            .iter()
            .any(|a| a == "comment_code"));
    }
}

#[test]
fn sky_survey_maps_align_with_hidden_classes() {
    let table = Arc::new(SdssGenerator::with_rows(12_000, 8).generate());
    let attributes: Vec<String> = table
        .schema()
        .names()
        .into_iter()
        .filter(|n| *n != "class" && *n != "ra" && *n != "dec")
        .map(|s| s.to_string())
        .collect();
    let config = AtlasConfig {
        attributes: Some(attributes),
        ..AtlasConfig::quality()
    };
    let atlas = Atlas::new(Arc::clone(&table), config).unwrap();
    let result = atlas.explore(&ConjunctiveQuery::all("photo_obj")).unwrap();
    let dict_codes: Vec<u32> = table.column("class").unwrap().category_codes();
    let (_, quality) = MapQuality::best_of(&result.maps, &dict_codes).unwrap();
    assert!(
        quality.nmi > 0.3,
        "photometric maps should carry class information, got {quality:?}"
    );
}

#[test]
fn csv_ingestion_feeds_the_engine() {
    // A tiny end-to-end path through the CSV reader (the route a real user
    // with a file on disk would take).
    let csv = "\
age,sex,salary\n\
25,M,low\n29,F,low\n31,F,high\n45,M,high\n52,F,high\n61,M,low\n\
23,F,low\n36,M,high\n41,F,high\n58,M,low\n33,F,high\n27,M,low\n";
    let table = atlas::columnar::csv::read_csv_str(
        "people",
        csv,
        None,
        &atlas::columnar::csv::CsvOptions::default(),
    )
    .unwrap();
    let atlas_engine = Atlas::with_defaults(Arc::new(table)).unwrap();
    let result = atlas_engine
        .explore(&ConjunctiveQuery::all("people"))
        .unwrap();
    assert!(result.num_maps() >= 1);
    assert_eq!(result.working_set_size, 12);
}

#[test]
fn anytime_engine_converges_to_the_exact_result() {
    let table = Arc::new(CensusGenerator::with_rows(30_000, 77).generate());
    let anytime = AnytimeAtlas::new(
        Arc::clone(&table),
        AnytimeConfig {
            initial_sample: 500,
            growth_factor: 8.0,
            budget: std::time::Duration::from_secs(60),
            ..AnytimeConfig::default()
        },
    )
    .unwrap();
    let outcome = anytime.run(&ConjunctiveQuery::all("census")).unwrap();
    assert!(outcome.reached_full_data);
    assert!(outcome.iterations.len() >= 2);
    // The final iteration equals what the plain engine computes.
    let exact = Atlas::with_defaults(Arc::clone(&table))
        .unwrap()
        .explore(&ConjunctiveQuery::all("census"))
        .unwrap();
    let last = &outcome.iterations.last().unwrap().result;
    assert_eq!(last.working_set_size, exact.working_set_size);
    assert_eq!(last.num_maps(), exact.num_maps());
    let exact_attrs: Vec<_> = exact
        .maps
        .iter()
        .map(|m| m.map.source_attributes.clone())
        .collect();
    let last_attrs: Vec<_> = last
        .maps
        .iter()
        .map(|m| m.map.source_attributes.clone())
        .collect();
    assert_eq!(exact_attrs, last_attrs);
}

#[test]
fn baselines_violate_constraints_that_atlas_respects() {
    use atlas::core::baselines::FullProductBaseline;
    let table = Arc::new(CensusGenerator::with_rows(6_000, 13).generate());
    let working = table.full_selection();
    let query = ConjunctiveQuery::all("census");

    let atlas_result = Atlas::with_defaults(Arc::clone(&table))
        .unwrap()
        .explore(&query)
        .unwrap();
    let atlas_maps: Vec<DataMap> = atlas_result.maps.iter().map(|m| m.map.clone()).collect();
    let atlas_report = ReadabilityReport::compute(&atlas_maps, 8, 4);
    assert!(atlas_report.within_constraints);

    let exhaustive = FullProductBaseline::default()
        .generate(&table, &working, &query)
        .unwrap();
    let exhaustive_report = ReadabilityReport::compute(std::slice::from_ref(&exhaustive), 8, 4);
    assert!(!exhaustive_report.within_constraints);
    assert!(exhaustive.num_regions() > 8);
    assert!(exhaustive.max_predicates() > 4);
}
