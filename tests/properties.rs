//! Property-based tests (proptest) on the core invariants of the system.
//!
//! Each property encodes something the paper states or the design relies on:
//!
//! * the CUT primitive always produces disjoint regions that cover every
//!   non-NULL tuple of the working set, for every strategy and split count;
//! * the Variation of Information is a metric on maps (symmetry, identity,
//!   triangle inequality);
//! * the product operator's regions are exactly the non-empty pairwise
//!   intersections, so the covered count never changes;
//! * conjunctive queries round-trip through the SQL printer and parser;
//! * bitmap algebra behaves like set algebra.

use atlas::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Build a small table from generated numeric and categorical values.
fn build_table(numeric: &[f64], categories: &[u8]) -> Table {
    let schema = Schema::new(vec![
        Field::new("x", DataType::Float),
        Field::new("c", DataType::Str),
    ])
    .unwrap();
    let mut builder = TableBuilder::new("t", schema);
    for (i, &x) in numeric.iter().enumerate() {
        let c = categories[i % categories.len()] % 4;
        builder
            .push_row(&[Value::Float(x), Value::Str(format!("cat{c}"))])
            .unwrap();
    }
    builder.build().unwrap()
}

fn numeric_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1000.0..1000.0f64, 8..200)
}

fn category_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, 4..32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cut_always_partitions_the_working_set(
        numeric in numeric_strategy(),
        categories in category_strategy(),
        splits in 2usize..5,
        strategy_idx in 0usize..4,
    ) {
        let table = build_table(&numeric, &categories);
        let working = table.full_selection();
        let strategy = [
            NumericCutStrategy::EquiWidth,
            NumericCutStrategy::Median,
            NumericCutStrategy::KMeans { max_iterations: 20 },
            NumericCutStrategy::SketchMedian { epsilon: 0.05 },
        ][strategy_idx];
        let config = CutConfig {
            num_splits: splits,
            numeric: strategy,
            skip_identifiers: false,
            ..CutConfig::default()
        };
        for attribute in ["x", "c"] {
            let map = atlas::core::cut::cut_attribute(
                &table,
                &working,
                &ConjunctiveQuery::all("t"),
                attribute,
                &config,
            )
            .unwrap();
            if let Some(map) = map {
                prop_assert!(map.regions_are_disjoint());
                prop_assert!(map.num_regions() >= 2);
                prop_assert!(map.num_regions() <= splits);
                // Every row is covered (no NULLs in this table).
                prop_assert_eq!(map.covered_count(), table.num_rows());
                // Region queries and extents agree.
                for region in &map.regions {
                    let evaluated = atlas::query::evaluate(&region.query, &table).unwrap();
                    prop_assert_eq!(evaluated.to_indices(), region.selection.to_indices());
                }
            }
        }
    }

    #[test]
    fn product_preserves_coverage_and_disjointness(
        numeric in numeric_strategy(),
        categories in category_strategy(),
    ) {
        let table = build_table(&numeric, &categories);
        let working = table.full_selection();
        let config = CutConfig { skip_identifiers: false, ..CutConfig::default() };
        let q = ConjunctiveQuery::all("t");
        let mx = atlas::core::cut::cut_attribute(&table, &working, &q, "x", &config).unwrap();
        let mc = atlas::core::cut::cut_attribute(&table, &working, &q, "c", &config).unwrap();
        if let (Some(mx), Some(mc)) = (mx, mc) {
            let covered_before = table.num_rows();
            let product = atlas::core::product_maps(&[mx, mc], true).unwrap();
            prop_assert!(product.regions_are_disjoint());
            prop_assert_eq!(product.covered_count(), covered_before);
            prop_assert!(product.num_regions() <= 4);
            for region in &product.regions {
                prop_assert!(!region.is_empty());
            }
        }
    }

    #[test]
    fn composition_preserves_coverage(
        numeric in numeric_strategy(),
        categories in category_strategy(),
    ) {
        let table = build_table(&numeric, &categories);
        let working = table.full_selection();
        let config = CutConfig { skip_identifiers: false, ..CutConfig::default() };
        let q = ConjunctiveQuery::all("t");
        let mx = atlas::core::cut::cut_attribute(&table, &working, &q, "x", &config).unwrap();
        let mc = atlas::core::cut::cut_attribute(&table, &working, &q, "c", &config).unwrap();
        if let (Some(mx), Some(mc)) = (mx, mc) {
            let composed = atlas::core::compose_maps(&[mx, mc], &table, &config, true)
                .unwrap()
                .unwrap();
            prop_assert!(composed.regions_are_disjoint());
            prop_assert_eq!(composed.covered_count(), table.num_rows());
        }
    }

    #[test]
    fn map_distance_is_a_metric(
        labels_a in proptest::collection::vec(0u32..4, 60),
        labels_b in proptest::collection::vec(0u32..4, 60),
        labels_c in proptest::collection::vec(0u32..4, 60),
    ) {
        use atlas::core::distance::distance_from_labels;
        let metric = MapDistanceMetric::VariationOfInformation;
        let d = |a: &[u32], b: &[u32]| distance_from_labels(a, b, 4, 4, metric);
        let d_ab = d(&labels_a, &labels_b);
        let d_ba = d(&labels_b, &labels_a);
        let d_ac = d(&labels_a, &labels_c);
        let d_bc = d(&labels_b, &labels_c);
        // Symmetry, non-negativity, identity, triangle inequality.
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!(d_ab >= 0.0);
        prop_assert!(d(&labels_a, &labels_a) < 1e-9);
        prop_assert!(d_ac <= d_ab + d_bc + 1e-9);
    }

    #[test]
    fn queries_round_trip_through_sql(
        lo in -100i64..100,
        width in 1i64..100,
        values in proptest::collection::btree_set("[a-z]{1,6}", 1..4),
    ) {
        let query = ConjunctiveQuery::all("t")
            .and(Predicate::range("x", lo as f64, (lo + width) as f64))
            .and(Predicate::values("c", values.iter().cloned()));
        let sql = to_sql(&query);
        let reparsed = parse_query(&sql).unwrap();
        prop_assert_eq!(reparsed, query);
    }

    #[test]
    fn bitmap_algebra_matches_set_algebra(
        a in proptest::collection::btree_set(0usize..300, 0..100),
        b in proptest::collection::btree_set(0usize..300, 0..100),
    ) {
        let bm_a = Bitmap::from_indices(300, a.iter().copied());
        let bm_b = Bitmap::from_indices(300, b.iter().copied());
        let expected_and: Vec<usize> = a.intersection(&b).copied().collect();
        let expected_or: Vec<usize> = a.union(&b).copied().collect();
        let expected_diff: Vec<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(bm_a.and(&bm_b).to_indices(), expected_and);
        prop_assert_eq!(bm_a.or(&bm_b).to_indices(), expected_or);
        prop_assert_eq!(bm_a.and_not(&bm_b).to_indices(), expected_diff);
        prop_assert_eq!(bm_a.intersection_count(&bm_b), a.intersection(&b).count());
        prop_assert_eq!(bm_a.not().count(), 300 - a.len());
    }

    #[test]
    fn entropy_ranking_is_invariant_to_input_order(
        counts in proptest::collection::vec(1u64..500, 2..8),
    ) {
        // Entropy of a count vector does not depend on the order of counts,
        // and is maximised by the balanced distribution of the same size.
        let entropy = atlas::stats::entropy_of_counts(&counts);
        let mut reversed = counts.clone();
        reversed.reverse();
        prop_assert!((entropy - atlas::stats::entropy_of_counts(&reversed)).abs() < 1e-9);
        let balanced = vec![counts.iter().sum::<u64>() / counts.len() as u64 + 1; counts.len()];
        prop_assert!(entropy <= atlas::stats::entropy_of_counts(&balanced) + 1e-9);
    }

    #[test]
    fn gk_sketch_median_stays_within_rank_error(
        mut values in proptest::collection::vec(-1e6..1e6f64, 50..2000),
    ) {
        let mut sketch = atlas::stats::GkSketch::new(0.02);
        sketch.extend(&values);
        let approx = sketch.median().unwrap();
        values.sort_by(|a, b| a.total_cmp(b));
        let rank = values.partition_point(|&v| v <= approx) as f64 / values.len() as f64;
        // Allow a generous multiple of epsilon to absorb interpolation at the
        // ends of runs of duplicates.
        prop_assert!((rank - 0.5).abs() <= 0.1, "median rank was {rank}");
    }
}

/// Non-proptest invariant: the engine end-to-end never returns overlapping
/// regions or empty maps, across a sweep of configurations.
#[test]
fn engine_invariants_across_configurations() {
    let table = Arc::new(CensusGenerator::with_rows(3_000, 1).generate());
    for merge in [MergeStrategy::Product, MergeStrategy::Composition] {
        for numeric in [
            NumericCutStrategy::EquiWidth,
            NumericCutStrategy::Median,
            NumericCutStrategy::KMeans { max_iterations: 25 },
        ] {
            for linkage in [
                atlas::core::Linkage::Single,
                atlas::core::Linkage::Complete,
                atlas::core::Linkage::Average,
            ] {
                let config = AtlasConfig {
                    merge,
                    cut: CutConfig {
                        numeric,
                        ..CutConfig::default()
                    },
                    clustering: atlas::core::ClusteringConfig {
                        linkage,
                        ..atlas::core::ClusteringConfig::default()
                    },
                    ..AtlasConfig::default()
                };
                let atlas_engine = Atlas::new(Arc::clone(&table), config).unwrap();
                let result = atlas_engine
                    .explore(&ConjunctiveQuery::all("census"))
                    .unwrap();
                assert!(result.num_maps() >= 1);
                for ranked in &result.maps {
                    assert!(ranked.map.num_regions() >= 2);
                    assert!(ranked.map.num_regions() <= 8);
                    assert!(ranked.map.regions_are_disjoint());
                    assert!(ranked.score.is_finite());
                }
            }
        }
    }
}
