//! The wire-protocol acceptance test: a real server on an ephemeral port,
//! N ≥ 8 concurrent client threads exploring the same dataset over real
//! sockets, every reply compared **bit-for-bit** against in-process
//! `Atlas::explore` on the same table — scores included (the JSON layer uses
//! shortest-round-trip `f64` formatting), before *and after* a mid-test
//! `POST /datasets/:name/rows` append.

use atlas::prelude::*;
use atlas::serve::wire::Json;
use atlas::serve::{Client, DatasetOptions, Registry, ServeConfig, Server};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

const CLIENT_THREADS: usize = 8;

/// The deterministic signature of one ranked map list: per map the score
/// *bits*, the source attributes, and per region the printed SQL and the
/// tuple count. Two explorations with equal signatures returned the same
/// ranked maps, region extents included (the SQL pins the predicate, the
/// count pins the selection).
type Signature = Vec<(u64, Vec<String>, Vec<(String, u64)>)>;

fn signature_of_result(result: &MapResult) -> Signature {
    result
        .maps
        .iter()
        .map(|ranked| {
            (
                ranked.score.to_bits(),
                ranked.map.source_attributes.clone(),
                ranked
                    .map
                    .regions
                    .iter()
                    .map(|r| (to_sql(&r.query), r.count() as u64))
                    .collect(),
            )
        })
        .collect()
}

fn signature_of_wire(reply: &Json) -> Signature {
    reply
        .get("maps")
        .expect("reply carries maps")
        .items()
        .expect("maps is an array")
        .iter()
        .map(|map| {
            let score = map.get("score").unwrap().num().expect("score is a number");
            let attrs = map
                .get("source_attributes")
                .unwrap()
                .items()
                .unwrap()
                .iter()
                .map(|a| a.str().unwrap().to_string())
                .collect();
            let regions = map
                .get("regions")
                .unwrap()
                .items()
                .unwrap()
                .iter()
                .map(|r| {
                    (
                        r.get("sql").unwrap().str().unwrap().to_string(),
                        r.get("count").unwrap().num().unwrap() as u64,
                    )
                })
                .collect();
            (score.to_bits(), attrs, regions)
        })
        .collect()
}

/// The query mix every client thread works through (all with explicit table
/// names so the wire and in-process sides parse identical queries).
fn query_mix() -> Vec<&'static str> {
    vec![
        "SELECT * FROM census",
        "SELECT * FROM census WHERE age BETWEEN 17 AND 40",
        "SELECT * FROM census WHERE sex IN ('Male')",
        "SELECT * FROM census WHERE age BETWEEN 30 AND 70 AND sex IN ('Female')",
        "SELECT * FROM census WHERE height_cm >= 160",
    ]
}

fn expected_signatures(engine: &Atlas) -> BTreeMap<String, Signature> {
    query_mix()
        .into_iter()
        .map(|sql| {
            let query = parse_query(sql).unwrap();
            let result = engine.explore(&query).unwrap();
            (sql.to_string(), signature_of_result(&result))
        })
        .collect()
}

/// Run one round: every client thread opens its own session and works
/// through the query mix (each thread in a different rotation), asserting
/// every wire reply matches the in-process signature.
fn concurrent_round(
    addr: std::net::SocketAddr,
    expected: &BTreeMap<String, Signature>,
    expected_rows: usize,
) {
    let queries = query_mix();
    thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                let client = Client::new(addr);
                let token = client.create_session("census").unwrap();
                for i in 0..queries.len() {
                    let sql = queries[(i + t) % queries.len()];
                    let reply = client
                        .post_text(&format!("/sessions/{token}/explore"), sql)
                        .unwrap();
                    assert_eq!(reply.status, 200, "thread {t}: {:?}", reply.body_text());
                    let reply = reply.json().unwrap();
                    assert!(
                        reply.get("working_set_size").unwrap().num().unwrap() as usize
                            <= expected_rows
                    );
                    assert_eq!(
                        &signature_of_wire(&reply),
                        expected.get(sql).unwrap(),
                        "thread {t} disagrees with in-process explore on {sql}"
                    );
                }
                // The session really recorded the steps (multi-tenant state).
                let history = client
                    .get(&format!("/sessions/{token}/history"))
                    .unwrap()
                    .json()
                    .unwrap();
                assert_eq!(
                    history.get("depth").unwrap().num().unwrap() as usize,
                    queries.len()
                );
            });
        }
    });
}

#[test]
fn concurrent_wire_explorations_are_bit_identical_to_in_process_results() {
    let table = Arc::new(CensusGenerator::with_rows(4_000, 42).generate());
    let config = AtlasConfig::default();

    // The in-process reference engine and the served engine are prepared
    // from the same shared table with the same configuration.
    let reference = Atlas::new(Arc::clone(&table), config.clone()).unwrap();
    let mut registry = Registry::new();
    registry
        .add_table(
            "census",
            Arc::clone(&table),
            DatasetOptions {
                config: config.clone(),
                cache_capacity: 16,
            },
        )
        .unwrap();
    let handle = Server::start(
        registry,
        ServeConfig::default().with_threads(CLIENT_THREADS),
    )
    .unwrap();
    let addr = handle.addr();

    // Round 1: eight threads, five queries each, every reply bit-identical.
    let expected = expected_signatures(&reference);
    concurrent_round(addr, &expected, 4_000);

    // Mid-test append: POST a fresh batch as header-less CSV …
    let batch = CensusGenerator::with_rows(900, 1234).generate();
    let mut csv = Vec::new();
    atlas::columnar::csv::write_csv(&batch, &mut csv).unwrap();
    let text = String::from_utf8(csv).unwrap();
    let body = text.split_once('\n').unwrap().1.to_string();
    let client = Client::new(addr);
    let reply = client
        .request(
            "POST",
            "/datasets/census/rows",
            Some(("text/csv", body.as_bytes())),
        )
        .unwrap();
    assert_eq!(reply.status, 200, "{:?}", reply.body_text());
    assert_eq!(
        reply.json().unwrap().get("total_rows").unwrap().num(),
        Some(4_900.0)
    );

    // … mirror it in-process through the same CSV path (identical segment
    // boundaries), re-preparing incrementally with `Atlas::append` …
    let opts = atlas::columnar::csv::CsvOptions {
        has_header: false,
        ..atlas::columnar::csv::CsvOptions::default()
    };
    let parsed = atlas::columnar::csv::read_csv(
        "census",
        body.as_bytes(),
        Some(table.schema().clone()),
        &opts,
    )
    .unwrap();
    let mut appended = reference;
    for segment in parsed.segments() {
        appended = appended.append(Arc::clone(segment)).unwrap();
    }
    assert_eq!(appended.table().num_rows(), 4_900);

    // … and round 2: the same eight-thread mix must now match the appended
    // in-process engine, bit for bit.
    let expected = expected_signatures(&appended);
    concurrent_round(addr, &expected, 4_900);

    // The server stayed healthy throughout.
    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let responses = metrics.get("responses").unwrap();
    assert_eq!(responses.get("server_error_5xx").unwrap().num(), Some(0.0));
    assert!(
        metrics.get("requests_total").unwrap().num().unwrap()
            >= (2 * CLIENT_THREADS * (query_mix().len() + 2)) as f64
    );
    handle.shutdown();
}

#[test]
fn a_session_surviving_an_append_refreshes_its_current_step() {
    // One session explores, rows arrive over the wire, and the session's
    // next request sees the refreshed state (Session::append_segment runs
    // server-side on catch-up).
    let table = Arc::new(CensusGenerator::with_rows(1_000, 7).generate());
    let mut registry = Registry::new();
    registry
        .add_table(
            "census",
            Arc::clone(&table),
            DatasetOptions {
                config: AtlasConfig::fast(),
                cache_capacity: 8,
            },
        )
        .unwrap();
    let handle = Server::start(registry, ServeConfig::default().with_threads(2)).unwrap();
    let client = Client::new(handle.addr());
    let token = client.create_session("census").unwrap();
    client
        .post_text(
            &format!("/sessions/{token}/explore"),
            "SELECT * FROM census",
        )
        .unwrap();

    let batch = CensusGenerator::with_rows(250, 8).generate();
    let mut csv = Vec::new();
    atlas::columnar::csv::write_csv(&batch, &mut csv).unwrap();
    let text = String::from_utf8(csv).unwrap();
    let body = text.split_once('\n').unwrap().1;
    let reply = client
        .request(
            "POST",
            "/datasets/census/rows",
            Some(("text/csv", body.as_bytes())),
        )
        .unwrap();
    assert_eq!(reply.status, 200);

    // The history endpoint triggers catch-up; the recorded step now reflects
    // the extended table (refresh replaces, never stacks).
    let history = client
        .get(&format!("/sessions/{token}/history"))
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(history.get("depth").unwrap().num(), Some(1.0));
    let step = &history.get("steps").unwrap().items().unwrap()[0];
    assert_eq!(step.get("working_set_size").unwrap().num(), Some(1_250.0));
    handle.shutdown();
}
