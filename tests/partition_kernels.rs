//! Bit-identity of the word-parallel partition kernels against the scalar
//! reference (`ATLAS_FORCE_SCALAR` / [`with_kernel_path`]).
//!
//! The word-parallel kernels of `atlas-columnar` (64 rows per step, validity
//! driven from null-mask words, lane-wise classification) must produce
//! **bit-identical** selections to the one-row-at-a-time reference on every
//! input. The property tests here generate adversarial cases on random
//! tables:
//!
//! * selections with word-boundary edges, trailing partial words, all-ones
//!   and near-empty patterns;
//! * NaN values, NaN bounds, inverted bounds, `±∞` bounds, and integer
//!   magnitudes beyond 2⁵³ (where `i64 → f64` rounds and naive bound
//!   conversion breaks);
//! * all-null columns and high null fractions;
//! * every segment layout (single-segment, tiny unaligned segments, and the
//!   64-row-aligned case) — the full suite also runs under
//!   `ATLAS_SEGMENT_ROWS=1024` and `ATLAS_FORCE_SCALAR=1` in CI.

use atlas::columnar::{
    with_kernel_path, Bitmap, DataType, Field, KernelPath, Schema, Table, TableBuilder, Value,
};
use proptest::prelude::*;

type Row = (Option<i64>, Option<f64>, Option<u8>, Option<bool>);

/// One generated row: an integer (small or huge), a float (possibly NaN or
/// signed zero), a category code, and a boolean — each independently NULL.
fn row_strategy() -> impl Strategy<Value = Row> {
    (
        proptest::option::weighted(0.85, prop_oneof![3 => -100i64..100, 1 => any::<i64>()]),
        proptest::option::weighted(
            0.85,
            prop_oneof![
                6 => -120.0..120.0f64,
                1 => Just(f64::NAN),
                1 => Just(0.0f64),
                1 => Just(-0.0f64),
            ],
        ),
        proptest::option::weighted(0.85, 0u8..6),
        proptest::option::weighted(0.85, any::<bool>()),
    )
}

/// A range bound: near the data, a huge integer-valued float, NaN, or ±∞.
fn bound_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => -130.0..130.0f64,
        1 => any::<i64>().prop_map(|x| x as f64),
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
    ]
}

fn build_table(rows: &[Row], all_null_col: Option<usize>, segment_rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("i", DataType::Int),
        Field::new("f", DataType::Float),
        Field::new("c", DataType::Str),
        Field::new("b", DataType::Bool),
    ])
    .unwrap();
    let mut builder = TableBuilder::new("t", schema).with_segment_rows(segment_rows);
    for &(i, f, c, b) in rows {
        let null = |col: usize| all_null_col == Some(col);
        builder
            .push_row(&[
                if null(0) {
                    Value::Null
                } else {
                    i.map(Value::Int).unwrap_or(Value::Null)
                },
                if null(1) {
                    Value::Null
                } else {
                    f.map(Value::Float).unwrap_or(Value::Null)
                },
                if null(2) {
                    Value::Null
                } else {
                    c.map(|c| Value::Str(format!("cat{c}")))
                        .unwrap_or(Value::Null)
                },
                if null(3) {
                    Value::Null
                } else {
                    b.map(Value::Bool).unwrap_or(Value::Null)
                },
            ])
            .unwrap();
    }
    builder.build().unwrap()
}

/// Build the selection under test: random bits, all-ones, a word-aligned
/// block, or a block with unaligned edges that straddles word boundaries.
fn build_selection(kind: usize, bits: &[bool], rows: usize) -> Bitmap {
    match kind {
        0 => Bitmap::from_fn(rows, |i| bits[i % bits.len()]),
        1 => Bitmap::new_full(rows),
        2 => Bitmap::from_fn(rows, |i| (64..128).contains(&i)),
        _ => Bitmap::from_fn(rows, |i| {
            let lo = 3.min(rows.saturating_sub(1));
            let hi = rows.saturating_sub(2);
            (lo..=hi).contains(&i) && i % 5 != 0
        }),
    }
}

/// All partition-kernel results for one table and selection, computed on the
/// current thread's kernel path. Bitmap equality is word-for-word, so
/// comparing two of these is a bit-identity check.
#[allow(clippy::type_complexity)]
fn run_kernels(
    table: &Table,
    sel: &Bitmap,
    bounds: &[(f64, f64)],
    groups: &[Vec<String>],
) -> (
    Vec<Vec<Bitmap>>,
    Vec<Bitmap>,
    Vec<Vec<Bitmap>>,
    Vec<Vec<f64>>,
) {
    let mut ranges = Vec::new();
    let mut singles = Vec::new();
    let mut grouped = Vec::new();
    let mut gathered = Vec::new();
    for name in ["i", "f", "c", "b"] {
        let col = table.column(name).unwrap();
        ranges.push(col.select_ranges(sel, bounds));
        if let Some(&(lo, hi)) = bounds.first() {
            singles.push(col.select_range(sel, lo, hi));
        }
        grouped.push(col.select_in_groups(sel, groups));
        gathered.push(col.numeric_values_where(sel));
    }
    (ranges, singles, grouped, gathered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn word_parallel_kernels_are_bit_identical_to_the_scalar_reference(
        rows in proptest::collection::vec(row_strategy(), 1..300),
        sel_bits in proptest::collection::vec(any::<bool>(), 1..300),
        sel_kind in 0usize..4,
        bounds in proptest::collection::vec((bound_strategy(), bound_strategy()), 1..4),
        group_of_cat in proptest::collection::vec(0u8..5, 6),
        group_of_int in proptest::collection::vec(0u8..5, 7),
        all_null_col in proptest::option::weighted(0.15, 0usize..4),
        segment_rows in prop_oneof![Just(usize::MAX), Just(7usize), Just(64usize), Just(100usize)],
    ) {
        let table = build_table(&rows, all_null_col, segment_rows);
        let sel = build_selection(sel_kind, &sel_bits, rows.len());

        // Four disjoint groups (slot 4 = ungrouped), mixing category names,
        // booleans, and integer renderings — plus one value ("007") that the
        // round-trip parse must keep from ever matching the integer 7.
        let mut groups: Vec<Vec<String>> = vec![Vec::new(); 4];
        for (c, &g) in group_of_cat.iter().enumerate() {
            if let Some(group) = groups.get_mut(g as usize) {
                group.push(format!("cat{c}"));
            }
        }
        for (k, &g) in group_of_int.iter().enumerate() {
            if let Some(group) = groups.get_mut(g as usize) {
                group.push((k as i64 - 3).to_string());
            }
        }
        groups[0].push("true".to_string());
        groups[1].push("false".to_string());
        groups[2].push("007".to_string());

        let word = with_kernel_path(KernelPath::WordParallel, || {
            run_kernels(&table, &sel, &bounds, &groups)
        });
        let scalar = with_kernel_path(KernelPath::Scalar, || {
            run_kernels(&table, &sel, &bounds, &groups)
        });
        prop_assert_eq!(&word.0, &scalar.0, "select_ranges");
        prop_assert_eq!(&word.1, &scalar.1, "select_range");
        prop_assert_eq!(&word.2, &scalar.2, "select_in_groups");
        // Gather order is increasing row order on both paths; f64 bit
        // patterns (NaN, -0.0) must survive untouched.
        let to_bits = |vs: &Vec<Vec<f64>>| -> Vec<Vec<u64>> {
            vs.iter().map(|v| v.iter().map(|x| x.to_bits()).collect()).collect()
        };
        prop_assert_eq!(to_bits(&word.3), to_bits(&scalar.3), "numeric_values_where");

        // The word path is also layout-transparent: a different segment
        // geometry over the same rows yields the same words.
        let relaid = build_table(&rows, all_null_col, 13);
        let other = with_kernel_path(KernelPath::WordParallel, || {
            run_kernels(&relaid, &sel, &bounds, &groups)
        });
        prop_assert_eq!(&word.0, &other.0, "layout transparency (ranges)");
        prop_assert_eq!(&word.2, &other.2, "layout transparency (groups)");
    }

    #[test]
    fn contingency_word_fold_matches_the_scalar_reference(
        rows in proptest::collection::vec(row_strategy(), 1..300),
        splits in 2usize..5,
    ) {
        use atlas::stats::ContingencyTable;
        let table = build_table(&rows, None, 19);
        let sel = table.full_selection();
        let ranges: Vec<(f64, f64)> = (0..splits)
            .map(|k| {
                let w = 240.0 / splits as f64;
                (-120.0 + k as f64 * w, -120.0 + (k + 1) as f64 * w)
            })
            .collect();
        let a = table.column("i").unwrap().select_ranges(&sel, &ranges);
        let b = table.column("f").unwrap().select_ranges(&sel, &ranges);
        let ra: Vec<&Bitmap> = a.iter().collect();
        let rb: Vec<&Bitmap> = b.iter().collect();
        let word = with_kernel_path(KernelPath::WordParallel, || {
            ContingencyTable::from_selections(&ra, &rb)
        });
        let scalar = with_kernel_path(KernelPath::Scalar, || {
            ContingencyTable::from_selections(&ra, &rb)
        });
        prop_assert_eq!(word, scalar);
    }
}
