//! The deterministic chaos suite: seeded fault plans injected into live
//! shard servers, replayed against the resilient coordinator.
//!
//! Every plan is generated from a seed (vendored `rand`, so a failing seed
//! replays exactly), armed through `POST /shard/inject`, and the outcome is
//! pinned to the resilience contract:
//!
//! * **Strict** mode answers bit-identically to the in-process engine or
//!   fails with a typed [`AtlasError::Distributed`] naming a shard — never a
//!   hang, never a silent partial.
//! * **Degraded** mode answers bit-identically to an in-process explore over
//!   exactly the segments its [`Coverage`] says survived, with coverage
//!   arithmetic matching the pinned segment→shard assignment.
//! * Retry, hedge, circuit-breaker, and deadline counters match the
//!   injected plan exactly in the deterministic scenarios.
//!
//! Set `ATLAS_CHAOS_SEED=n` to replay one extra seed, and
//! `ATLAS_CHAOS_PLAN_OUT=dir` to dump every seed's fault plan and verdict
//! as a JSON artifact (the CI chaos job uploads it).

use atlas::core::{AtlasError, MapResult};
use atlas::datagen::CensusConfig;
use atlas::prelude::*;
use atlas::serve::wire::Json;
use atlas::serve::{
    CircuitConfig, CircuitState, Client, Coordinator, CoordinatorOptions, Coverage, Deadline,
    ExploreMode, HedgePolicy, RetryPolicy,
};
use atlas::serve::{DatasetOptions, Registry, ServeConfig, Server, ServerHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard servers per rig.
const SHARDS: usize = 3;
/// Hard wall-clock bound on any single faulted explore: far above every
/// legitimate schedule, so tripping it means a hang.
const WALL_CLOCK_BOUND: Duration = Duration::from_secs(30);

/// One injectable fault, mirroring the `/shard/inject` plan vocabulary.
#[derive(Debug, Clone, PartialEq)]
enum Fault {
    /// Stall the next answer by this many milliseconds.
    Delay(u64),
    /// Hang up without answering.
    Refuse,
    /// Answer with this HTTP status and no useful body.
    Error(u16),
    /// Answer with only the first `keep_per_mille`/1000 of the bytes.
    Truncate(u16),
    /// Answer with bytes that are not HTTP at all.
    Garbage,
    /// Hang up now and on every later request (until re-armed).
    Kill,
}

impl Fault {
    fn to_json(&self) -> Json {
        match self {
            Fault::Delay(ms) => Json::object(vec![
                ("fault", Json::from("delay")),
                ("ms", Json::from(*ms)),
            ]),
            Fault::Refuse => Json::object(vec![("fault", Json::from("refuse"))]),
            Fault::Error(status) => Json::object(vec![
                ("fault", Json::from("error")),
                ("status", Json::from(u64::from(*status))),
            ]),
            Fault::Truncate(keep) => Json::object(vec![
                ("fault", Json::from("truncate")),
                ("keep_per_mille", Json::from(u64::from(*keep))),
            ]),
            Fault::Garbage => Json::object(vec![("fault", Json::from("garbage"))]),
            Fault::Kill => Json::object(vec![("fault", Json::from("kill"))]),
        }
    }
}

/// Draw one fault. Delays dominate (they exercise timeouts and hedges),
/// kills are rarest (they take the shard down for the rest of the seed).
fn gen_fault(rng: &mut StdRng) -> Fault {
    match (rng.gen::<f64>() * 10.0) as u32 {
        0..=2 => Fault::Delay(40 + (rng.gen::<f64>() * 360.0) as u64),
        3 => Fault::Refuse,
        4 | 5 => {
            let statuses = [500u16, 502, 503, 504];
            Fault::Error(statuses[(rng.gen::<f64>() * 4.0) as usize % 4])
        }
        6 | 7 => Fault::Truncate((rng.gen::<f64>() * 1000.0) as u16),
        8 => Fault::Garbage,
        _ => Fault::Kill,
    }
}

/// A fault plan: per shard, the faults its next requests consume in order.
/// Roughly half the shards stay healthy in any given seed.
fn gen_plan(rng: &mut StdRng) -> Vec<Vec<Fault>> {
    (0..SHARDS)
        .map(|_| {
            if rng.gen::<f64>() < 0.45 {
                return Vec::new();
            }
            let count = 1 + (rng.gen::<f64>() * 3.0) as usize;
            (0..count).map(|_| gen_fault(rng)).collect()
        })
        .collect()
}

/// A multi-segment census table with a pinned layout (10 segments).
fn census_table(rows: usize, segment_rows: usize) -> Arc<Table> {
    Arc::new(
        CensusGenerator::new(CensusConfig {
            rows,
            seed: 42,
            segment_rows: Some(segment_rows),
            ..CensusConfig::default()
        })
        .generate(),
    )
}

fn product_config() -> AtlasConfig {
    AtlasConfig {
        merge: MergeStrategy::Product,
        ..AtlasConfig::default()
    }
    .with_parallelism(2)
}

/// Aggressive-but-deterministic fault policy for the seeded sweeps: short
/// per-attempt timeouts, one retry with seeded jitter, breakers off so every
/// seed starts from the same coordinator state.
fn chaos_options() -> CoordinatorOptions {
    CoordinatorOptions {
        shard_timeout: Duration::from_millis(250),
        connect_timeout: Duration::from_millis(250),
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(5),
            multiplier: 2.0,
            jitter: 0.5,
        },
        hedge: HedgePolicy::Off,
        circuit: CircuitConfig {
            failure_threshold: 0,
            cool_down: Duration::ZERO,
        },
        ..CoordinatorOptions::default()
    }
}

/// Three live shard servers over one census table, a pinned segment
/// assignment, and the in-process reference engine.
struct Chaos {
    table: Arc<Table>,
    config: AtlasConfig,
    reference: Atlas,
    handles: Vec<ServerHandle>,
    addrs: Vec<String>,
    assignment: Vec<Vec<usize>>,
}

fn chaos_rig() -> Chaos {
    let table = census_table(3_000, 300);
    let config = product_config();
    let reference = Atlas::new(Arc::clone(&table), config.clone()).unwrap();
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..SHARDS {
        let mut registry = Registry::new();
        registry
            .add_table(
                "census",
                Arc::clone(&table),
                DatasetOptions {
                    config: config.clone(),
                    cache_capacity: 0,
                },
            )
            .unwrap();
        let handle = Server::start(registry, ServeConfig::default().with_threads(2)).unwrap();
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }
    // An uneven partition of the 10 segments, so shard loss is visible in
    // the coverage arithmetic.
    let assignment = vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
    Chaos {
        table,
        config,
        reference,
        handles,
        addrs,
        assignment,
    }
}

impl Chaos {
    fn coordinator(&self, options: CoordinatorOptions) -> Coordinator {
        Coordinator::connect_with(&self.addrs, "census", self.config.clone(), options)
            .unwrap()
            .with_assignment(self.assignment.clone())
            .unwrap()
    }

    /// Arm one fault plan across the shards (replacing whatever was left).
    fn arm(&self, plan: &[Vec<Fault>]) {
        for (shard, faults) in plan.iter().enumerate() {
            let body = Json::object(vec![(
                "plan",
                Json::array(faults.iter().map(Fault::to_json).collect()),
            )]);
            let reply = Client::new(self.handles[shard].addr())
                .post_json("/shard/inject", &body)
                .unwrap();
            assert_eq!(reply.status, 200, "{:?}", reply.json());
        }
    }

    /// Clear every injected fault and revive killed shards.
    fn disarm(&self) {
        let empty = vec![Vec::new(); SHARDS];
        self.arm(&empty);
    }

    /// The degraded contract: the answer is bit-identical to an in-process
    /// explore over exactly the segments `coverage` says survived, and the
    /// coverage arithmetic is consistent with the pinned assignment.
    fn assert_covers(&self, result: &MapResult, coverage: &Coverage) {
        let mut expected_missing: Vec<usize> = coverage
            .failed_shards
            .iter()
            .map(|addr| {
                self.addrs
                    .iter()
                    .position(|a| a == addr)
                    .expect("failed shard address is one of the rig's")
            })
            .flat_map(|shard| self.assignment[shard].iter().copied())
            .collect();
        expected_missing.sort_unstable();
        assert_eq!(
            coverage.missing_segments, expected_missing,
            "missing segments must be exactly the failed shards' segments"
        );
        assert_eq!(coverage.segments_total, self.table.num_segments());
        assert_eq!(
            coverage.segments_answered,
            coverage.segments_total - coverage.missing_segments.len()
        );
        let missing_rows: usize = coverage
            .missing_segments
            .iter()
            .map(|&s| self.table.segments()[s].num_rows())
            .sum();
        assert_eq!(coverage.rows_total, self.table.num_rows());
        assert_eq!(coverage.rows_answered, self.table.num_rows() - missing_rows);
        assert_eq!(coverage.columns.len(), self.table.num_columns());
        for (name, rows) in &coverage.columns {
            assert_eq!(*rows, coverage.rows_answered, "column {name}");
        }
        assert_eq!(
            coverage.complete(),
            coverage.missing_segments.is_empty(),
            "complete() must mirror the missing list"
        );

        let kept: Vec<_> = (0..self.table.num_segments())
            .filter(|s| !coverage.missing_segments.contains(s))
            .map(|s| Arc::clone(&self.table.segments()[s]))
            .collect();
        let survivors = Table::from_segments("census", self.table.schema().clone(), kept).unwrap();
        let local = Atlas::new(Arc::new(survivors), self.config.clone())
            .unwrap()
            .explore(&ConjunctiveQuery::all("census"))
            .unwrap();
        assert_identical(&local, result);
    }
}

/// Assert two explorations are bit-for-bit identical: same map order, same
/// attribute groups, same region queries and extents, same score bits.
fn assert_identical(a: &MapResult, b: &MapResult) {
    assert_eq!(a.num_maps(), b.num_maps());
    assert_eq!(a.working_set_size, b.working_set_size);
    assert_eq!(a.skipped_attributes, b.skipped_attributes);
    for (ra, rb) in a.maps.iter().zip(b.maps.iter()) {
        assert_eq!(ra.map.source_attributes, rb.map.source_attributes);
        assert_eq!(
            ra.score.to_bits(),
            rb.score.to_bits(),
            "scores must be bit-identical"
        );
        assert_eq!(ra.map.num_regions(), rb.map.num_regions());
        for (qa, qb) in ra.map.regions.iter().zip(rb.map.regions.iter()) {
            assert_eq!(to_sql(&qa.query), to_sql(&qb.query));
            assert_eq!(qa.selection, qb.selection);
        }
    }
}

fn journal_entry(seed: u64, plan: &[Vec<Fault>], verdict: Json) -> Json {
    Json::object(vec![
        ("seed", Json::from(seed)),
        (
            "plan",
            Json::array(
                plan.iter()
                    .map(|faults| Json::array(faults.iter().map(Fault::to_json).collect()))
                    .collect(),
            ),
        ),
        ("verdict", verdict),
    ])
}

/// Dump one suite's plans + verdicts when `ATLAS_CHAOS_PLAN_OUT` names a
/// directory (the CI chaos job uploads the result as an artifact).
fn write_journal(suite: &str, entries: Vec<Json>) {
    let Ok(dir) = std::env::var("ATLAS_CHAOS_PLAN_OUT") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("chaos-{suite}.json"));
    let body = Json::object(vec![("runs", Json::array(entries))]).encode();
    let _ = std::fs::create_dir_all(&dir);
    std::fs::write(&path, body).expect("writing the chaos plan artifact");
}

/// Run a range of strict-mode seeds: every one must answer bit-identically
/// or fail with a typed `Distributed` error naming a shard, inside the
/// wall-clock bound.
fn run_strict_seeds(seeds: Range<u64>, suite: &str) {
    let rig = chaos_rig();
    let query = ConjunctiveQuery::all("census");
    let expected = rig.reference.explore(&query).unwrap();
    let mut journal = Vec::new();
    for seed in seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = gen_plan(&mut rng);
        let coordinator = rig.coordinator(chaos_options());
        rig.arm(&plan);
        let started = Instant::now();
        let outcome = coordinator.explore(&query);
        let elapsed = started.elapsed();
        assert!(
            elapsed < WALL_CLOCK_BOUND,
            "seed {seed}: strict explore took {elapsed:?} under plan {plan:?}"
        );
        let verdict = match outcome {
            Ok(result) => {
                assert_identical(&expected, &result);
                Json::from("identical")
            }
            Err(AtlasError::Distributed(message)) => {
                assert!(
                    message.contains("shard"),
                    "seed {seed}: error names no shard: {message}"
                );
                Json::from("typed_error")
            }
            Err(other) => {
                panic!("seed {seed}: expected a Distributed error, got {other:?} under {plan:?}")
            }
        };
        journal.push(journal_entry(seed, &plan, verdict));
        rig.disarm();
    }
    write_journal(suite, journal);
    for handle in rig.handles {
        handle.shutdown();
    }
}

/// Run a range of degraded-mode seeds (`max_failed_shards = 2` of 3): every
/// one must either satisfy the coverage contract or fail typed.
fn run_degraded_seeds(seeds: Range<u64>, suite: &str) {
    let rig = chaos_rig();
    let query = ConjunctiveQuery::all("census");
    let mut journal = Vec::new();
    for seed in seeds {
        // A different stream than the strict sweep over the same seed.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let plan = gen_plan(&mut rng);
        let coordinator = rig.coordinator(chaos_options());
        rig.arm(&plan);
        let started = Instant::now();
        let outcome = coordinator.explore_resilient(
            &query,
            ExploreMode::Degraded {
                max_failed_shards: 2,
            },
            None,
        );
        let elapsed = started.elapsed();
        assert!(
            elapsed < WALL_CLOCK_BOUND,
            "seed {seed}: degraded explore took {elapsed:?} under plan {plan:?}"
        );
        let verdict = match outcome {
            Ok(answer) => {
                rig.assert_covers(&answer.result, &answer.coverage);
                Json::object(vec![
                    ("kind", Json::from("answered")),
                    (
                        "missing_segments",
                        Json::array(
                            answer
                                .coverage
                                .missing_segments
                                .iter()
                                .map(|&s| Json::from(s))
                                .collect(),
                        ),
                    ),
                ])
            }
            Err(AtlasError::Distributed(message)) => {
                assert!(
                    message.contains("shard"),
                    "seed {seed}: error names no shard: {message}"
                );
                Json::object(vec![("kind", Json::from("typed_error"))])
            }
            Err(other) => {
                panic!("seed {seed}: expected a Distributed error, got {other:?} under {plan:?}")
            }
        };
        journal.push(journal_entry(seed, &plan, verdict));
        rig.disarm();
    }
    write_journal(suite, journal);
    for handle in rig.handles {
        handle.shutdown();
    }
}

// The 100-seed strict sweep, split four ways so the test harness runs the
// quarters in parallel.

#[test]
fn strict_chaos_seeds_00_24() {
    run_strict_seeds(0..25, "strict-00-24");
}

#[test]
fn strict_chaos_seeds_25_49() {
    run_strict_seeds(25..50, "strict-25-49");
}

#[test]
fn strict_chaos_seeds_50_74() {
    run_strict_seeds(50..75, "strict-50-74");
}

#[test]
fn strict_chaos_seeds_75_99() {
    run_strict_seeds(75..100, "strict-75-99");
}

// The 30-seed degraded sweep, split in two.

#[test]
fn degraded_chaos_seeds_00_14() {
    run_degraded_seeds(0..15, "degraded-00-14");
}

#[test]
fn degraded_chaos_seeds_15_29() {
    run_degraded_seeds(15..30, "degraded-15-29");
}

/// One extra operator-chosen seed: `ATLAS_CHAOS_SEED=n cargo test --test
/// chaos extra_seed`. A failing seed from CI replays exactly this way.
#[test]
fn extra_seed_from_the_environment() {
    let Ok(seed) = std::env::var("ATLAS_CHAOS_SEED") else {
        return;
    };
    let seed: u64 = seed.parse().expect("ATLAS_CHAOS_SEED must be an integer");
    run_strict_seeds(seed..seed + 1, "strict-env");
    run_degraded_seeds(seed..seed + 1, "degraded-env");
}

/// Two transient `5xx` answers are retried (with seeded backoff) and the
/// retry counter records exactly two; the answer is still bit-identical.
#[test]
fn transient_errors_are_retried_and_counted_exactly() {
    let rig = chaos_rig();
    let query = ConjunctiveQuery::all("census");
    let expected = rig.reference.explore(&query).unwrap();
    let mut options = chaos_options();
    options.shard_timeout = Duration::from_secs(5);
    options.retry = options.retry.with_max_attempts(3);
    let coordinator = rig.coordinator(options);
    rig.arm(&[
        Vec::new(),
        vec![Fault::Error(500), Fault::Error(503)],
        Vec::new(),
    ]);
    let result = coordinator.explore(&query).unwrap();
    assert_identical(&expected, &result);
    assert_eq!(coordinator.metrics().retries(), 2);
    assert_eq!(coordinator.metrics().hedges_launched(), 0);
    assert_eq!(coordinator.metrics().skipped_open_circuit(), 0);
    for handle in rig.handles {
        handle.shutdown();
    }
}

/// A `501` is not retryable: the explore fails typed with zero retries.
#[test]
fn a_non_retryable_status_fails_without_retrying() {
    let rig = chaos_rig();
    let query = ConjunctiveQuery::all("census");
    let mut options = chaos_options();
    options.shard_timeout = Duration::from_secs(5);
    let coordinator = rig.coordinator(options);
    rig.arm(&[vec![Fault::Error(501)], Vec::new(), Vec::new()]);
    let error = coordinator.explore(&query).unwrap_err();
    match error {
        AtlasError::Distributed(message) => {
            assert!(message.contains("answered 501"), "{message}")
        }
        other => panic!("expected a Distributed error, got {other:?}"),
    }
    assert_eq!(coordinator.metrics().retries(), 0);
    for handle in rig.handles {
        handle.shutdown();
    }
}

/// One injected straggler, hedging after 400 ms: exactly one hedge is
/// launched, it wins, nothing is retried, and the answer arrives long
/// before the straggler would have.
#[test]
fn a_straggler_is_hedged_and_the_hedge_wins() {
    let rig = chaos_rig();
    let query = ConjunctiveQuery::all("census");
    let expected = rig.reference.explore(&query).unwrap();
    let mut options = chaos_options();
    options.shard_timeout = Duration::from_secs(10);
    options.hedge = HedgePolicy::After(Duration::from_millis(400));
    let coordinator = rig.coordinator(options);
    rig.arm(&[Vec::new(), vec![Fault::Delay(5_000)], Vec::new()]);
    let started = Instant::now();
    let result = coordinator.explore(&query).unwrap();
    let elapsed = started.elapsed();
    assert_identical(&expected, &result);
    assert!(
        elapsed < Duration::from_secs(4),
        "the hedge must beat the 5 s straggler, took {elapsed:?}"
    );
    assert_eq!(coordinator.metrics().hedges_launched(), 1);
    assert_eq!(coordinator.metrics().hedges_won(), 1);
    assert_eq!(coordinator.metrics().retries(), 0);
    for handle in rig.handles {
        handle.shutdown();
    }
}

/// The circuit-breaker lifecycle, end to end: a killed shard opens its
/// circuit on the first failure (threshold 1); while open the shard is
/// skipped without a socket touch; after the cool-down a half-open probe
/// closes it again and the explore is bit-identical.
#[test]
fn a_circuit_opens_refuses_and_recovers() {
    let rig = chaos_rig();
    let query = ConjunctiveQuery::all("census");
    let expected = rig.reference.explore(&query).unwrap();
    let mut options = chaos_options();
    options.retry = options.retry.with_max_attempts(1);
    options.circuit = CircuitConfig {
        failure_threshold: 1,
        cool_down: Duration::from_millis(700),
    };
    let coordinator = rig.coordinator(options);

    rig.arm(&[Vec::new(), Vec::new(), vec![Fault::Kill]]);
    let error = coordinator.explore(&query).unwrap_err();
    assert!(matches!(error, AtlasError::Distributed(_)), "{error}");
    let states = coordinator.circuit_states();
    assert_eq!(states[2].1, CircuitState::Open);
    assert_eq!(states[2].2, 1, "opened exactly once");

    // While the circuit is open, the shard is refused up front.
    let error = coordinator.explore(&query).unwrap_err();
    assert!(error.to_string().contains("circuit open"), "{error}");
    assert!(coordinator.metrics().skipped_open_circuit() >= 1);

    // Revive the shard; after the cool-down one probe closes the circuit.
    rig.disarm();
    std::thread::sleep(Duration::from_millis(900));
    let result = coordinator.explore(&query).unwrap();
    assert_identical(&expected, &result);
    assert_eq!(coordinator.circuit_states()[2].1, CircuitState::Closed);
    assert_eq!(coordinator.circuit_states()[2].2, 1, "no re-open");
    for handle in rig.handles {
        handle.shutdown();
    }
}

/// Degraded mode drops a shard whose circuit is already open without
/// waiting for it to fail again, and the coverage names it.
#[test]
fn degraded_mode_skips_an_open_circuit_up_front() {
    let rig = chaos_rig();
    let query = ConjunctiveQuery::all("census");
    let mut options = chaos_options();
    options.retry = options.retry.with_max_attempts(1);
    options.circuit = CircuitConfig {
        failure_threshold: 1,
        cool_down: Duration::from_secs(60),
    };
    let coordinator = rig.coordinator(options);

    rig.arm(&[vec![Fault::Kill], Vec::new(), Vec::new()]);
    let error = coordinator.explore(&query).unwrap_err();
    assert!(matches!(error, AtlasError::Distributed(_)), "{error}");
    assert_eq!(coordinator.circuit_states()[0].1, CircuitState::Open);

    let answer = coordinator
        .explore_resilient(
            &query,
            ExploreMode::Degraded {
                max_failed_shards: 2,
            },
            None,
        )
        .unwrap();
    assert_eq!(
        answer.coverage.failed_shards,
        vec![rig.addrs[0].clone()],
        "the open-circuit shard is the one dropped"
    );
    rig.assert_covers(&answer.result, &answer.coverage);
    assert_eq!(coordinator.metrics().degraded_explores(), 1);
    for handle in rig.handles {
        handle.shutdown();
    }
}

/// A deadline far below the injected stalls surfaces as a typed
/// [`AtlasError::Deadline`] — promptly, with the counter bumped, never a
/// hang waiting out the stalls.
#[test]
fn an_expired_deadline_is_a_typed_error_not_a_hang() {
    let rig = chaos_rig();
    let query = ConjunctiveQuery::all("census");
    let coordinator = rig.coordinator(chaos_options());
    let stall = vec![Fault::Delay(800); 4];
    rig.arm(&[stall.clone(), stall.clone(), stall]);
    let started = Instant::now();
    let error = coordinator
        .explore_resilient(
            &query,
            ExploreMode::Strict,
            Some(Deadline::after(Duration::from_millis(120))),
        )
        .unwrap_err();
    let elapsed = started.elapsed();
    assert!(matches!(error, AtlasError::Deadline { .. }), "{error}");
    assert!(
        elapsed < Duration::from_secs(3),
        "the deadline must cut the stalls short, took {elapsed:?}"
    );
    assert_eq!(coordinator.metrics().deadline_exceeded(), 1);
    for handle in rig.handles {
        handle.shutdown();
    }
}

/// A generous deadline changes nothing: the answer is bit-identical and no
/// deadline trip is recorded.
#[test]
fn a_generous_deadline_is_invisible_in_the_answer() {
    let rig = chaos_rig();
    let query = ConjunctiveQuery::all("census");
    let expected = rig.reference.explore(&query).unwrap();
    let coordinator = rig.coordinator(chaos_options());
    let answer = coordinator
        .explore_resilient(
            &query,
            ExploreMode::Strict,
            Some(Deadline::after(Duration::from_secs(60))),
        )
        .unwrap();
    assert_identical(&expected, &answer.result);
    assert!(answer.coverage.complete());
    assert_eq!(coordinator.metrics().deadline_exceeded(), 0);
    for handle in rig.handles {
        handle.shutdown();
    }
}
