//! E7 — the word-parallel partition kernels against the scalar reference
//! (PR 9): `select_ranges` over numeric columns, `select_in_groups` over a
//! dictionary column, and the contingency-table word fold, at 100k and 1M
//! rows. The `scalar` entries time the one-row-at-a-time reference that
//! `ATLAS_FORCE_SCALAR=1` selects, so the reported ratio is exactly the
//! speedup the kernels buy in production.

use atlas_bench::census;
use atlas_columnar::{with_kernel_path, Bitmap, ColumnView, KernelPath};
use atlas_stats::ContingencyTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const PATHS: [(&str, KernelPath); 2] = [
    ("word", KernelPath::WordParallel),
    ("scalar", KernelPath::Scalar),
];

/// Four equal-width bins over the column's observed range, widened at the top
/// so the maximum lands in the last bin (half-open range semantics).
fn equal_width_bounds(column: &ColumnView<'_>, sel: &Bitmap) -> Vec<(f64, f64)> {
    let (lo, hi) = column.numeric_min_max(sel).expect("numeric column");
    let width = (hi - lo).max(1.0) / 4.0;
    (0..4)
        .map(|k| {
            let upper = if k == 3 {
                hi + 1.0
            } else {
                lo + (k + 1) as f64 * width
            };
            (lo + k as f64 * width, upper)
        })
        .collect()
}

/// Split a dictionary column's categories into two groups by frequency rank.
fn two_groups(column: &ColumnView<'_>, sel: &Bitmap) -> Vec<Vec<String>> {
    let mut groups = vec![Vec::new(), Vec::new()];
    for (i, (name, _)) in column.categories_by_frequency(sel).into_iter().enumerate() {
        groups[i % 2].push(name);
    }
    groups
}

fn bench_partition_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_partition_kernels");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for rows in [100_000usize, 1_000_000] {
        let table = census(rows);
        let sel = table.full_selection();
        let age = table.column("age").expect("census has age");
        let height = table.column("height_cm").expect("census has height_cm");
        let education = table.column("education").expect("census has education");

        let int_bounds = equal_width_bounds(&age, &sel);
        let float_bounds = equal_width_bounds(&height, &sel);
        let groups = two_groups(&education, &sel);

        // The contingency inputs are fixed region bitmaps; only the fold
        // itself is under test.
        let age_regions = age.select_ranges(&sel, &int_bounds);
        let height_regions = height.select_ranges(&sel, &float_bounds);
        let ra: Vec<&Bitmap> = age_regions.iter().collect();
        let rb: Vec<&Bitmap> = height_regions.iter().collect();

        for (path_name, path) in PATHS {
            group.bench_with_input(
                BenchmarkId::new(format!("select_ranges_int_{path_name}"), rows),
                &rows,
                |b, _| b.iter(|| with_kernel_path(path, || age.select_ranges(&sel, &int_bounds))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("select_ranges_float_{path_name}"), rows),
                &rows,
                |b, _| {
                    b.iter(|| with_kernel_path(path, || height.select_ranges(&sel, &float_bounds)))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("select_in_groups_{path_name}"), rows),
                &rows,
                |b, _| {
                    b.iter(|| with_kernel_path(path, || education.select_in_groups(&sel, &groups)))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("contingency_{path_name}"), rows),
                &rows,
                |b, _| {
                    b.iter(|| {
                        with_kernel_path(path, || ContingencyTable::from_selections(&ra, &rb))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partition_kernels);
criterion_main!(benches);
