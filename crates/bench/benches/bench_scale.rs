//! E6 — scalability: end-to-end latency as a function of the number of rows
//! and of the number of attributes ("latency close to zero even with large
//! sets", Section 1 of the paper).

use atlas_bench::{census, wide_numeric};
use atlas_core::{Atlas, AtlasConfig};
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

fn bench_scale_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_scale_rows");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(2500));
    let query = ConjunctiveQuery::all("census");
    for rows in [10_000usize, 100_000, 1_000_000] {
        let table = census(rows);
        let atlas = Atlas::new(Arc::clone(&table), AtlasConfig::default()).expect("valid config");
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &atlas, |b, atlas| {
            b.iter(|| atlas.explore(&query).expect("exploration succeeds"))
        });
    }
    group.finish();
}

fn bench_scale_attributes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_scale_attributes");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(2500));
    let query = ConjunctiveQuery::all("wide");
    for columns in [4usize, 8, 16, 32] {
        let table = wide_numeric(50_000, columns);
        let atlas = Atlas::new(Arc::clone(&table), AtlasConfig::default()).expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(columns), &atlas, |b, atlas| {
            b.iter(|| atlas.explore(&query).expect("exploration succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale_rows, bench_scale_attributes);
criterion_main!(benches);
