//! E8 — Atlas versus the baselines: end-to-end latency of each system on the
//! same census working set (the quality/readability side is covered by the
//! `experiments` harness).

use atlas_bench::census;
use atlas_core::baselines::{
    FullProductBaseline, GridCliqueBaseline, RandomMapBaseline, SingleAttributeBaseline,
};
use atlas_core::{Atlas, AtlasConfig};
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_systems");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(2000));
    let table = census(50_000);
    let working = table.full_selection();
    let query = ConjunctiveQuery::all("census");

    let atlas = Atlas::new(Arc::clone(&table), AtlasConfig::default()).expect("valid config");
    group.bench_function("atlas_default", |b| {
        b.iter(|| atlas.explore(&query).expect("exploration succeeds"))
    });

    let single = SingleAttributeBaseline::default();
    group.bench_function("single_attribute", |b| {
        b.iter(|| {
            single
                .generate(&table, &working, &query)
                .expect("baseline succeeds")
        })
    });

    let product = FullProductBaseline::default();
    group.bench_function("full_product", |b| {
        b.iter(|| {
            product
                .generate(&table, &working, &query)
                .expect("baseline succeeds")
        })
    });

    let random = RandomMapBaseline::default();
    group.bench_function("random_maps", |b| {
        b.iter(|| {
            random
                .generate(&table, &working, &query)
                .expect("baseline succeeds")
        })
    });

    let clique = GridCliqueBaseline::default();
    group.bench_function("grid_clique", |b| {
        b.iter(|| {
            clique
                .generate(&table, &working, &query)
                .expect("baseline succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
