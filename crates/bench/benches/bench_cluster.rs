//! E3 — cost of the map-clustering step: distance matrix plus agglomerative
//! clustering (single / complete / average linkage, SLINK).

use atlas_bench::wide_numeric;
use atlas_core::cut::CutConfig;
use atlas_core::{
    cluster_maps, distance_matrix, generate_candidates, slink, ClusteringConfig, Linkage,
    MapDistanceMetric,
};
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_distance_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_distance_matrix");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for columns in [4usize, 8, 16, 32] {
        let table = wide_numeric(20_000, columns);
        let working = table.full_selection();
        let query = ConjunctiveQuery::all("wide");
        let candidates = generate_candidates(&table, &working, &query, None, &CutConfig::default())
            .expect("candidates");
        group.bench_with_input(
            BenchmarkId::from_parameter(columns),
            &candidates.maps,
            |b, maps| {
                b.iter(|| distance_matrix(maps, table.num_rows(), MapDistanceMetric::NormalizedVI))
            },
        );
    }
    group.finish();
}

/// The pairwise distance matrix at 20k / 100k rows (12 candidate maps),
/// sequentially and on the pool — the phase the fused bitmap-contingency
/// kernel targets.
fn bench_distance_matrix_scale(c: &mut Criterion) {
    use atlas_core::{distance_matrix_with_pool, ThreadPool};
    let mut group = c.benchmark_group("e3_distance_matrix_vs_rows");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for rows in [20_000usize, 100_000] {
        let table = wide_numeric(rows, 12);
        let working = table.full_selection();
        let query = ConjunctiveQuery::all("wide");
        let candidates = generate_candidates(&table, &working, &query, None, &CutConfig::default())
            .expect("candidates");
        group.bench_with_input(
            BenchmarkId::new("seq", rows),
            &candidates.maps,
            |b, maps| {
                b.iter(|| distance_matrix(maps, table.num_rows(), MapDistanceMetric::NormalizedVI))
            },
        );
        let pool = ThreadPool::new(minirayon_threads());
        group.bench_with_input(
            BenchmarkId::new("par", rows),
            &candidates.maps,
            |b, maps| {
                b.iter(|| {
                    distance_matrix_with_pool(
                        maps,
                        table.num_rows(),
                        MapDistanceMetric::NormalizedVI,
                        &pool,
                    )
                })
            },
        );
    }
    group.finish();
}

fn minirayon_threads() -> usize {
    atlas_core::AtlasConfig::default().parallelism
}

fn bench_linkages(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_agglomerative_linkage");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let table = wide_numeric(10_000, 24);
    let working = table.full_selection();
    let query = ConjunctiveQuery::all("wide");
    let candidates = generate_candidates(&table, &working, &query, None, &CutConfig::default())
        .expect("candidates");
    let matrix = distance_matrix(
        &candidates.maps,
        table.num_rows(),
        MapDistanceMetric::NormalizedVI,
    );
    for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
        let config = ClusteringConfig {
            linkage,
            ..ClusteringConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{linkage:?}")),
            &config,
            |b, config| b.iter(|| cluster_maps(&matrix, config).expect("clustering succeeds")),
        );
    }
    group.bench_function("slink", |b| b.iter(|| slink(&matrix)));
    group.finish();
}

criterion_group!(
    benches,
    bench_distance_matrix,
    bench_distance_matrix_scale,
    bench_linkages
);
criterion_main!(benches);
