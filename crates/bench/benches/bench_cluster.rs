//! E3 — cost of the map-clustering step: distance matrix plus agglomerative
//! clustering (single / complete / average linkage, SLINK).

use atlas_bench::wide_numeric;
use atlas_core::cut::CutConfig;
use atlas_core::{
    cluster_maps, distance_matrix, generate_candidates, slink, ClusteringConfig, Linkage,
    MapDistanceMetric,
};
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_distance_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_distance_matrix");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for columns in [4usize, 8, 16, 32] {
        let table = wide_numeric(20_000, columns);
        let working = table.full_selection();
        let query = ConjunctiveQuery::all("wide");
        let candidates = generate_candidates(&table, &working, &query, None, &CutConfig::default())
            .expect("candidates");
        group.bench_with_input(
            BenchmarkId::from_parameter(columns),
            &candidates.maps,
            |b, maps| {
                b.iter(|| distance_matrix(maps, table.num_rows(), MapDistanceMetric::NormalizedVI))
            },
        );
    }
    group.finish();
}

fn bench_linkages(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_agglomerative_linkage");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let table = wide_numeric(10_000, 24);
    let working = table.full_selection();
    let query = ConjunctiveQuery::all("wide");
    let candidates = generate_candidates(&table, &working, &query, None, &CutConfig::default())
        .expect("candidates");
    let matrix = distance_matrix(
        &candidates.maps,
        table.num_rows(),
        MapDistanceMetric::NormalizedVI,
    );
    for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
        let config = ClusteringConfig {
            linkage,
            ..ClusteringConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{linkage:?}")),
            &config,
            |b, config| b.iter(|| cluster_maps(&matrix, config).expect("clustering succeeds")),
        );
    }
    group.bench_function("slink", |b| b.iter(|| slink(&matrix)));
    group.finish();
}

criterion_group!(benches, bench_distance_matrix, bench_linkages);
criterion_main!(benches);
