//! E7 — the anytime engine (Section 5.1): cost of one sampled iteration as a
//! function of the sample size, versus the exact full-data run.

use atlas_bench::census;
use atlas_core::{Atlas, AtlasConfig};
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_anytime_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_anytime_sample_size");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(2000));
    let table = census(500_000);
    let query = ConjunctiveQuery::all("census");
    let atlas = Atlas::new(Arc::clone(&table), AtlasConfig::default()).expect("valid config");
    let full = table.full_selection();
    let all_rows: Vec<usize> = full.to_indices();
    for sample in [2_000usize, 20_000, 200_000, 500_000] {
        // Deterministic "sample": a stride over the working set, so the bench
        // measures the pipeline cost, not the RNG.
        let stride = (all_rows.len() / sample).max(1);
        let selection = atlas_columnar::Bitmap::from_indices(
            table.num_rows(),
            all_rows.iter().step_by(stride).copied().take(sample),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(sample),
            &selection,
            |b, selection| {
                b.iter(|| {
                    atlas
                        .explore_selection(&query, selection.clone())
                        .expect("exploration succeeds")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_anytime_iterations);
criterion_main!(benches);
