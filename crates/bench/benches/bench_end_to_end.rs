//! E1 / E6 — end-to-end map generation latency on the census workload
//! (the paper's headline "quasi-real time" requirement), for the default,
//! fast and quality configurations.

use atlas_bench::census;
use atlas_core::{Atlas, AtlasConfig};
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_end_to_end_census");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(2000));
    let table = census(100_000);
    let query = ConjunctiveQuery::all("census");
    let configs: [(&str, AtlasConfig); 3] = [
        ("default", AtlasConfig::default()),
        ("fast", AtlasConfig::fast()),
        ("quality", AtlasConfig::quality()),
    ];
    for (name, config) in configs {
        let atlas = Atlas::new(Arc::clone(&table), config).expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(name), &atlas, |b, atlas| {
            b.iter(|| atlas.explore(&query).expect("exploration succeeds"))
        });
    }
    group.finish();
}

/// Build-once/explore-many vs rebuild-per-query: the point of the prepared
/// engine. The `prepared` case pays the column-statistics profile once,
/// outside the measured loop; the `rebuilt` case pays it on every query, as
/// the pre-redesign engine effectively did.
fn bench_prepared_vs_rebuilt(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_prepared_engine_reuse");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(2000));
    let table = census(100_000);
    let query = ConjunctiveQuery::all("census");

    let prepared = Atlas::builder(Arc::clone(&table))
        .config(AtlasConfig::fast())
        .build()
        .expect("valid config");
    group.bench_function("prepared", |b| {
        b.iter(|| prepared.explore(&query).expect("exploration succeeds"))
    });
    group.bench_function("rebuilt_per_query", |b| {
        b.iter(|| {
            Atlas::builder(Arc::clone(&table))
                .config(AtlasConfig::fast())
                .build()
                .expect("valid config")
                .explore(&query)
                .expect("exploration succeeds")
        })
    });
    group.finish();

    // The observable contract behind the speed-up: after the first query, a
    // whole-table explore recomputes no per-column statistics at all.
    let before = prepared.profile_stats();
    prepared.explore(&query).expect("exploration succeeds");
    let after = prepared.profile_stats();
    assert_eq!(after.misses, before.misses, "no statistics recomputation");
    assert!(
        after.hits > before.hits,
        "statistics served from the profile"
    );
}

criterion_group!(benches, bench_end_to_end, bench_prepared_vs_rebuilt);
criterion_main!(benches);
