//! E1 / E6 — end-to-end map generation latency on the census workload
//! (the paper's headline "quasi-real time" requirement), for the default,
//! fast and quality configurations.

use atlas_bench::census;
use atlas_core::{Atlas, AtlasConfig};
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_end_to_end_census");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(2000));
    let table = census(100_000);
    let query = ConjunctiveQuery::all("census");
    let configs: [(&str, AtlasConfig); 3] = [
        ("default", AtlasConfig::default()),
        ("fast", AtlasConfig::fast()),
        ("quality", AtlasConfig::quality()),
    ];
    for (name, config) in configs {
        let atlas = Atlas::new(Arc::clone(&table), config).expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(name), &atlas, |b, atlas| {
            b.iter(|| atlas.explore(&query).expect("exploration succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
