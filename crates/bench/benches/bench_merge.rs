//! E4 — cost of the merge operators (product vs composition, Figure 5).

use atlas_bench::mixture;
use atlas_core::cut::CutConfig;
use atlas_core::{compose_maps, generate_candidates, product_maps};
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_merge_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_merge_operator");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for rows in [10_000usize, 50_000] {
        let (table, _) = mixture(rows, 4);
        let working = table.full_selection();
        let query = ConjunctiveQuery::all("mixture");
        let config = CutConfig::default();
        let candidates =
            generate_candidates(&table, &working, &query, None, &config).expect("candidates");
        // Merge the two signal-attribute maps (the realistic cluster size).
        let pair: Vec<_> = candidates
            .maps
            .iter()
            .filter(|m| m.source_attributes[0].starts_with("sig_"))
            .cloned()
            .collect();
        group.bench_with_input(BenchmarkId::new("product", rows), &pair, |b, pair| {
            b.iter(|| product_maps(pair, true).expect("product exists"))
        });
        group.bench_with_input(BenchmarkId::new("composition", rows), &pair, |b, pair| {
            b.iter(|| {
                compose_maps(pair, &table, &config, true)
                    .expect("composition succeeds")
                    .expect("composition exists")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge_operators);
criterion_main!(benches);
