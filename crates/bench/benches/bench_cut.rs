//! E2 / E10 — cost of the `CUT` primitive per cutting strategy and column
//! size (Figure 3 and Section 5.1 of the paper).

use atlas_bench::census;
use atlas_core::cut::{cut_attribute, CutConfig, NumericCutStrategy};
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_cut_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_cut_strategy");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    let table = census(50_000);
    let working = table.full_selection();
    let query = ConjunctiveQuery::all("census");
    let strategies: [(&str, NumericCutStrategy); 5] = [
        ("equi_width", NumericCutStrategy::EquiWidth),
        ("median", NumericCutStrategy::Median),
        ("kmeans", NumericCutStrategy::KMeans { max_iterations: 30 }),
        ("natural_breaks", NumericCutStrategy::NaturalBreaks),
        (
            "gk_sketch",
            NumericCutStrategy::SketchMedian { epsilon: 0.01 },
        ),
    ];
    for (name, strategy) in strategies {
        // Natural breaks is O(n²); bench it on a smaller working set so the
        // suite stays fast, which is also how the engine would use it.
        let (bench_table, bench_working) = if name == "natural_breaks" {
            let t = census(3_000);
            let w = t.full_selection();
            (t, w)
        } else {
            (table.clone(), working.clone())
        };
        let config = CutConfig {
            numeric: strategy,
            ..CutConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("age", name), &config, |b, config| {
            b.iter(|| {
                cut_attribute(&bench_table, &bench_working, &query, "age", config)
                    .expect("cut succeeds")
            })
        });
    }
    group.finish();
}

fn bench_cut_column_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_cut_vs_rows");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    for rows in [10_000usize, 50_000, 200_000] {
        let table = census(rows);
        let working = table.full_selection();
        let query = ConjunctiveQuery::all("census");
        for (name, strategy) in [
            ("exact_median", NumericCutStrategy::Median),
            (
                "gk_sketch",
                NumericCutStrategy::SketchMedian { epsilon: 0.01 },
            ),
        ] {
            let config = CutConfig {
                numeric: strategy,
                ..CutConfig::default()
            };
            group.bench_with_input(BenchmarkId::new(name, rows), &config, |b, config| {
                b.iter(|| {
                    cut_attribute(&table, &working, &query, "height_cm", config)
                        .expect("cut succeeds")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cut_strategies, bench_cut_column_size);
criterion_main!(benches);
