//! E5 — cost of the entropy ranking step (it must be negligible).

use atlas_bench::census;
use atlas_core::cut::CutConfig;
use atlas_core::{generate_candidates, rank_maps};
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_ranking");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for rows in [10_000usize, 100_000] {
        let table = census(rows);
        let working = table.full_selection();
        let query = ConjunctiveQuery::all("census");
        let candidates = generate_candidates(&table, &working, &query, None, &CutConfig::default())
            .expect("candidates");
        group.bench_with_input(
            BenchmarkId::from_parameter(rows),
            &candidates.maps,
            |b, maps| b.iter(|| rank_maps(maps.to_vec())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
