//! E9 — candidate generation cost as the number of partitions per attribute
//! grows (the paper's "we restrict the number of partitions to two" ablation).

use atlas_bench::census;
use atlas_core::cut::CutConfig;
use atlas_core::generate_candidates;
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Candidate generation at 20k / 100k census rows, through a prepared engine
/// (the phase the fused select kernels and the thread pool target). Phase
/// regressions show up here without running the whole pipeline.
fn bench_candidate_generation_scale(c: &mut Criterion) {
    use atlas_core::{Atlas, AtlasConfig};
    use std::sync::Arc;
    let mut group = c.benchmark_group("e6_candidates_vs_rows");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for rows in [20_000usize, 100_000] {
        let table = census(rows);
        let working = table.full_selection();
        let query = ConjunctiveQuery::all("census");
        for (name, parallelism) in [("seq", 1), ("par", AtlasConfig::default().parallelism)] {
            let atlas = Atlas::builder(Arc::clone(&table))
                .config(AtlasConfig::fast().with_parallelism(parallelism))
                .build()
                .expect("valid config");
            group.bench_with_input(BenchmarkId::new(name, rows), &atlas, |b, atlas| {
                b.iter(|| {
                    atlas
                        .candidates(&query, &working)
                        .expect("candidate generation succeeds")
                })
            });
        }
    }
    group.finish();
}

fn bench_candidate_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_candidates_vs_splits");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let table = census(30_000);
    let working = table.full_selection();
    let query = ConjunctiveQuery::all("census");
    for splits in [2usize, 3, 4, 8] {
        let config = CutConfig {
            num_splits: splits,
            ..CutConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(splits), &config, |b, config| {
            b.iter(|| {
                generate_candidates(&table, &working, &query, None, config)
                    .expect("candidate generation succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_candidate_generation,
    bench_candidate_generation_scale
);
criterion_main!(benches);
