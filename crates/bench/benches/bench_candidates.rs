//! E9 — candidate generation cost as the number of partitions per attribute
//! grows (the paper's "we restrict the number of partitions to two" ablation).

use atlas_bench::census;
use atlas_core::cut::CutConfig;
use atlas_core::generate_candidates;
use atlas_query::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_candidate_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_candidates_vs_splits");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let table = census(30_000);
    let working = table.full_selection();
    let query = ConjunctiveQuery::all("census");
    for splits in [2usize, 3, 4, 8] {
        let config = CutConfig {
            num_splits: splits,
            ..CutConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(splits), &config, |b, config| {
            b.iter(|| {
                generate_candidates(&table, &working, &query, None, config)
                    .expect("candidate generation succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidate_generation);
criterion_main!(benches);
