//! # atlas-bench
//!
//! Shared fixtures for the Criterion benchmarks and the experiment harness
//! (`cargo run -p atlas-bench --bin experiments --release`).
//!
//! The paper ("Fast Cartography for Data Explorers", VLDB 2013) is a vision
//! paper without result tables; EXPERIMENTS.md and DESIGN.md define the
//! experiment suite E1–E10 that turns each figure and each measurable claim
//! into a quantitative, reproducible check. The benchmarks in `benches/`
//! measure the latency side (one bench target per experiment family); the
//! `experiments` binary prints the quality/behaviour tables.

#![warn(missing_docs)]

use atlas_columnar::Table;
use atlas_datagen::{CensusGenerator, MixtureGenerator, OrdersGenerator, SdssGenerator};
use std::sync::Arc;

/// The default census fixture used across benchmarks.
pub fn census(rows: usize) -> Arc<Table> {
    Arc::new(CensusGenerator::with_rows(rows, 42).generate())
}

/// The default sky-survey fixture used across benchmarks.
pub fn sky(rows: usize) -> Arc<Table> {
    Arc::new(SdssGenerator::with_rows(rows, 42).generate())
}

/// The default orders fixture used across benchmarks.
pub fn orders(rows: usize) -> Arc<Table> {
    Arc::new(OrdersGenerator::with_rows(rows, 42).generate())
}

/// A mixture fixture with planted clusters, returning the table and labels.
pub fn mixture(rows: usize, clusters: usize) -> (Arc<Table>, Vec<u32>) {
    let ds = MixtureGenerator::with_shape(rows, clusters, 2, 2, 42).generate();
    (Arc::new(ds.table), ds.labels)
}

/// A purely numeric wide table for scaling experiments: `columns` independent
/// uniform attributes.
pub fn wide_numeric(rows: usize, columns: usize) -> Arc<Table> {
    use atlas_columnar::{DataType, Field, Schema, TableBuilder, Value};
    let fields: Vec<Field> = (0..columns)
        .map(|c| Field::new(format!("a{c}"), DataType::Float))
        .collect();
    let schema = Schema::new(fields).expect("generated schema is valid");
    let mut builder = TableBuilder::new("wide", schema);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..rows {
        let row: Vec<Value> = (0..columns)
            .map(|_| Value::Float(next() * 1000.0))
            .collect();
        builder.push_row(&row).expect("row matches schema");
    }
    Arc::new(builder.build().expect("columns are consistent"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_expected_shapes() {
        assert_eq!(census(100).num_rows(), 100);
        assert_eq!(sky(50).num_rows(), 50);
        assert_eq!(orders(70).num_rows(), 70);
        let (table, labels) = mixture(120, 3);
        assert_eq!(table.num_rows(), 120);
        assert_eq!(labels.len(), 120);
        let wide = wide_numeric(60, 5);
        assert_eq!(wide.num_rows(), 60);
        assert_eq!(wide.num_columns(), 5);
    }
}
