//! The experiment harness: reproduces every experiment of EXPERIMENTS.md
//! (E1–E10) and prints one table per experiment.
//!
//! Run with: `cargo run -p atlas-bench --release --bin experiments`
//! A subset can be selected by id: `… --bin experiments e1 e4 e7`.

use atlas_bench::{census, mixture, wide_numeric};
use atlas_columnar::{with_kernel_path, Bitmap, KernelPath};
use atlas_core::baselines::{
    FullProductBaseline, GridCliqueBaseline, RandomMapBaseline, SingleAttributeBaseline,
};
use atlas_core::cut::{cut_attribute, CutConfig, NumericCutStrategy};
use atlas_core::{
    cluster_maps, distance_matrix, generate_candidates, AnytimeAtlas, AnytimeConfig, Atlas,
    AtlasConfig, ClusteringConfig, DataMap, Linkage, MapDistanceMetric, MergeStrategy,
    PhaseTimings,
};
use atlas_datagen::CensusGenerator;
use atlas_explorer::{MapQuality, ReadabilityReport};
use atlas_query::ConjunctiveQuery;
use atlas_serve::wire::Json;
use atlas_serve::{
    Client, Coordinator, CoordinatorOptions, DatasetOptions, Registry, RetryPolicy, ServeConfig,
    Server, ServerHandle,
};
use atlas_stats::adjusted_rand_index;
use atlas_stats::quantile::quantile;
use atlas_stats::ContingencyTable;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    // `bench-smoke [path] [--gate <pct>]` — the CI perf-trajectory mode —
    // writes a small JSON report instead of printing the experiment tables.
    // With `--gate`, the run fails (exit 1) if any phase regressed by more
    // than `<pct>` percent against the most recent committed bench-smoke
    // report.
    if raw_args.first().map(String::as_str) == Some("bench-smoke") {
        let mut path = None;
        let mut gate = None;
        let mut rest = raw_args[1..].iter();
        while let Some(arg) = rest.next() {
            if arg == "--gate" {
                let pct = rest.next().expect("--gate takes a percentage");
                gate = Some(pct.parse::<f64>().expect("--gate takes a number"));
            } else {
                path = Some(arg.as_str());
            }
        }
        bench_smoke(path.unwrap_or("BENCH_PR9.json"), gate);
        return;
    }
    // `load-smoke [path]` — the serving-throughput mode: boots `atlas-serve`
    // on an ephemeral port and drives it with a closed-loop load generator.
    if raw_args.first().map(String::as_str) == Some("load-smoke") {
        let path = raw_args.get(1).map_or("BENCH_PR5.json", String::as_str);
        load_smoke(path);
        return;
    }
    // `dist-smoke [path]` — the distributed scatter-gather mode: in-process
    // shard servers over one shared 1M-row census, a coordinator explore at
    // N ∈ {1, 2, 4} shards, every answer checked bit-identical against the
    // in-process engine.
    if raw_args.first().map(String::as_str) == Some("dist-smoke") {
        let path = raw_args.get(1).map_or("BENCH_PR8.json", String::as_str);
        dist_smoke(path);
        return;
    }
    // `trace-smoke [path]` — enable tracing, run a two-shard distributed
    // explore, validate the reassembled span tree (every pipeline phase, at
    // least one kernel-path event, proper nesting, nothing unclosed), and
    // write the spans as Chrome trace-event JSON loadable in Perfetto.
    if raw_args.first().map(String::as_str) == Some("trace-smoke") {
        let path = raw_args.get(1).map_or("TRACE_SMOKE.json", String::as_str);
        trace_smoke(path);
        return;
    }
    let args: Vec<String> = raw_args.iter().map(|a| a.to_lowercase()).collect();
    let wants = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    println!("# Atlas experiment harness");
    println!("# (one section per experiment of EXPERIMENTS.md)\n");
    if wants("e1") {
        e1_alternative_maps();
    }
    if wants("e2") {
        e2_cut_strategies();
    }
    if wants("e3") {
        e3_dependency_recovery();
    }
    if wants("e4") {
        e4_product_vs_composition();
    }
    if wants("e5") {
        e5_ranking();
    }
    if wants("e6") {
        e6_scalability();
    }
    if wants("e7") {
        e7_anytime();
    }
    if wants("e8") {
        e8_baselines();
    }
    if wants("e9") {
        e9_splits_ablation();
    }
    if wants("e10") {
        e10_sketch_ablation();
    }
}

/// E1 — Figures 1 & 2: several alternative maps of the same census data, with
/// dependent attributes grouped together.
fn e1_alternative_maps() {
    println!("## E1 — alternative maps of the census working set (Figures 1–2)");
    println!("| seed | maps | top map attributes | top-map regions | edu&salary together | eye_color isolated |");
    println!("|------|------|--------------------|-----------------|---------------------|--------------------|");
    let mut grouped = 0usize;
    let mut isolated = 0usize;
    let seeds = [1u64, 2, 3, 4, 5];
    for &seed in &seeds {
        let table = Arc::new(CensusGenerator::with_rows(20_000, seed).generate());
        let atlas = Atlas::with_defaults(Arc::clone(&table)).expect("valid config");
        let result = atlas
            .explore(&ConjunctiveQuery::all("census"))
            .expect("exploration succeeds");
        let education_map = result
            .maps
            .iter()
            .find(|m| m.map.source_attributes.iter().any(|a| a == "education"));
        let edu_with_salary = education_map
            .map(|m| m.map.source_attributes.iter().any(|a| a == "salary"))
            .unwrap_or(false);
        let eye_isolated = result
            .maps
            .iter()
            .filter(|m| m.map.source_attributes.iter().any(|a| a == "eye_color"))
            .all(|m| m.map.source_attributes.len() == 1);
        grouped += usize::from(edu_with_salary);
        isolated += usize::from(eye_isolated);
        let best = result.best().expect("at least one map");
        println!(
            "| {seed} | {} | {} | {} | {} | {} |",
            result.num_maps(),
            best.map.source_attributes.join("+"),
            best.map.num_regions(),
            edu_with_salary,
            eye_isolated
        );
    }
    println!(
        "-> dependency grouping rate: {grouped}/{} seeds, distractor isolation rate: {isolated}/{}\n",
        seeds.len(),
        seeds.len()
    );
}

/// E2 — Figure 3 / Section 3.1: cost and quality of the cutting strategies.
fn e2_cut_strategies() {
    println!("## E2 — CUT strategies: cost and within-partition homogeneity (Figure 3)");
    println!("| strategy | time (ms) | balance (entropy bits) | variance reduction |");
    println!("|----------|-----------|------------------------|--------------------|");
    let table = census(100_000);
    let working = table.full_selection();
    let query = ConjunctiveQuery::all("census");
    let column = table.column("height_cm").expect("column exists");
    let values = column.numeric_values_where(&working);
    let total_variance = variance(&values);
    let strategies: [(&str, NumericCutStrategy); 4] = [
        ("equi_width", NumericCutStrategy::EquiWidth),
        ("median", NumericCutStrategy::Median),
        ("kmeans", NumericCutStrategy::KMeans { max_iterations: 30 }),
        (
            "gk_sketch(1%)",
            NumericCutStrategy::SketchMedian { epsilon: 0.01 },
        ),
    ];
    for (name, strategy) in strategies {
        let config = CutConfig {
            numeric: strategy,
            ..CutConfig::default()
        };
        let start = Instant::now();
        let map = cut_attribute(&table, &working, &query, "height_cm", &config)
            .expect("cut succeeds")
            .expect("map produced");
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        let within: f64 = map
            .regions
            .iter()
            .map(|r| {
                let vs = column.numeric_values_where(&r.selection);
                variance(&vs) * vs.len() as f64
            })
            .sum::<f64>()
            / values.len() as f64;
        let reduction = 1.0 - within / total_variance;
        println!(
            "| {name} | {elapsed:.2} | {:.3} | {reduction:.3} |",
            map.entropy()
        );
    }
    println!();
}

/// E3 — Figure 4 / Section 3.2: recovery of the planted attribute dependency
/// groups, per distance metric and linkage.
fn e3_dependency_recovery() {
    println!("## E3 — dependency-group recovery by map clustering (Figure 4)");
    println!("| distance | linkage | recovered groups | expected groups | exact match |");
    println!("|----------|---------|------------------|-----------------|-------------|");
    let table = Arc::new(CensusGenerator::with_rows(30_000, 7).generate());
    let working = table.full_selection();
    let query = ConjunctiveQuery::all("census");
    let candidates = generate_candidates(&table, &working, &query, None, &CutConfig::default())
        .expect("candidates");
    let attribute_of = |idx: usize| candidates.maps[idx].source_attributes[0].clone();
    let expected = CensusGenerator::dependency_groups();
    for metric in [
        MapDistanceMetric::NormalizedVI,
        MapDistanceMetric::OneMinusNmi,
        MapDistanceMetric::VariationOfInformation,
    ] {
        let matrix = distance_matrix(&candidates.maps, table.num_rows(), metric);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            // The raw VI is unbounded, so it needs a larger threshold.
            let threshold = match metric {
                MapDistanceMetric::VariationOfInformation => 1.6,
                _ => 0.95,
            };
            let clusters = cluster_maps(
                &matrix,
                &ClusteringConfig {
                    linkage,
                    distance_threshold: Some(threshold),
                    max_cluster_size: 3,
                },
            )
            .expect("clustering succeeds");
            let recovered: Vec<Vec<String>> = clusters
                .iter()
                .map(|c| {
                    let mut names: Vec<String> = c.iter().map(|&i| attribute_of(i)).collect();
                    names.sort();
                    names
                })
                .collect();
            let exact = expected.iter().all(|group| {
                let mut g: Vec<String> = group.iter().map(|s| s.to_string()).collect();
                g.sort();
                recovered.contains(&g)
            });
            println!(
                "| {metric:?} | {linkage:?} | {} | {} | {exact} |",
                recovered.len(),
                expected.len()
            );
        }
    }
    println!();
}

/// E4 — Figure 5 / Section 3.3: product vs composition on planted mixtures.
fn e4_product_vs_composition() {
    println!("## E4 — product vs composition: planted-cluster recovery (Figure 5)");
    println!("| clusters | merge | regions | ARI vs ground truth | time (ms) |");
    println!("|----------|-------|---------|---------------------|-----------|");
    for clusters in [2usize, 4, 6] {
        let (table, labels) = mixture(20_000, clusters);
        let attrs: Vec<String> = vec!["sig_0".to_string(), "sig_1".to_string()];
        for merge in [MergeStrategy::Product, MergeStrategy::Composition] {
            let config = AtlasConfig {
                merge,
                attributes: Some(attrs.clone()),
                cut: CutConfig {
                    numeric: NumericCutStrategy::KMeans { max_iterations: 40 },
                    ..CutConfig::default()
                },
                max_regions_per_map: 16,
                ..AtlasConfig::default()
            };
            let atlas = Atlas::new(Arc::clone(&table), config).expect("valid config");
            let result = atlas
                .explore(&ConjunctiveQuery::all("mixture"))
                .expect("exploration succeeds");
            // The engine's own span-derived timing; no second stopwatch.
            let elapsed = result.timings.total_ms;
            let (_, quality) =
                MapQuality::best_of(&result.maps, &labels).expect("at least one map");
            let best = result.best().expect("at least one map");
            println!(
                "| {clusters} | {merge:?} | {} | {:.3} | {elapsed:.1} |",
                best.map.num_regions(),
                quality.ari
            );
        }
    }
    println!();
}

/// E5 — Section 3.4: ranking behaviour.
fn e5_ranking() {
    println!("## E5 — entropy ranking: balanced multi-region maps first, outlier maps last");
    println!("| rank | attributes | regions | entropy | smallest region cover |");
    println!("|------|------------|---------|---------|------------------------|");
    let table = census(30_000);
    let atlas = Atlas::with_defaults(Arc::clone(&table)).expect("valid config");
    let result = atlas
        .explore(&ConjunctiveQuery::all("census"))
        .expect("exploration succeeds");
    for (rank, ranked) in result.maps.iter().enumerate() {
        let covers = ranked.map.covers(result.working_set_size);
        let min_cover = covers.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "| {rank} | {} | {} | {:.3} | {:.3} |",
            ranked.map.source_attributes.join("+"),
            ranked.map.num_regions(),
            ranked.score,
            min_cover
        );
    }
    // Monotonicity check.
    let monotone = result
        .maps
        .windows(2)
        .all(|w| w[0].score >= w[1].score - 1e-12);
    println!("-> scores non-increasing: {monotone}\n");
}

/// E6 — Sections 1–2: end-to-end latency vs rows and attributes, with the
/// per-phase breakdown.
fn e6_scalability() {
    println!("## E6 — end-to-end latency (quasi-real-time claim)");
    println!("| dataset | rows | attrs | total (ms) | cut (ms) | cluster (ms) | merge (ms) | rank (ms) |");
    println!("|---------|------|-------|------------|----------|--------------|------------|-----------|");
    for rows in [10_000usize, 100_000, 1_000_000] {
        let table = census(rows);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).expect("valid config");
        let result = atlas
            .explore(&ConjunctiveQuery::all("census"))
            .expect("exploration succeeds");
        let t = &result.timings;
        println!(
            "| census | {rows} | 7 | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |",
            t.total_ms, t.candidates_ms, t.clustering_ms, t.merge_ms, t.rank_ms
        );
    }
    for columns in [8usize, 16, 32] {
        let table = wide_numeric(100_000, columns);
        let atlas = Atlas::with_defaults(Arc::clone(&table)).expect("valid config");
        let result = atlas
            .explore(&ConjunctiveQuery::all("wide"))
            .expect("exploration succeeds");
        let t = &result.timings;
        println!(
            "| wide | 100000 | {columns} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |",
            t.total_ms, t.candidates_ms, t.clustering_ms, t.merge_ms, t.rank_ms
        );
    }
    println!();
}

/// E7 — Section 5.1: anytime quality vs time budget.
fn e7_anytime() {
    println!("## E7 — anytime engine: approximation quality vs sample size");
    println!("| iteration | sample | elapsed (ms) | max cover error vs exact | same attribute grouping |");
    println!("|-----------|--------|--------------|--------------------------|-------------------------|");
    let table = census(500_000);
    let query = ConjunctiveQuery::all("census");
    let exact = Atlas::with_defaults(Arc::clone(&table))
        .expect("valid config")
        .explore(&query)
        .expect("exact exploration");
    let exact_best = exact.best().expect("exact map");
    let exact_covers = exact_best.map.covers(exact.working_set_size);
    let anytime = AnytimeAtlas::new(
        Arc::clone(&table),
        AnytimeConfig {
            initial_sample: 1_000,
            growth_factor: 4.0,
            budget: std::time::Duration::from_secs(120),
            ..AnytimeConfig::default()
        },
    )
    .expect("valid config");
    let outcome = anytime.run(&query).expect("anytime run succeeds");
    for (i, iteration) in outcome.iterations.iter().enumerate() {
        let best = iteration.result.best().expect("a map per iteration");
        let covers = best.map.covers(iteration.result.working_set_size);
        let max_error = covers
            .iter()
            .zip(exact_covers.iter())
            .map(|(a, e)| (a - e).abs())
            .fold(0.0f64, f64::max);
        let same_grouping = {
            let mut a = best.map.source_attributes.clone();
            let mut e = exact_best.map.source_attributes.clone();
            a.sort();
            e.sort();
            a == e
        };
        println!(
            "| {i} | {} | {:.1} | {:.4} | {} |",
            iteration.sample_size,
            iteration.elapsed.as_secs_f64() * 1000.0,
            max_error,
            same_grouping
        );
    }
    println!(
        "-> reached full data: {}, exact end-to-end: {:.1} ms\n",
        outcome.reached_full_data, exact.timings.total_ms
    );
}

/// E8 — Sections 2 & 6: Atlas vs baselines on readability and interest.
fn e8_baselines() {
    println!("## E8 — Atlas vs baselines: readability constraints and interest");
    println!("| system | maps | max regions | mean regions | max predicates | mean entropy | within constraints | time (ms) |");
    println!("|--------|------|-------------|--------------|----------------|--------------|--------------------|-----------|");
    let table = census(50_000);
    let working = table.full_selection();
    let query = ConjunctiveQuery::all("census");
    let region_limit = 8;
    let predicate_limit = 3;

    let report_row = |name: &str, maps: &[DataMap], elapsed_ms: f64| {
        let report = ReadabilityReport::compute(maps, region_limit, predicate_limit);
        println!(
            "| {name} | {} | {} | {:.1} | {} | {:.3} | {} | {elapsed_ms:.1} |",
            report.num_maps,
            report.max_regions,
            report.mean_regions,
            report.max_predicates,
            report.mean_entropy,
            report.within_constraints
        );
    };

    let atlas_result = Atlas::new(Arc::clone(&table), AtlasConfig::default())
        .expect("valid config")
        .explore(&query)
        .expect("exploration succeeds");
    // The engine's own span-derived timing; no second stopwatch.
    let atlas_ms = atlas_result.timings.total_ms;
    let atlas_maps: Vec<DataMap> = atlas_result.maps.iter().map(|m| m.map.clone()).collect();
    report_row("atlas", &atlas_maps, atlas_ms);

    let start = Instant::now();
    let single_maps: Vec<DataMap> = SingleAttributeBaseline::default()
        .generate(&table, &working, &query)
        .expect("baseline succeeds")
        .into_iter()
        .map(|m| m.map)
        .collect();
    report_row(
        "single_attribute",
        &single_maps,
        start.elapsed().as_secs_f64() * 1000.0,
    );

    let start = Instant::now();
    let product_map = FullProductBaseline::default()
        .generate(&table, &working, &query)
        .expect("baseline succeeds");
    report_row(
        "full_product",
        std::slice::from_ref(&product_map),
        start.elapsed().as_secs_f64() * 1000.0,
    );

    let start = Instant::now();
    let random_maps = RandomMapBaseline::default()
        .generate(&table, &working, &query)
        .expect("baseline succeeds");
    report_row(
        "random_maps",
        &random_maps,
        start.elapsed().as_secs_f64() * 1000.0,
    );

    let start = Instant::now();
    let clique_maps = GridCliqueBaseline::default()
        .generate(&table, &working, &query)
        .expect("baseline succeeds");
    report_row(
        "grid_clique",
        &clique_maps,
        start.elapsed().as_secs_f64() * 1000.0,
    );
    println!();
}

/// E9 — Section 3.1: the two-way-split design decision.
fn e9_splits_ablation() {
    println!("## E9 — partitions per attribute: accuracy vs cost (two-way split ablation)");
    println!("| splits | dependency groups exact | candidate time (ms) | end-to-end (ms) | max regions |");
    println!("|--------|-------------------------|---------------------|-----------------|-------------|");
    let table = Arc::new(CensusGenerator::with_rows(50_000, 19).generate());
    let expected = CensusGenerator::dependency_groups();
    for splits in [2usize, 3, 4, 8] {
        let cut = CutConfig {
            num_splits: splits,
            ..CutConfig::default()
        };
        let working = table.full_selection();
        let query = ConjunctiveQuery::all("census");
        let start = Instant::now();
        let candidates =
            generate_candidates(&table, &working, &query, None, &cut).expect("candidates");
        let candidate_ms = start.elapsed().as_secs_f64() * 1000.0;
        let matrix = distance_matrix(
            &candidates.maps,
            table.num_rows(),
            MapDistanceMetric::NormalizedVI,
        );
        let clusters = cluster_maps(&matrix, &ClusteringConfig::default()).expect("clustering");
        let recovered: Vec<Vec<String>> = clusters
            .iter()
            .map(|c| {
                let mut names: Vec<String> = c
                    .iter()
                    .map(|&i| candidates.maps[i].source_attributes[0].clone())
                    .collect();
                names.sort();
                names
            })
            .collect();
        let exact = expected.iter().all(|group| {
            let mut g: Vec<String> = group.iter().map(|s| s.to_string()).collect();
            g.sort();
            recovered.contains(&g)
        });
        let config = AtlasConfig {
            cut: cut.clone(),
            max_regions_per_map: 64,
            ..AtlasConfig::default()
        };
        let atlas = Atlas::new(Arc::clone(&table), config).expect("valid config");
        let result = atlas.explore(&query).expect("exploration succeeds");
        // The engine's own span-derived timing; no second stopwatch.
        let end_to_end_ms = result.timings.total_ms;
        let max_regions = result
            .maps
            .iter()
            .map(|m| m.map.num_regions())
            .max()
            .unwrap_or(0);
        println!("| {splits} | {exact} | {candidate_ms:.1} | {end_to_end_ms:.1} | {max_regions} |");
    }
    println!();
}

/// E10 — Section 5.1: exact median vs Greenwald–Khanna sketch inside CUT.
fn e10_sketch_ablation() {
    println!("## E10 — exact median vs GK sketch: split-point error and speedup");
    println!("| rows | exact (ms) | sketch (ms) | speedup | split rank error |");
    println!("|------|------------|-------------|---------|------------------|");
    for rows in [50_000usize, 200_000, 1_000_000] {
        let table = census(rows);
        let working = table.full_selection();
        let column = table.column("height_cm").expect("column exists");
        let values = column.numeric_values_where(&working);

        let start = Instant::now();
        let exact_median = quantile(&values, 0.5).expect("non-empty");
        let exact_ms = start.elapsed().as_secs_f64() * 1000.0;

        let start = Instant::now();
        let mut sketch = atlas_stats::GkSketch::new(0.01);
        sketch.extend(&values);
        let approx_median = sketch.median().expect("non-empty");
        let sketch_ms = start.elapsed().as_secs_f64() * 1000.0;

        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank_exact =
            sorted.partition_point(|&v| v <= exact_median) as f64 / sorted.len() as f64;
        let rank_approx =
            sorted.partition_point(|&v| v <= approx_median) as f64 / sorted.len() as f64;
        println!(
            "| {rows} | {exact_ms:.1} | {sketch_ms:.1} | {:.2}x | {:.4} |",
            exact_ms / sketch_ms.max(1e-9),
            (rank_exact - rank_approx).abs()
        );
    }
    println!();
}

fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64
}

/// The harness itself is exercised by an ARI sanity check so a broken metric
/// pipeline cannot silently print nonsense.
#[allow(dead_code)]
fn sanity() {
    let a = [0u32, 0, 1, 1];
    assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-9);
}

/// Round to 3 decimals so the JSON reports stay diff-friendly.
fn ms(x: f64) -> Json {
    Json::Num((x * 1000.0).round() / 1000.0)
}

fn timings_value(t: &PhaseTimings) -> Json {
    Json::object(vec![
        ("query_ms", ms(t.query_ms)),
        ("candidates_ms", ms(t.candidates_ms)),
        ("clustering_ms", ms(t.clustering_ms)),
        ("merge_ms", ms(t.merge_ms)),
        ("rank_ms", ms(t.rank_ms)),
        ("total_ms", ms(t.total_ms)),
    ])
}

/// One bench-smoke scale point: explore the census at `rows` with the fast
/// configuration, sequentially and with the default parallelism, and take the
/// best of `repeats` runs (the steady-state figure CI cares about).
fn smoke_scale_point(rows: usize, repeats: usize) -> Json {
    let table = census(rows);
    let query = ConjunctiveQuery::all("census");

    // Best-of-N like the explore phases below: a single cold build jitters
    // far too much for the CI regression gate to compare meaningfully.
    let mut atlas = None;
    let mut build_ms = f64::INFINITY;
    for _ in 0..repeats {
        let build_start = Instant::now();
        let engine = Atlas::builder(Arc::clone(&table))
            .config(AtlasConfig::fast())
            .build()
            .expect("valid config");
        build_ms = build_ms.min(build_start.elapsed().as_secs_f64() * 1000.0);
        atlas = Some(engine);
    }
    let atlas = atlas.expect("at least one build ran");

    let sequential = Atlas::builder(Arc::clone(&table))
        .config(AtlasConfig::fast().with_parallelism(1))
        .build()
        .expect("valid config");

    let best_of = |engine: &Atlas| {
        let mut best: Option<atlas_core::MapResult> = None;
        for _ in 0..repeats {
            let result = engine.explore(&query).expect("exploration succeeds");
            if best
                .as_ref()
                .is_none_or(|b| result.timings.total_ms < b.timings.total_ms)
            {
                best = Some(result);
            }
        }
        best.expect("at least one exploration ran")
    };

    let parallel_result = best_of(&atlas);
    let sequential_result = best_of(&sequential);

    // The parallelism knob must not change the answer: same maps, same
    // attribute groups, same region populations, bit-identical scores.
    assert_eq!(parallel_result.num_maps(), sequential_result.num_maps());
    for (p, s) in parallel_result
        .maps
        .iter()
        .zip(sequential_result.maps.iter())
    {
        assert_eq!(p.map.source_attributes, s.map.source_attributes);
        assert_eq!(p.map.region_counts(), s.map.region_counts());
        assert_eq!(p.score.to_bits(), s.score.to_bits());
    }

    let profile = atlas.profile_stats();
    assert_eq!(
        profile.misses, 0,
        "whole-table smoke explorations must be pure profile hits"
    );

    Json::object(vec![
        ("rows", Json::from(rows)),
        ("build_ms", ms(build_ms)),
        ("explore", timings_value(&parallel_result.timings)),
        ("explore_seq", timings_value(&sequential_result.timings)),
        ("maps", Json::from(parallel_result.num_maps())),
    ])
}

/// The best wall-clock of `repeats` runs of `f`, in milliseconds, together
/// with the last value `f` produced (every run computes the same answer).
fn best_of_ms<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
        out = Some(value);
    }
    (best, out.expect("at least one run"))
}

/// Per-kernel timings for the word-parallel partition kernels (PR 9) against
/// the one-row-at-a-time scalar reference that `ATLAS_FORCE_SCALAR=1`
/// selects: `select_ranges` over the integer `age` column, `select_in_groups`
/// over the dictionary `education` column, and the contingency word fold over
/// their region bitmaps. Each figure is the best of `repeats` runs, and the
/// two paths' outputs are asserted bit-identical before anything is reported.
fn smoke_kernels(rows: usize, repeats: usize) -> Json {
    let table = census(rows);
    let sel = table.full_selection();
    let age = table.column("age").expect("census has age");
    let education = table.column("education").expect("census has education");

    // Four equal-width age bins, widened at the top so the maximum lands in
    // the last bin, and the education categories split into two groups.
    let (lo, hi) = age.numeric_min_max(&sel).expect("age is numeric");
    let width = (hi - lo).max(1.0) / 4.0;
    let bounds: Vec<(f64, f64)> = (0..4)
        .map(|k| {
            let upper = if k == 3 {
                hi + 1.0
            } else {
                lo + (k + 1) as f64 * width
            };
            (lo + k as f64 * width, upper)
        })
        .collect();
    let mut groups: Vec<Vec<String>> = vec![Vec::new(), Vec::new()];
    for (i, (name, _)) in education
        .categories_by_frequency(&sel)
        .into_iter()
        .enumerate()
    {
        groups[i % 2].push(name);
    }

    let (ranges_ms, ranges) = best_of_ms(repeats, || {
        with_kernel_path(KernelPath::WordParallel, || {
            age.select_ranges(&sel, &bounds)
        })
    });
    let (ranges_scalar_ms, ranges_ref) = best_of_ms(repeats, || {
        with_kernel_path(KernelPath::Scalar, || age.select_ranges(&sel, &bounds))
    });
    assert_eq!(ranges, ranges_ref, "select_ranges must be bit-identical");

    let (groups_ms, grouped) = best_of_ms(repeats, || {
        with_kernel_path(KernelPath::WordParallel, || {
            education.select_in_groups(&sel, &groups)
        })
    });
    let (groups_scalar_ms, grouped_ref) = best_of_ms(repeats, || {
        with_kernel_path(KernelPath::Scalar, || {
            education.select_in_groups(&sel, &groups)
        })
    });
    assert_eq!(
        grouped, grouped_ref,
        "select_in_groups must be bit-identical"
    );

    let ra: Vec<&Bitmap> = ranges.iter().collect();
    let rb: Vec<&Bitmap> = grouped.iter().collect();
    let (contingency_ms, fold) = best_of_ms(repeats, || {
        with_kernel_path(KernelPath::WordParallel, || {
            ContingencyTable::from_selections(&ra, &rb)
        })
    });
    let (contingency_scalar_ms, fold_ref) = best_of_ms(repeats, || {
        with_kernel_path(KernelPath::Scalar, || {
            ContingencyTable::from_selections(&ra, &rb)
        })
    });
    assert_eq!(fold, fold_ref, "contingency fold must be bit-identical");

    let speedup =
        |word: f64, scalar: f64| Json::Num((scalar / word.max(1e-9) * 10.0).round() / 10.0);
    Json::object(vec![
        ("rows", Json::from(rows)),
        ("select_ranges_ms", ms(ranges_ms)),
        ("select_ranges_scalar_ms", ms(ranges_scalar_ms)),
        (
            "select_ranges_speedup",
            speedup(ranges_ms, ranges_scalar_ms),
        ),
        ("select_in_groups_ms", ms(groups_ms)),
        ("select_in_groups_scalar_ms", ms(groups_scalar_ms)),
        (
            "select_in_groups_speedup",
            speedup(groups_ms, groups_scalar_ms),
        ),
        ("contingency_ms", ms(contingency_ms)),
        ("contingency_scalar_ms", ms(contingency_scalar_ms)),
        (
            "contingency_speedup",
            speedup(contingency_ms, contingency_scalar_ms),
        ),
    ])
}

/// Segmented-storage smoke: streaming CSV ingest throughput. A census CSV is
/// rendered once in memory, then parsed through the streaming reader (rows
/// flow straight into the segment-sealing builder, so peak parser memory is
/// one segment + the inference prefix, not the file).
fn smoke_ingest(rows: usize) -> Json {
    let table = census(rows);
    let mut csv = Vec::new();
    atlas_columnar::csv::write_csv(&table, &mut csv).expect("csv renders");
    let opts = atlas_columnar::csv::CsvOptions::default();

    let start = Instant::now();
    let streamed =
        atlas_columnar::csv::read_csv("census", csv.as_slice(), None, &opts).expect("csv parses");
    let read_ms = start.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(streamed.num_rows(), rows);

    let rows_per_s = rows as f64 / (read_ms / 1000.0);
    Json::object(vec![
        ("rows", Json::from(rows)),
        ("csv_bytes", Json::from(csv.len())),
        (
            "segment_rows",
            Json::from(atlas_columnar::default_segment_rows()),
        ),
        ("segments", Json::from(streamed.num_segments())),
        ("read_ms", ms(read_ms)),
        ("rows_per_s", Json::Num(rows_per_s.round())),
    ])
}

/// Segmented-storage smoke: preparing the engine for newly arrived data by
/// `Atlas::append` (profile only the new segment, merge) vs a from-scratch
/// rebuild over the extended table — the incremental-ingest acceptance
/// number. The two engines' answers are asserted identical at runtime.
fn smoke_append(rows: usize) -> Json {
    let table = census(rows);
    let query = ConjunctiveQuery::all("census");
    assert!(
        table.num_segments() >= 2,
        "append smoke needs a multi-segment table (segment_rows {} >= rows {rows}?)",
        atlas_columnar::default_segment_rows(),
    );
    let (head, tail) = table.segments().split_at(table.num_segments() - 1);
    let prefix = Arc::new(
        atlas_columnar::Table::from_segments("census", table.schema().clone(), head.to_vec())
            .expect("prefix table"),
    );
    let prepared = Atlas::builder(prefix)
        .config(AtlasConfig::fast())
        .build()
        .expect("valid config");

    let start = Instant::now();
    let appended = prepared
        .append(Arc::clone(&tail[0]))
        .expect("append succeeds");
    let append_ms = start.elapsed().as_secs_f64() * 1000.0;

    let start = Instant::now();
    let rebuilt = Atlas::builder(Arc::clone(&table))
        .config(AtlasConfig::fast())
        .build()
        .expect("valid config");
    let rebuild_ms = start.elapsed().as_secs_f64() * 1000.0;

    // Incremental preparation must not change the answer.
    let a = appended.explore(&query).expect("exploration succeeds");
    let b = rebuilt.explore(&query).expect("exploration succeeds");
    assert_eq!(a.num_maps(), b.num_maps());
    for (ra, rb) in a.maps.iter().zip(b.maps.iter()) {
        assert_eq!(ra.map.source_attributes, rb.map.source_attributes);
        assert_eq!(ra.map.region_counts(), rb.map.region_counts());
        assert_eq!(ra.score.to_bits(), rb.score.to_bits());
    }

    Json::object(vec![
        ("rows", Json::from(rows)),
        ("segments", Json::from(table.num_segments())),
        ("appended_rows", Json::from(tail[0].num_rows())),
        ("append_prepare_ms", ms(append_ms)),
        ("rebuild_prepare_ms", ms(rebuild_ms)),
        (
            "speedup",
            Json::Num((rebuild_ms / append_ms.max(1e-9) * 10.0).round() / 10.0),
        ),
    ])
}

/// Pull the first `"key": <number>` out of a parsed JSON report, walking
/// values depth-first in document order (the reports put the headline
/// 20k-row figure first).
fn find_number(value: &Json, key: &str) -> Option<f64> {
    match value {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                if k == key {
                    if let Some(x) = v.num() {
                        return Some(x);
                    }
                }
                if let Some(x) = find_number(v, key) {
                    return Some(x);
                }
            }
            None
        }
        Json::Arr(items) => items.iter().find_map(|v| find_number(v, key)),
        _ => None,
    }
}

/// Print a phase-by-phase delta table against the most recent previous
/// `BENCH_*.json`, so CI logs show the perf trajectory at a glance.
fn print_phase_deltas(previous_path: &str, previous: &Json, current: &Json) {
    println!("\nphase deltas vs {previous_path} (headline 20k-row point):");
    println!("| phase | previous ms | current ms | delta |");
    println!("|-------|-------------|------------|-------|");
    for phase in GATED_PHASES {
        match (find_number(previous, phase), find_number(current, phase)) {
            (Some(before), Some(after)) if before > 0.0 => {
                let delta = (after - before) / before * 100.0;
                println!("| {phase} | {before:.3} | {after:.3} | {delta:+.1}% |");
            }
            (Some(before), Some(after)) => {
                println!("| {phase} | {before:.3} | {after:.3} | — |");
            }
            _ => println!("| {phase} | — | — | — |"),
        }
    }
}

/// The CI perf-trajectory smoke run: the prepared-engine census workload at
/// three scales (20k, 100k and 1M rows), each explored both sequentially
/// (`parallelism = 1`) and with the default parallelism, plus the
/// segmented-storage numbers — streaming CSV ingest throughput and
/// append-vs-rebuild preparation — plus per-kernel partition timings
/// (word-parallel vs the `ATLAS_FORCE_SCALAR` reference, 1M-row point
/// first so the gate reads it) — reported as JSON. When an earlier
/// `BENCH_*.json` is present, a phase-by-phase delta table is printed so CI
/// logs show the trajectory. With `gate`, any phase above the 1 ms noise
/// floor that regressed by more than the given percentage fails the run.
fn bench_smoke(path: &str, gate: Option<f64>) {
    let scale_points = [(20_000usize, 5usize), (100_000, 5), (1_000_000, 2)];
    let scales: Vec<Json> = scale_points
        .iter()
        .map(|&(rows, repeats)| smoke_scale_point(rows, repeats))
        .collect();
    let ingest = smoke_ingest(200_000);
    let append = smoke_append(1_000_000);
    // 1M-row point first: `find_number` takes the first occurrence, so the
    // delta table and the gate track the large-scale kernel figures.
    let kernels = Json::array(vec![smoke_kernels(1_000_000, 5), smoke_kernels(100_000, 7)]);

    let report = Json::object(vec![
        ("experiment", Json::from("bench_smoke")),
        ("pr", Json::from(9usize)),
        ("dataset", Json::from("census")),
        ("config", Json::from("fast")),
        (
            "parallelism",
            Json::from(AtlasConfig::default().parallelism),
        ),
        (
            "segment_rows",
            Json::from(atlas_columnar::default_segment_rows()),
        ),
        ("scale", Json::array(scales)),
        ("kernels", kernels),
        ("ingest", ingest),
        ("append", append),
    ]);
    let previous = write_report_with_deltas(path, &report);
    if let (Some(limit_pct), Some((previous_path, previous_report))) = (gate, previous) {
        let regressions = phase_regressions(&previous_report, &report, limit_pct);
        if !regressions.is_empty() {
            eprintln!("\nbench gate FAILED vs {previous_path} (limit {limit_pct:+.0}%):");
            for line in &regressions {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        println!("\nbench gate passed vs {previous_path} (limit {limit_pct:+.0}%)");
    }
}

/// The phases the delta table and the regression gate look at — the headline
/// (first-found) figure for each: the 20k-row point for the explore phases,
/// the 1M-row point for the per-kernel partition timings (their report
/// section lists 1M first).
const GATED_PHASES: [&str; 10] = [
    "query_ms",
    "candidates_ms",
    "clustering_ms",
    "merge_ms",
    "rank_ms",
    "total_ms",
    "build_ms",
    "select_ranges_ms",
    "select_in_groups_ms",
    "contingency_ms",
];

/// Noise floor for the regression gate: phases faster than this in the
/// previous report are too jittery for a percentage comparison to mean
/// anything on shared CI hardware.
const GATE_NOISE_FLOOR_MS: f64 = 1.0;

/// Phases that regressed by more than `limit_pct` percent, as printable
/// lines. Sub-floor phases are skipped.
fn phase_regressions(previous: &Json, current: &Json, limit_pct: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for phase in GATED_PHASES {
        if let (Some(before), Some(after)) =
            (find_number(previous, phase), find_number(current, phase))
        {
            if before < GATE_NOISE_FLOOR_MS {
                continue;
            }
            let delta = (after - before) / before * 100.0;
            if delta > limit_pct {
                failures.push(format!(
                    "{phase}: {before:.3} ms -> {after:.3} ms ({delta:+.1}%)"
                ));
            }
        }
    }
    failures
}

/// The most recent committed `BENCH_*.json` whose `"experiment"` field
/// matches — so a bench-smoke report only ever deltas (and gates) against an
/// earlier bench-smoke report, never a load- or dist-smoke one. The report's
/// own basename is excluded so a run never compares against its own output.
fn previous_report(own_name: &str, experiment: &str) -> Option<(String, Json)> {
    let mut names: Vec<String> = std::fs::read_dir(".")
        .ok()
        .into_iter()
        .flatten()
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.file_name().to_string_lossy().into_owned())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json") && *name != own_name)
        .collect();
    // Newest first: length-before-lexicographic so BENCH_PR10.json outranks
    // BENCH_PR9.json once PR numbers reach double digits.
    names.sort_by_key(|name| std::cmp::Reverse((name.len(), name.clone())));
    names.into_iter().find_map(|name| {
        let parsed = std::fs::read_to_string(&name)
            .ok()
            .and_then(|text| atlas_serve::wire::parse(&text).ok())?;
        (parsed.get("experiment").and_then(Json::str) == Some(experiment)).then_some((name, parsed))
    })
}

/// Write a report, print it, and print the phase-delta table against the
/// most recent previous same-experiment `BENCH_*.json`. Returns the previous
/// report used (if any) so callers can gate against it.
fn write_report_with_deltas(path: &str, report: &Json) -> Option<(String, Json)> {
    let own_name = std::path::Path::new(path)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    let experiment = report.get("experiment").and_then(Json::str).unwrap_or("");
    let previous = previous_report(&own_name, experiment);

    let text = report.pretty();
    std::fs::write(path, &text).expect("bench report is writable");
    println!("wrote {path}:");
    print!("{text}");
    if let Some((previous_path, previous_report)) = &previous {
        print_phase_deltas(previous_path, previous_report, report);
    }
    previous
}

/// Boot a load-test server: the 100k census behind `server_threads` workers,
/// engine parallelism pinned to 1 (so worker threads are the only scaling
/// dimension) and the shared result cache disabled (so every request does
/// real engine work — the honest configuration for a throughput number).
fn boot_load_server(rows: usize, server_threads: usize) -> ServerHandle {
    let mut registry = Registry::new();
    registry
        .add_table(
            "census",
            census(rows),
            DatasetOptions {
                config: AtlasConfig::fast().with_parallelism(1),
                cache_capacity: 0,
            },
        )
        .expect("census registers");
    let config = ServeConfig {
        queue_depth: 512,
        ..ServeConfig::default()
    }
    .with_threads(server_threads);
    Server::start(registry, config).expect("server binds an ephemeral port")
}

/// The query mix of the load generator: distinct conjunctive range scans so
/// requests exercise the engine instead of replaying one hot result.
fn load_query(i: usize) -> String {
    let k = i % 16;
    format!(
        "SELECT * FROM census WHERE age BETWEEN {} AND {}",
        17 + k,
        52 + 2 * k
    )
}

/// Failed requests of one load run, by kind: read/connect timeouts,
/// admission-control refusals (503), and everything else. `retry_after_honored`
/// counts the 503s whose `Retry-After` hint the generator actually waited on.
#[derive(Default)]
struct ErrorTally {
    timeouts: usize,
    overloaded_503: usize,
    other: usize,
    retry_after_honored: usize,
}

impl ErrorTally {
    fn total(&self) -> usize {
        self.timeouts + self.overloaded_503 + self.other
    }

    fn merge(&mut self, other: &ErrorTally) {
        self.timeouts += other.timeouts;
        self.overloaded_503 += other.overloaded_503;
        self.other += other.other;
        self.retry_after_honored += other.retry_after_honored;
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("timeouts", Json::from(self.timeouts)),
            ("overloaded_503", Json::from(self.overloaded_503)),
            ("other", Json::from(self.other)),
        ])
    }
}

/// One closed-loop measurement: `clients` threads, each with its own session,
/// issuing explores back-to-back for `duration`. Returns the point as JSON
/// plus the achieved requests/second.
fn load_point(
    addr: std::net::SocketAddr,
    server_threads: usize,
    clients: usize,
    duration: Duration,
) -> (Json, f64) {
    // Create every session (and warm up) serially *before* the barrier
    // exists: a panic past a barrier rendezvous would deadlock the other
    // client threads; failing here fails the run immediately instead.
    let sessions: Vec<String> = (0..clients)
        .map(|c| {
            let client = Client::new(addr);
            let token = client.create_session("census").expect("session opens");
            for i in 0..2 {
                let _ = client.post_text(&format!("/sessions/{token}/explore"), &load_query(c + i));
            }
            token
        })
        .collect();
    let barrier = std::sync::Barrier::new(clients);
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut max_elapsed = 0.0f64;
    let mut tally = ErrorTally::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter()
            .enumerate()
            .map(|(c, token)| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let client = Client::new(addr);
                    let explore_path = format!("/sessions/{token}/explore");
                    barrier.wait();
                    let started = Instant::now();
                    let mut latencies = Vec::new();
                    let mut tally = ErrorTally::default();
                    let mut i = c; // desynchronise the query mix across clients
                    while started.elapsed() < duration {
                        let sent = Instant::now();
                        match client.post_text(&explore_path, &load_query(i)) {
                            Ok(reply) if reply.status == 200 => {
                                latencies.push(sent.elapsed().as_secs_f64() * 1000.0);
                            }
                            Ok(reply) if reply.status == 503 => {
                                tally.overloaded_503 += 1;
                                let hint = reply
                                    .headers
                                    .iter()
                                    .find(|(name, _)| name == "retry-after")
                                    .and_then(|(_, value)| value.parse::<u64>().ok());
                                if let Some(seconds) = hint {
                                    // Honour the hint, capped so a short smoke
                                    // run cannot stall on a long back-off.
                                    let wait = Duration::from_secs(seconds)
                                        .min(duration.saturating_sub(started.elapsed()))
                                        .min(Duration::from_millis(250));
                                    std::thread::sleep(wait);
                                    tally.retry_after_honored += 1;
                                }
                            }
                            Ok(_) => tally.other += 1,
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                                ) =>
                            {
                                tally.timeouts += 1;
                            }
                            Err(_) => tally.other += 1,
                        }
                        i += 1;
                    }
                    (latencies, started.elapsed().as_secs_f64(), tally)
                })
            })
            .collect();
        for handle in handles {
            let (latencies, elapsed, thread_tally) = handle.join().expect("client thread");
            all_latencies.extend(latencies);
            max_elapsed = max_elapsed.max(elapsed);
            tally.merge(&thread_tally);
        }
    });
    let requests = all_latencies.len();
    let rps = requests as f64 / max_elapsed.max(1e-9);
    let p = |q: f64| quantile(&all_latencies, q).map(ms).unwrap_or(Json::Null);
    let point = Json::object(vec![
        ("server_threads", Json::from(server_threads)),
        ("clients", Json::from(clients)),
        ("requests", Json::from(requests)),
        ("errors", Json::from(tally.total())),
        ("error_taxonomy", tally.to_json()),
        ("retry_after_honored", Json::from(tally.retry_after_honored)),
        ("elapsed_ms", ms(max_elapsed * 1000.0)),
        ("rps", Json::Num((rps * 10.0).round() / 10.0)),
        ("p50_ms", p(0.50)),
        ("p95_ms", p(0.95)),
        ("p99_ms", p(0.99)),
    ]);
    (point, rps)
}

/// The serving-throughput smoke run: boot `atlas-serve` over the 100k-row
/// census and drive it with a closed-loop generator at 1, 4 and N client
/// threads against 1 and N server threads, recording throughput and
/// p50/p95/p99 latency per point, plus the cold-start time (dataset
/// generation + engine preparation + bind until `/healthz` answers). The
/// thread-scaling headline is honest about the hardware: `cores` is recorded
/// next to it (a 1-core container cannot speed up CPU-bound explores by
/// adding workers).
fn load_smoke(path: &str) {
    const ROWS: usize = 100_000;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads = ServeConfig::default_threads().max(4);
    let duration = Duration::from_millis(1500);

    // Cold start: everything between "nothing is running" and a green
    // health check.
    let cold_started = Instant::now();
    let handle = boot_load_server(ROWS, max_threads);
    let client = Client::new(handle.addr());
    loop {
        if let Ok(reply) = client.get("/healthz") {
            if reply.status == 200 {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let cold_start_ms = cold_started.elapsed().as_secs_f64() * 1000.0;
    handle.shutdown();

    let mut client_counts = vec![1usize, 4, max_threads];
    client_counts.dedup();
    let mut points = Vec::new();
    let rps_at = |server_threads: usize, points: &mut Vec<Json>| -> f64 {
        let handle = boot_load_server(ROWS, server_threads);
        let mut best = 0.0f64;
        for &clients in &client_counts {
            let (point, rps) = load_point(handle.addr(), server_threads, clients, duration);
            println!(
                "load-smoke: {} server thread(s), {clients} client(s): {}",
                server_threads,
                point.encode()
            );
            points.push(point);
            best = best.max(rps);
        }
        handle.shutdown();
        best
    };
    let rps_one = rps_at(1, &mut points);
    let rps_many = rps_at(max_threads, &mut points);

    let report = Json::object(vec![
        ("experiment", Json::from("load_smoke")),
        ("pr", Json::from(5usize)),
        ("dataset", Json::from("census")),
        ("rows", Json::from(ROWS)),
        (
            "config",
            Json::from("fast, engine parallelism 1, result cache off"),
        ),
        ("cores", Json::from(cores)),
        ("cold_start_ms", ms(cold_start_ms)),
        (
            "scaling",
            Json::object(vec![
                ("server_threads", Json::from(max_threads)),
                (
                    "rps_1_server_thread",
                    Json::Num((rps_one * 10.0).round() / 10.0),
                ),
                (
                    "rps_n_server_threads",
                    Json::Num((rps_many * 10.0).round() / 10.0),
                ),
                (
                    "speedup",
                    Json::Num((rps_many / rps_one.max(1e-9) * 100.0).round() / 100.0),
                ),
            ]),
        ),
        ("points", Json::array(points)),
        // The explore-phase trajectory keeps the delta table comparable with
        // the earlier BENCH_*.json reports (headline 20k point first).
        (
            "scale",
            Json::array(vec![
                smoke_scale_point(20_000, 3),
                smoke_scale_point(100_000, 3),
            ]),
        ),
    ]);
    write_report_with_deltas(path, &report);
}

/// Assert two explorations returned the same ranked maps bit-for-bit:
/// score bits, source attributes, region SQL and region counts.
fn assert_bit_identical(a: &atlas_core::MapResult, b: &atlas_core::MapResult) {
    assert_eq!(a.num_maps(), b.num_maps(), "map counts differ");
    assert_eq!(a.working_set_size, b.working_set_size);
    for (ra, rb) in a.maps.iter().zip(b.maps.iter()) {
        assert_eq!(ra.score.to_bits(), rb.score.to_bits(), "score bits differ");
        assert_eq!(ra.map.source_attributes, rb.map.source_attributes);
        assert_eq!(ra.map.num_regions(), rb.map.num_regions());
        for (qa, qb) in ra.map.regions.iter().zip(rb.map.regions.iter()) {
            assert_eq!(
                atlas_query::to_sql(&qa.query),
                atlas_query::to_sql(&qb.query)
            );
            assert_eq!(qa.count(), qb.count());
        }
    }
}

/// The distributed scatter-gather smoke run: four in-process shard servers
/// sharing one 1M-row census table, a coordinator exploring through
/// N ∈ {1, 2, 4} of them, every distributed answer checked **bit-identical**
/// (score bits, region SQL, counts) against the in-process engine before
/// its wall time is recorded. The fast preset (equi-width cuts, product
/// merge) keeps the candidate stage statistics-only, which is the intended
/// scatter shape: summaries and contingency counts travel, values do not.
fn dist_smoke(path: &str) {
    const ROWS: usize = 1_000_000;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let config = AtlasConfig::fast().with_parallelism(cores.min(4));
    let table = census(ROWS);
    let query = ConjunctiveQuery::all("census");

    let prepare_started = Instant::now();
    let reference = Atlas::new(Arc::clone(&table), config.clone()).expect("engine builds");
    let prepare_ms = prepare_started.elapsed().as_secs_f64() * 1000.0;
    let local_started = Instant::now();
    let local = reference.explore(&query).expect("local explore");
    let local_ms = local_started.elapsed().as_secs_f64() * 1000.0;

    // Four shard servers booted once over the shared table; each point
    // connects a coordinator to the first N of them.
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..4 {
        let mut registry = Registry::new();
        registry
            .add_table(
                "census",
                Arc::clone(&table),
                DatasetOptions {
                    config: config.clone(),
                    cache_capacity: 0,
                },
            )
            .expect("census registers");
        let handle = Server::start(registry, ServeConfig::default().with_threads(2))
            .expect("server binds an ephemeral port");
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }

    // The resilience counters recorded next to every point's latency: how
    // many shard calls were retried, hedged (and whether the hedge won),
    // refused by an open circuit, or cut short by a deadline.
    let taxonomy = |coordinator: &Coordinator| {
        let metrics = coordinator.metrics();
        Json::object(vec![
            ("retries", Json::from(metrics.retries())),
            ("hedges_launched", Json::from(metrics.hedges_launched())),
            ("hedges_won", Json::from(metrics.hedges_won())),
            (
                "skipped_open_circuit",
                Json::from(metrics.skipped_open_circuit()),
            ),
            ("deadline_exceeded", Json::from(metrics.deadline_exceeded())),
            (
                "circuits_opened",
                Json::from(
                    coordinator
                        .circuit_states()
                        .iter()
                        .map(|(_, _, opened)| *opened as usize)
                        .sum::<usize>(),
                ),
            ),
        ])
    };

    let mut points = Vec::new();
    for shards in [1usize, 2, 4] {
        let coordinator = Coordinator::connect(
            &addrs[..shards],
            "census",
            config.clone(),
            Duration::from_secs(120),
        )
        .expect("coordinator connects");
        let started = Instant::now();
        let result = coordinator.explore(&query).expect("distributed explore");
        let explore_ms = started.elapsed().as_secs_f64() * 1000.0;
        assert_bit_identical(&local, &result);
        println!(
            "dist-smoke: {shards} shard(s): {explore_ms:.0} ms \
             (local {local_ms:.0} ms, fan-out {})",
            coordinator.metrics().fan_out()
        );
        points.push(Json::object(vec![
            ("shards", Json::from(shards)),
            ("explore_ms", ms(explore_ms)),
            ("fan_out", Json::from(coordinator.metrics().fan_out())),
            ("error_taxonomy", taxonomy(&coordinator)),
        ]));
    }

    // One faulted point: two transient 500s armed on the first shard; the
    // retry policy rides them out and the answer must stay bit-identical.
    let options = CoordinatorOptions {
        shard_timeout: Duration::from_secs(120),
        retry: RetryPolicy::default().with_max_attempts(3),
        ..CoordinatorOptions::default()
    };
    let coordinator = Coordinator::connect_with(&addrs, "census", config.clone(), options)
        .expect("coordinator connects");
    let inject = Client::new(handles[0].addr());
    let plan = Json::object(vec![(
        "plan",
        Json::array(vec![
            Json::object(vec![
                ("fault", Json::from("error")),
                ("status", Json::from(500usize)),
            ]),
            Json::object(vec![
                ("fault", Json::from("error")),
                ("status", Json::from(500usize)),
            ]),
        ]),
    )]);
    let armed = inject.post_json("/shard/inject", &plan).expect("plan arms");
    assert_eq!(armed.status, 200, "fault plan must arm");
    let started = Instant::now();
    let result = coordinator.explore(&query).expect("faulted explore");
    let explore_ms = started.elapsed().as_secs_f64() * 1000.0;
    assert_bit_identical(&local, &result);
    let retries = coordinator.metrics().retries();
    assert!(
        retries >= 2,
        "both injected 500s must be retried, saw {retries}"
    );
    println!("dist-smoke: 4 shard(s), 2 injected 500s: {explore_ms:.0} ms ({retries} retries)");
    points.push(Json::object(vec![
        ("shards", Json::from(4usize)),
        (
            "injected_faults",
            Json::from("2 transient 500s on one shard"),
        ),
        ("explore_ms", ms(explore_ms)),
        ("fan_out", Json::from(coordinator.metrics().fan_out())),
        ("error_taxonomy", taxonomy(&coordinator)),
    ]));

    for handle in handles {
        handle.shutdown();
    }

    let report = Json::object(vec![
        ("experiment", Json::from("dist_smoke")),
        ("pr", Json::from(8usize)),
        ("dataset", Json::from("census")),
        ("rows", Json::from(ROWS)),
        (
            "config",
            Json::from("fast (equi-width cuts, product merge), shard servers in-process"),
        ),
        ("cores", Json::from(cores)),
        ("segments", Json::from(table.segments().len())),
        ("prepare_ms", ms(prepare_ms)),
        ("local_explore_ms", ms(local_ms)),
        ("bit_identical", Json::from(true)),
        ("points", Json::array(points)),
    ]);
    write_report_with_deltas(path, &report);
}

/// The trace-smoke harness: a two-shard distributed explore with tracing on,
/// the reassembled span tree validated, and the spans exported as Chrome
/// trace-event JSON (open in Perfetto or `chrome://tracing`).
fn trace_smoke(path: &str) {
    // Four default segments, so both shards hold work.
    const ROWS: usize = 200_000;
    atlas_obs::set_enabled(true);
    let config = AtlasConfig::fast().with_parallelism(2);
    let table = census(ROWS);
    let query = ConjunctiveQuery::all("census");

    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let mut registry = Registry::new();
        registry
            .add_table(
                "census",
                Arc::clone(&table),
                DatasetOptions {
                    config: config.clone(),
                    cache_capacity: 0,
                },
            )
            .expect("census registers");
        let handle = Server::start(registry, ServeConfig::default().with_threads(2))
            .expect("server binds an ephemeral port");
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }
    let coordinator = Coordinator::connect(&addrs, "census", config, Duration::from_secs(60))
        .expect("coordinator connects");

    // Everything before this root (server boot, the metadata probes) is
    // noise; clear the ring so the explore surely fits.
    atlas_obs::tracer().clear();
    let root = atlas_obs::span_root("trace-smoke");
    let trace_id = root
        .context()
        .map(|ctx| ctx.trace_id)
        .expect("tracing is enabled");
    let result = coordinator.explore(&query).expect("distributed explore");
    drop(root);
    assert!(!result.maps.is_empty(), "the explore must produce maps");
    for handle in handles {
        handle.shutdown();
    }

    let spans = atlas_obs::tracer().trace(trace_id);
    assert!(!spans.is_empty(), "the trace must hold spans");

    // Every pipeline phase must appear exactly where the issue pins it.
    for phase in [
        "phase.query",
        "phase.candidates",
        "phase.clustering",
        "phase.merge",
        "phase.rank",
    ] {
        assert!(
            spans.iter().any(|s| s.name == phase),
            "span {phase} missing from the reassembled trace"
        );
    }
    let kernel_events = spans.iter().filter(|s| s.name == "kernel.dispatch").count();
    assert!(
        kernel_events > 0,
        "no kernel-path event made it into the trace"
    );
    for shard in ["0", "1"] {
        assert!(
            spans
                .iter()
                .any(|s| s.name == "shard.call" && s.attr("shard") == Some(shard)),
            "no shard.call span for shard {shard}"
        );
    }

    // Structural validation: one root, every parent present and enclosing
    // its children (no unclosed spans can exist — spans record on close).
    let by_id: std::collections::HashMap<u64, &atlas_obs::SpanRecord> =
        spans.iter().map(|s| (s.span_id, s)).collect();
    let mut roots = 0usize;
    for span in &spans {
        match by_id.get(&span.parent_id) {
            None => roots += 1,
            Some(parent) => {
                assert!(
                    parent.start_us <= span.start_us && span.end_us() <= parent.end_us(),
                    "span {} [{}..{}] escapes its parent {} [{}..{}]",
                    span.name,
                    span.start_us,
                    span.end_us(),
                    parent.name,
                    parent.start_us,
                    parent.end_us()
                );
            }
        }
    }
    assert_eq!(roots, 1, "the trace must reassemble into a single tree");

    // The Chrome export must be well-formed JSON with one complete ("ph":
    // "X") event per span.
    let chrome = atlas_obs::chrome_trace_json(&spans);
    let parsed = atlas_serve::wire::parse(&chrome).expect("chrome trace JSON parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::items)
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len(), "one trace event per span");
    for event in events {
        assert_eq!(event.get("ph").and_then(Json::str), Some("X"));
        assert!(event.get("name").and_then(Json::str).is_some());
        assert!(event.get("ts").is_some() && event.get("dur").is_some());
    }
    std::fs::write(path, &chrome).expect("trace file writes");
    println!(
        "trace-smoke: {} spans ({} kernel events) in one tree; chrome trace written to {path}",
        spans.len(),
        kernel_events
    );
}
