//! Descriptive statistics over a slice of numbers.

/// Summary statistics of a numeric sample.
///
/// All quantities are computed in a single pass except the quantiles, which
/// sort a copy of the data. `Describe` is used by the explorer to annotate
/// regions ("why is this region interesting?") and by the benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct Describe {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Population variance.
    pub variance: f64,
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
}

impl Describe {
    /// Compute descriptive statistics of `values`.
    ///
    /// Returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Describe> {
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q = |p: f64| -> f64 {
            let pos = p * (count - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let frac = pos - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            }
        };
        Some(Describe {
            count,
            mean,
            std_dev: variance.sqrt(),
            variance,
            min: sorted[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: sorted[count - 1],
        })
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Value range (max - min).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Describe::of(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let d = Describe::of(&[7.0]).unwrap();
        assert_eq!(d.count, 1);
        assert_eq!(d.mean, 7.0);
        assert_eq!(d.std_dev, 0.0);
        assert_eq!(d.min, 7.0);
        assert_eq!(d.max, 7.0);
        assert_eq!(d.median, 7.0);
    }

    #[test]
    fn known_values() {
        let d = Describe::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(d.count, 8);
        assert!((d.mean - 5.0).abs() < 1e-12);
        assert!((d.std_dev - 2.0).abs() < 1e-12);
        assert!((d.variance - 4.0).abs() < 1e-12);
        assert_eq!(d.min, 2.0);
        assert_eq!(d.max, 9.0);
        assert!((d.median - 4.5).abs() < 1e-12);
        assert!((d.range() - 7.0).abs() < 1e-12);
        assert!(d.iqr() > 0.0);
    }

    #[test]
    fn quartiles_interpolate() {
        let d = Describe::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((d.q1 - 1.75).abs() < 1e-12);
        assert!((d.median - 2.5).abs() < 1e-12);
        assert!((d.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let d1 = Describe::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        let d2 = Describe::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(d1, d2);
    }
}
