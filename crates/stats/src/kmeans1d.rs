//! One-dimensional k-means.
//!
//! The paper's alternative cutting strategy splits an attribute "such that the
//! intra-cluster distance is maximized within each partition (as in K-means)"
//! — i.e. homogeneous partitions. For a single dimension Lloyd's algorithm
//! with a deterministic quantile-based initialisation converges quickly and is
//! entirely adequate; the result is returned as sorted split points so the
//! `CUT` primitive can build contiguous range predicates.

/// Result of a 1-D k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans1dResult {
    /// Cluster centroids, sorted ascending.
    pub centroids: Vec<f64>,
    /// Split points between consecutive clusters (midpoints between adjacent
    /// centroids), sorted ascending; `centroids.len() - 1` of them.
    pub splits: Vec<f64>,
    /// Sum of squared distances of every point to its centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Run 1-D k-means with `k` clusters on `values`.
///
/// Returns `None` if `values` is empty or `k == 0`. If the data has fewer
/// distinct values than `k`, fewer clusters are returned.
pub fn kmeans_1d(values: &[f64], k: usize, max_iterations: usize) -> Option<KMeans1dResult> {
    if values.is_empty() || k == 0 {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut distinct = sorted.clone();
    distinct.dedup();
    let k = k.min(distinct.len());
    if k == 1 {
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let inertia = sorted.iter().map(|v| (v - mean).powi(2)).sum();
        return Some(KMeans1dResult {
            centroids: vec![mean],
            splits: Vec::new(),
            inertia,
            iterations: 0,
        });
    }

    // Deterministic initialisation: spread the centroids over the quantiles.
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| {
            let p = (i as f64 + 0.5) / k as f64;
            crate::quantile::quantile_sorted(&sorted, p)
        })
        .collect();
    centroids.dedup();
    // If quantile init collapses (heavy ties), fall back to distinct values.
    while centroids.len() < k {
        let missing = distinct
            .iter()
            .find(|v| !centroids.iter().any(|c| (*c - **v).abs() < f64::EPSILON));
        match missing {
            Some(&v) => {
                centroids.push(v);
                centroids.sort_by(|a, b| a.total_cmp(b));
            }
            None => break,
        }
    }
    let k = centroids.len();

    let mut assignments = vec![0usize; sorted.len()];
    let mut iterations = 0;
    for _ in 0..max_iterations.max(1) {
        iterations += 1;
        // Assignment step: since data and centroids are sorted, assign by
        // nearest centroid with a linear sweep.
        let mut changed = false;
        let mut c_idx = 0usize;
        for (i, &v) in sorted.iter().enumerate() {
            while c_idx + 1 < k && (centroids[c_idx + 1] - v).abs() < (centroids[c_idx] - v).abs() {
                c_idx += 1;
            }
            // The sweep pointer only moves forward; but a point may be closer
            // to an earlier centroid when values decrease — they never do
            // (sorted), so this is safe.
            if assignments[i] != c_idx {
                assignments[i] = c_idx;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (i, &v) in sorted.iter().enumerate() {
            sums[assignments[i]] += v;
            counts[assignments[i]] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            }
        }
        centroids.sort_by(|a, b| a.total_cmp(b));
        if !changed && iterations > 1 {
            break;
        }
    }

    let inertia = sorted
        .iter()
        .zip(assignments.iter())
        .map(|(&v, &a)| (v - centroids[a]).powi(2))
        .sum();
    let splits = centroids.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
    Some(KMeans1dResult {
        centroids,
        splits,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_zero_k() {
        assert!(kmeans_1d(&[], 2, 10).is_none());
        assert!(kmeans_1d(&[1.0], 0, 10).is_none());
    }

    #[test]
    fn single_cluster_returns_mean() {
        let r = kmeans_1d(&[1.0, 2.0, 3.0], 1, 10).unwrap();
        assert_eq!(r.centroids.len(), 1);
        assert!((r.centroids[0] - 2.0).abs() < 1e-12);
        assert!(r.splits.is_empty());
    }

    #[test]
    fn recovers_two_well_separated_clusters() {
        let mut values = Vec::new();
        for i in 0..50 {
            values.push(10.0 + (i % 5) as f64 * 0.1);
            values.push(100.0 + (i % 5) as f64 * 0.1);
        }
        let r = kmeans_1d(&values, 2, 50).unwrap();
        assert_eq!(r.centroids.len(), 2);
        assert!((r.centroids[0] - 10.2).abs() < 0.5);
        assert!((r.centroids[1] - 100.2).abs() < 0.5);
        assert_eq!(r.splits.len(), 1);
        assert!(r.splits[0] > 20.0 && r.splits[0] < 90.0);
        // Both clusters are tight, so inertia is tiny compared to the spread.
        assert!(r.inertia < 10.0);
    }

    #[test]
    fn recovers_three_clusters() {
        let mut values = Vec::new();
        for center in [0.0, 50.0, 200.0] {
            for i in 0..30 {
                values.push(center + (i % 3) as f64);
            }
        }
        let r = kmeans_1d(&values, 3, 100).unwrap();
        assert_eq!(r.centroids.len(), 3);
        assert!(r.centroids[0] < 5.0);
        assert!((r.centroids[1] - 51.0).abs() < 5.0);
        assert!(r.centroids[2] > 195.0);
        assert_eq!(r.splits.len(), 2);
    }

    #[test]
    fn fewer_distinct_values_than_k() {
        let values = vec![1.0, 1.0, 5.0, 5.0];
        let r = kmeans_1d(&values, 4, 20).unwrap();
        assert!(r.centroids.len() <= 2);
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn kmeans_beats_equi_width_on_skewed_data() {
        // A tight cluster plus a distant outlier group: the k-means split
        // isolates the groups, giving lower inertia than the midpoint split.
        let mut values: Vec<f64> = (0..95).map(|i| i as f64 * 0.01).collect();
        values.extend((0..5).map(|i| 1000.0 + i as f64));
        let r = kmeans_1d(&values, 2, 50).unwrap();
        let split = r.splits[0];
        // Equi-width midpoint would be ~502; k-means should cut well below.
        assert!(split < 900.0);
        let left: Vec<f64> = values.iter().cloned().filter(|&v| v <= split).collect();
        let right: Vec<f64> = values.iter().cloned().filter(|&v| v > split).collect();
        assert_eq!(left.len(), 95);
        assert_eq!(right.len(), 5);
    }

    #[test]
    fn splits_are_sorted_and_between_centroids() {
        let values: Vec<f64> = (0..200).map(|i| (i as f64 * 7.3) % 100.0).collect();
        let r = kmeans_1d(&values, 4, 50).unwrap();
        for w in r.splits.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for (i, s) in r.splits.iter().enumerate() {
            assert!(*s >= r.centroids[i] && *s <= r.centroids[i + 1]);
        }
    }
}
