//! Contingency tables between two discrete labelings.
//!
//! A candidate map assigns every tuple of the working set to one of its
//! regions, i.e. it defines a discrete random variable (Definition 2 of the
//! paper). The dependency between two maps is computed from the contingency
//! table of their two label vectors — or, much faster, directly from the
//! region selection bitmaps via [`ContingencyTable::from_selections`], which
//! never materialises a label per row.

use atlas_columnar::Bitmap;

/// A dense `r × c` contingency table between two label vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyTable {
    rows: usize,
    cols: usize,
    counts: Vec<u64>,
    total: u64,
}

impl ContingencyTable {
    /// Build a contingency table from two equally long label vectors.
    ///
    /// Labels must be dense indices (`0..rows`, `0..cols`); `rows`/`cols` are
    /// the number of categories of each labeling. Pairs where either label is
    /// `>= rows`/`>= cols` are ignored (they represent rows that fall outside
    /// the map, e.g. NULLs).
    ///
    /// # Panics
    /// Panics if the label vectors have different lengths.
    pub fn from_labels(a: &[u32], b: &[u32], rows: usize, cols: usize) -> Self {
        assert_eq!(a.len(), b.len(), "label vectors must have equal length");
        let mut counts = vec![0u64; rows * cols];
        let mut total = 0u64;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let (x, y) = (x as usize, y as usize);
            if x < rows && y < cols {
                counts[x * cols + y] += 1;
                total += 1;
            }
        }
        ContingencyTable {
            rows,
            cols,
            counts,
            total,
        }
    }

    /// Build a contingency table directly from per-category selection
    /// bitmaps: cell `(i, j)` is the population of `rows[i] ∩ cols[j]`.
    ///
    /// This is the fused columnar form of
    /// [`ContingencyTable::from_labels`]: for two partitions given as region
    /// bitmaps over the same row range it produces the **same table** (rows
    /// outside every region of either side are ignored), but the cost is
    /// `O(r·c·words)` word-level popcounts instead of a per-row label pass —
    /// no `Vec<u32>` label vector, no `Vec<usize>` index vector.
    ///
    /// The bitmaps of each side must be pairwise disjoint (they are for every
    /// map produced by `CUT` and the merge operators); overlapping bitmaps
    /// would double-count rows.
    ///
    /// The default fold is word-level: each cell is one streaming
    /// [`Bitmap::intersection_count`] pass (AND + popcount over the word
    /// arrays, 64 rows per step — the layout a compiler turns into wide
    /// vector popcounts). `ATLAS_FORCE_SCALAR=1` routes through the per-row
    /// reference instead, which tests every `(row, region-pair)` combination
    /// one bit at a time; both sum the same indicator values, so the table
    /// is identical.
    ///
    /// # Panics
    /// Panics if the bitmaps do not all range over the same number of rows.
    pub fn from_selections(rows: &[&Bitmap], cols: &[&Bitmap]) -> Self {
        let r = rows.len();
        let c = cols.len();
        let mut counts = vec![0u64; r * c];
        let mut total = 0u64;
        if atlas_columnar::force_scalar() {
            if r > 0 && c > 0 {
                let len = rows[0].len();
                for bm in rows.iter().chain(cols.iter()) {
                    assert_eq!(bm.len(), len, "bitmap length mismatch");
                }
                for k in 0..len {
                    for (i, row) in rows.iter().enumerate() {
                        if !row.get(k) {
                            continue;
                        }
                        for (j, col) in cols.iter().enumerate() {
                            if col.get(k) {
                                counts[i * c + j] += 1;
                                total += 1;
                            }
                        }
                    }
                }
            }
        } else {
            for (i, row) in rows.iter().enumerate() {
                for (j, col) in cols.iter().enumerate() {
                    let n = row.intersection_count(col) as u64;
                    counts[i * c + j] = n;
                    total += n;
                }
            }
        }
        ContingencyTable {
            rows: r,
            cols: c,
            counts,
            total,
        }
    }

    /// Build a contingency table from a prebuilt row-major `rows × cols`
    /// count matrix (the total is derived).
    ///
    /// This is the gather half of a distributed contingency computation:
    /// per-shard partial tables over disjoint row ranges sum cell-wise into
    /// exactly the counts [`ContingencyTable::from_selections`] computes over
    /// the whole table (integer addition is exact), so the entropies — and
    /// every distance derived from them — come out bit-identical.
    ///
    /// # Panics
    /// Panics if `counts.len() != rows * cols`.
    pub fn from_counts(rows: usize, cols: usize, counts: Vec<u64>) -> Self {
        assert_eq!(
            counts.len(),
            rows * cols,
            "count matrix must be rows × cols"
        );
        let total = counts.iter().sum();
        ContingencyTable {
            rows,
            cols,
            counts,
            total,
        }
    }

    /// The row-major cell counts (`rows × cols` values).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of row categories.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of column categories.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Total number of counted pairs.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The count in cell `(i, j)`.
    pub fn count(&self, i: usize, j: usize) -> u64 {
        self.counts[i * self.cols + j]
    }

    /// Row marginals (one per row category).
    pub fn row_marginals(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.rows];
        for (i, row_total) in out.iter_mut().enumerate() {
            for j in 0..self.cols {
                *row_total += self.count(i, j);
            }
        }
        out
    }

    /// Column marginals (one per column category).
    pub fn col_marginals(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.cols];
        for (j, col_total) in out.iter_mut().enumerate() {
            for i in 0..self.rows {
                *col_total += self.count(i, j);
            }
        }
        out
    }

    /// Entropy of the row variable, `H(X)`, in bits.
    pub fn row_entropy(&self) -> f64 {
        crate::entropy::entropy_of_counts(&self.row_marginals())
    }

    /// Entropy of the column variable, `H(Y)`, in bits.
    pub fn col_entropy(&self) -> f64 {
        crate::entropy::entropy_of_counts(&self.col_marginals())
    }

    /// Joint entropy `H(X, Y)` in bits.
    pub fn joint_entropy(&self) -> f64 {
        crate::entropy::entropy_of_counts(&self.counts)
    }

    /// Mutual information `I(X; Y) = H(X) + H(Y) − H(X, Y)` in bits.
    ///
    /// Clamped at zero to absorb floating-point noise.
    pub fn mutual_information(&self) -> f64 {
        (self.row_entropy() + self.col_entropy() - self.joint_entropy()).max(0.0)
    }

    /// Variation of Information `VI(X; Y) = H(X,Y) − I(X;Y)` in bits.
    ///
    /// VI is a true metric on partitions (Meilă 2007), which is why the paper
    /// prefers it over raw mutual information as a map distance.
    pub fn variation_of_information(&self) -> f64 {
        (2.0 * self.joint_entropy() - self.row_entropy() - self.col_entropy()).max(0.0)
    }

    /// Normalised VI in `[0, 1]`: `VI / H(X,Y)` (0 when the joint entropy is 0).
    pub fn normalized_vi(&self) -> f64 {
        let joint = self.joint_entropy();
        if joint <= f64::EPSILON {
            0.0
        } else {
            (self.variation_of_information() / joint).clamp(0.0, 1.0)
        }
    }

    /// Normalised mutual information in `[0, 1]` (arithmetic-mean
    /// normalisation). 0 when either marginal entropy is 0.
    pub fn normalized_mi(&self) -> f64 {
        let hx = self.row_entropy();
        let hy = self.col_entropy();
        let denom = 0.5 * (hx + hy);
        if denom <= f64::EPSILON {
            0.0
        } else {
            (self.mutual_information() / denom).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_counts_and_marginals() {
        let a = [0u32, 0, 1, 1, 1];
        let b = [0u32, 1, 0, 1, 1];
        let t = ContingencyTable::from_labels(&a, &b, 2, 2);
        assert_eq!(t.total(), 5);
        assert_eq!(t.count(0, 0), 1);
        assert_eq!(t.count(0, 1), 1);
        assert_eq!(t.count(1, 0), 1);
        assert_eq!(t.count(1, 1), 2);
        assert_eq!(t.row_marginals(), vec![2, 3]);
        assert_eq!(t.col_marginals(), vec![2, 3]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_cols(), 2);
    }

    #[test]
    fn out_of_range_labels_are_ignored() {
        let a = [0u32, 5, 1];
        let b = [0u32, 0, 9];
        let t = ContingencyTable::from_labels(&a, &b, 2, 2);
        assert_eq!(t.total(), 1);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        ContingencyTable::from_labels(&[0], &[0, 1], 2, 2);
    }

    #[test]
    fn identical_labelings_have_zero_vi_and_full_nmi() {
        let a = [0u32, 1, 2, 0, 1, 2, 0, 1];
        let t = ContingencyTable::from_labels(&a, &a, 3, 3);
        assert!(t.variation_of_information() < 1e-9);
        assert!((t.normalized_mi() - 1.0).abs() < 1e-9);
        assert!(t.normalized_vi() < 1e-9);
        assert!((t.mutual_information() - t.row_entropy()).abs() < 1e-9);
    }

    #[test]
    fn independent_labelings_have_zero_mi() {
        // Perfectly independent: every (a, b) combination appears equally often.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..2u32 {
            for j in 0..2u32 {
                for _ in 0..25 {
                    a.push(i);
                    b.push(j);
                }
            }
        }
        let t = ContingencyTable::from_labels(&a, &b, 2, 2);
        assert!(t.mutual_information() < 1e-9);
        assert!((t.variation_of_information() - 2.0).abs() < 1e-9);
        assert!(t.normalized_mi() < 1e-9);
        assert!((t.normalized_vi() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_labeling_edge_case() {
        let a = [0u32; 10];
        let b = [0u32; 10];
        let t = ContingencyTable::from_labels(&a, &b, 1, 1);
        assert_eq!(t.mutual_information(), 0.0);
        assert_eq!(t.variation_of_information(), 0.0);
        assert_eq!(t.normalized_vi(), 0.0);
        assert_eq!(t.normalized_mi(), 0.0);
    }

    /// Region bitmaps equivalent to a label vector (one bitmap per label).
    fn selections_of(labels: &[u32], card: usize) -> Vec<Bitmap> {
        (0..card as u32)
            .map(|region| {
                Bitmap::from_indices(
                    labels.len(),
                    labels
                        .iter()
                        .enumerate()
                        .filter(|&(_, &l)| l == region)
                        .map(|(i, _)| i),
                )
            })
            .collect()
    }

    #[test]
    fn from_selections_matches_from_labels() {
        // Includes out-of-range (no-region) labels, which become rows covered
        // by no bitmap.
        let a = [0u32, 1, 2, 0, 1, 9, 2, 0, 9, 1, 1, 0];
        let b = [1u32, 0, 1, 1, 0, 0, 9, 1, 9, 0, 1, 1];
        let from_labels = ContingencyTable::from_labels(&a, &b, 3, 2);
        let sa = selections_of(&a, 3);
        let sb = selections_of(&b, 2);
        let ra: Vec<&Bitmap> = sa.iter().collect();
        let rb: Vec<&Bitmap> = sb.iter().collect();
        let from_sel = ContingencyTable::from_selections(&ra, &rb);
        assert_eq!(from_sel, from_labels);
        assert_eq!(from_sel.total(), from_labels.total());
        assert_eq!(
            from_sel.variation_of_information().to_bits(),
            from_labels.variation_of_information().to_bits(),
            "identical counts must give bit-identical entropies"
        );
    }

    #[test]
    fn from_selections_with_empty_sides() {
        let bm = Bitmap::from_indices(10, 0..5);
        let t = ContingencyTable::from_selections(&[], &[&bm]);
        assert_eq!(t.total(), 0);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.normalized_vi(), 0.0);
    }

    #[test]
    fn from_counts_matches_from_selections_cell_for_cell() {
        let a = [0u32, 1, 2, 0, 1, 2, 0, 1, 2, 0, 0, 1];
        let b = [1u32, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 0];
        let whole = ContingencyTable::from_labels(&a, &b, 3, 2);
        // Split the rows in two halves, sum the partial count matrices.
        let first = ContingencyTable::from_labels(&a[..6], &b[..6], 3, 2);
        let second = ContingencyTable::from_labels(&a[6..], &b[6..], 3, 2);
        let summed: Vec<u64> = first
            .counts()
            .iter()
            .zip(second.counts())
            .map(|(x, y)| x + y)
            .collect();
        let gathered = ContingencyTable::from_counts(3, 2, summed);
        assert_eq!(gathered, whole);
        assert_eq!(
            gathered.normalized_vi().to_bits(),
            whole.normalized_vi().to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "rows × cols")]
    fn from_counts_rejects_a_misshapen_matrix() {
        ContingencyTable::from_counts(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn from_selections_word_fold_matches_the_scalar_reference() {
        use atlas_columnar::{with_kernel_path, KernelPath};
        // Irregular length (trailing partial word) and sparse/empty regions.
        let n = 200;
        let ra: Vec<Bitmap> = (0..3)
            .map(|g| Bitmap::from_indices(n, (0..n).filter(move |i| i % 3 == g)))
            .collect();
        let rb: Vec<Bitmap> = vec![
            Bitmap::from_indices(n, (0..n).filter(|i| i % 5 < 2)),
            Bitmap::from_indices(n, (0..n).filter(|i| i % 5 >= 2 && i % 7 != 0)),
            Bitmap::new_empty(n),
        ];
        let ra: Vec<&Bitmap> = ra.iter().collect();
        let rb: Vec<&Bitmap> = rb.iter().collect();
        let word = with_kernel_path(KernelPath::WordParallel, || {
            ContingencyTable::from_selections(&ra, &rb)
        });
        let scalar = with_kernel_path(KernelPath::Scalar, || {
            ContingencyTable::from_selections(&ra, &rb)
        });
        assert_eq!(word, scalar);
        assert_eq!(
            word.normalized_vi().to_bits(),
            scalar.normalized_vi().to_bits()
        );
    }

    #[test]
    fn vi_is_symmetric() {
        let a = [0u32, 0, 1, 2, 1, 0, 2, 2, 1, 0];
        let b = [1u32, 0, 1, 1, 0, 0, 1, 0, 1, 1];
        let t_ab = ContingencyTable::from_labels(&a, &b, 3, 2);
        let t_ba = ContingencyTable::from_labels(&b, &a, 2, 3);
        assert!((t_ab.variation_of_information() - t_ba.variation_of_information()).abs() < 1e-12);
        assert!((t_ab.mutual_information() - t_ba.mutual_information()).abs() < 1e-12);
    }
}
