//! Agreement scores between two partitions.
//!
//! The evaluation experiments compare the region assignment produced by a map
//! against planted ground-truth clusters (experiment E4) or planted attribute
//! groups (E3). The standard scores are the (adjusted) Rand index, purity, and
//! normalised mutual information.

use crate::contingency::ContingencyTable;

fn cardinality(labels: &[u32]) -> usize {
    labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0)
}

/// The Rand index between two labelings, in `[0, 1]`.
///
/// Fraction of item pairs on which the two partitions agree (both together or
/// both apart). Returns 1.0 for fewer than two items.
pub fn rand_index(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "label vectors must have equal length");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let table = ContingencyTable::from_labels(a, b, cardinality(a), cardinality(b));
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let total_pairs = choose2(n as u64);
    let mut sum_cells = 0.0;
    for i in 0..table.num_rows() {
        for j in 0..table.num_cols() {
            sum_cells += choose2(table.count(i, j));
        }
    }
    let sum_rows: f64 = table.row_marginals().iter().map(|&x| choose2(x)).sum();
    let sum_cols: f64 = table.col_marginals().iter().map(|&x| choose2(x)).sum();
    // agreements = pairs together in both + pairs apart in both
    let together_both = sum_cells;
    let apart_both = total_pairs - sum_rows - sum_cols + sum_cells;
    ((together_both + apart_both) / total_pairs).clamp(0.0, 1.0)
}

/// The Adjusted Rand Index (Hubert & Arabie) between two labelings.
///
/// 1.0 for identical partitions, ~0 for independent ones, possibly negative
/// for worse-than-chance agreement. Returns 1.0 for degenerate inputs where
/// both partitions are trivial (all-same or all-distinct in the same way).
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "label vectors must have equal length");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let table = ContingencyTable::from_labels(a, b, cardinality(a), cardinality(b));
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let mut index = 0.0;
    for i in 0..table.num_rows() {
        for j in 0..table.num_cols() {
            index += choose2(table.count(i, j));
        }
    }
    let sum_rows: f64 = table.row_marginals().iter().map(|&x| choose2(x)).sum();
    let sum_cols: f64 = table.col_marginals().iter().map(|&x| choose2(x)).sum();
    let total_pairs = choose2(n as u64);
    let expected = sum_rows * sum_cols / total_pairs;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < f64::EPSILON {
        // Both partitions are trivial in the same way.
        return 1.0;
    }
    (index - expected) / (max_index - expected)
}

/// Purity of partition `a` with respect to reference partition `b`, in `[0,1]`.
///
/// For each cluster of `a`, count its most frequent reference label; purity is
/// the fraction of items so accounted for.
pub fn purity(a: &[u32], reference: &[u32]) -> f64 {
    assert_eq!(
        a.len(),
        reference.len(),
        "label vectors must have equal length"
    );
    if a.is_empty() {
        return 1.0;
    }
    let table = ContingencyTable::from_labels(a, reference, cardinality(a), cardinality(reference));
    let mut correct = 0u64;
    for i in 0..table.num_rows() {
        let best = (0..table.num_cols())
            .map(|j| table.count(i, j))
            .max()
            .unwrap_or(0);
        correct += best;
    }
    correct as f64 / a.len() as f64
}

/// Normalised mutual information between two labelings, in `[0, 1]`.
pub fn normalized_mutual_information(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "label vectors must have equal length");
    if a.is_empty() {
        return 1.0;
    }
    ContingencyTable::from_labels(a, b, cardinality(a), cardinality(b)).normalized_mi()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_are_perfect() {
        let a = [0u32, 0, 1, 1, 2, 2];
        assert!((rand_index(&a, &a) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        assert!((purity(&a, &a) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabelled_partitions_are_still_perfect() {
        let a = [0u32, 0, 1, 1, 2, 2];
        let b = [2u32, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
        assert!((purity(&a, &b) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_near_zero_ari() {
        // Balanced independent labelings.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..2u32 {
            for j in 0..2u32 {
                for _ in 0..50 {
                    a.push(i);
                    b.push(j);
                }
            }
        }
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.05, "ARI of independent partitions was {ari}");
        assert!(normalized_mutual_information(&a, &b) < 0.05);
    }

    #[test]
    fn purity_of_refinement_is_one_but_not_vice_versa() {
        // a refines b: every a-cluster is inside one b-cluster.
        let a = [0u32, 1, 2, 3, 4, 5];
        let b = [0u32, 0, 0, 1, 1, 1];
        assert!((purity(&a, &b) - 1.0).abs() < 1e-12);
        assert!(purity(&b, &a) < 1.0);
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let a = [0u32, 0, 0, 1, 1, 1, 1, 0];
        let b = [0u32, 0, 1, 1, 1, 1, 0, 0];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.0 && ari < 1.0);
        let ri = rand_index(&a, &b);
        assert!(ri > 0.5 && ri < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(rand_index(&[0], &[0]), 1.0);
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        assert_eq!(purity(&[], &[]), 1.0);
        // all-in-one vs all-in-one
        let ones = [0u32; 10];
        assert!((adjusted_rand_index(&ones, &ones) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        rand_index(&[0, 1], &[0]);
    }
}
