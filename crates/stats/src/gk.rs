//! Greenwald–Khanna streaming quantile sketch.
//!
//! Section 5.1 of the paper ("Algorithm optimization") proposes approximating
//! the median computed by `CUT` with a one-pass sketch to avoid sorting large
//! columns. This is the classic ε-approximate quantile summary of Greenwald &
//! Khanna (SIGMOD 2001): after inserting `n` items, `query(p)` returns a value
//! whose rank is within `ε·n` of the exact `p`-quantile rank, using
//! `O((1/ε)·log(ε·n))` space.

/// One tuple of the GK summary: a stored value `v`, the minimum gap `g`
/// between its rank and its predecessor's, and the rank uncertainty `delta`.
#[derive(Debug, Clone, Copy)]
struct GkEntry {
    value: f64,
    g: u64,
    delta: u64,
}

/// Greenwald–Khanna ε-approximate quantile sketch.
#[derive(Debug, Clone)]
pub struct GkSketch {
    epsilon: f64,
    entries: Vec<GkEntry>,
    count: u64,
    /// Compress every `compress_interval` inserts.
    compress_interval: u64,
    since_compress: u64,
}

impl GkSketch {
    /// Create a sketch with the given error bound `epsilon` (e.g. `0.01` for a
    /// 1 % rank error). Values of `epsilon` outside `(0, 0.5]` are clamped.
    pub fn new(epsilon: f64) -> Self {
        let epsilon = if epsilon <= 0.0 {
            1e-4
        } else {
            epsilon.min(0.5)
        };
        let compress_interval = (1.0 / (2.0 * epsilon)).ceil() as u64;
        GkSketch {
            epsilon,
            entries: Vec::new(),
            count: 0,
            compress_interval: compress_interval.max(1),
            since_compress: 0,
        }
    }

    /// The error bound the sketch was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of values inserted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current number of stored tuples (the space usage).
    pub fn size(&self) -> usize {
        self.entries.len()
    }

    /// Insert one value.
    pub fn insert(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let idx = self.entries.partition_point(|e| e.value < value);
        let delta = if idx == 0 || idx == self.entries.len() {
            0
        } else {
            (2.0 * self.epsilon * self.count as f64).floor() as u64
        };
        self.entries.insert(idx, GkEntry { value, g: 1, delta });
        self.count += 1;
        self.since_compress += 1;
        if self.since_compress >= self.compress_interval {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Insert a batch of values.
    pub fn extend(&mut self, values: &[f64]) {
        for &v in values {
            self.insert(v);
        }
    }

    /// Merge another sketch into this one (`other` summarising a disjoint
    /// part of the stream), the enabling operation for per-segment sketches:
    /// profile a new segment independently, then fold its sketch into the
    /// table-wide one instead of re-sketching every value.
    ///
    /// The classic GK merge: the two entry lists are merge-sorted by value,
    /// and each entry's rank uncertainty grows by the uncertainty of its
    /// position within the *other* summary (the `g + Δ − 1` of the other
    /// side's next-larger entry). The merged summary is then compressed
    /// against the combined count.
    ///
    /// **Error under repeated folding:** the GK query guarantee rests on the
    /// invariant `g + Δ ≤ 2εn`, and this merge preserves it inductively —
    /// an entry from side A satisfies `g + Δ ≤ 2ε·n_a` and gains at most
    /// `2ε·n_b − 1` from B, so `g + Δ' ≤ 2ε·(n_a + n_b)`. Folding one
    /// sketch per segment over arbitrarily many segments therefore does
    /// **not** accumulate error with the segment count; the per-quantile
    /// rank error stays within the 2ε envelope (property-checked in
    /// `tests/segments.rs` and, for a many-hundred-way fold, in this
    /// module's tests). The merged sketch records `max(ε_a, ε_b)` as its
    /// nominal epsilon.
    pub fn merge(&mut self, other: &GkSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (a, b) = (&self.entries, &other.entries);
        let mut merged: Vec<GkEntry> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            // Take the smaller head; on ties take from `a` (stable order).
            let take_a = j >= b.len() || (i < a.len() && a[i].value <= b[j].value);
            // Uncertainty added by the other summary: the gap around this
            // value over there, i.e. the next-larger other entry's g + Δ − 1
            // (nothing if this value exceeds everything in the other summary).
            let (entry, extra) = if take_a {
                let entry = a[i];
                i += 1;
                (entry, b.get(j).map_or(0, |next| next.g + next.delta - 1))
            } else {
                let entry = b[j];
                j += 1;
                (entry, a.get(i).map_or(0, |next| next.g + next.delta - 1))
            };
            merged.push(GkEntry {
                value: entry.value,
                g: entry.g,
                delta: entry.delta + extra,
            });
        }
        self.entries = merged;
        self.count += other.count;
        self.epsilon = self.epsilon.max(other.epsilon);
        let compress_interval = (1.0 / (2.0 * self.epsilon)).ceil() as u64;
        self.compress_interval = compress_interval.max(1);
        self.since_compress = 0;
        self.compress();
    }

    /// Merge entries whose combined uncertainty stays within the bound.
    fn compress(&mut self) {
        if self.entries.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.epsilon * self.count as f64).floor() as u64;
        let mut compressed: Vec<GkEntry> = Vec::with_capacity(self.entries.len());
        // Always keep the first entry (minimum).
        compressed.push(self.entries[0]);
        for i in 1..self.entries.len() {
            let entry = self.entries[i];
            // Try to merge `last` into `entry` (forward merge keeps maxima).
            let is_last_overall = i == self.entries.len() - 1;
            let can_merge = {
                let last = compressed
                    .last()
                    .expect("compressed always has at least one entry");
                !is_last_overall
                    && compressed.len() > 1
                    && last.g + entry.g + entry.delta <= threshold
            };
            if can_merge {
                let last = compressed
                    .last_mut()
                    .expect("compressed always has at least one entry");
                let merged_g = last.g + entry.g;
                *last = GkEntry {
                    value: entry.value,
                    g: merged_g,
                    delta: entry.delta,
                };
            } else {
                compressed.push(entry);
            }
        }
        self.entries = compressed;
    }

    /// Query the `p`-quantile (0 ≤ p ≤ 1). Returns `None` if nothing has been
    /// inserted.
    pub fn query(&self, p: f64) -> Option<f64> {
        if self.count == 0 || self.entries.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = (p * self.count as f64).ceil() as u64;
        let margin = (self.epsilon * self.count as f64).ceil() as u64;
        let mut r_min = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            r_min += e.g;
            let r_max = r_min + e.delta;
            if (rank + margin >= r_max || i == self.entries.len() - 1) && rank <= r_min + margin {
                return Some(e.value);
            }
        }
        self.entries.last().map(|e| e.value)
    }

    /// Convenience accessor for the approximate median.
    pub fn median(&self) -> Option<f64> {
        self.query(0.5)
    }

    /// Decompose the sketch into its serialisable parts:
    /// `(epsilon, count, since_compress, entries)` with one `(value, g, Δ)`
    /// triple per stored tuple, in value order.
    ///
    /// Together with [`GkSketch::from_parts`] this is an **exact** round
    /// trip — the rebuilt sketch answers every query, merge, and insert
    /// identically to the original — which is what lets a distributed
    /// coordinator fold shard-built sketches as if it had built them
    /// locally.
    pub fn to_parts(&self) -> (f64, u64, u64, Vec<(f64, u64, u64)>) {
        (
            self.epsilon,
            self.count,
            self.since_compress,
            self.entries
                .iter()
                .map(|e| (e.value, e.g, e.delta))
                .collect(),
        )
    }

    /// Rebuild a sketch from the parts produced by [`GkSketch::to_parts`].
    ///
    /// The compression interval is re-derived from `epsilon` exactly as the
    /// constructor derives it, so the rebuilt sketch is indistinguishable
    /// from the original (same entries, same future compression points).
    pub fn from_parts(
        epsilon: f64,
        count: u64,
        since_compress: u64,
        entries: Vec<(f64, u64, u64)>,
    ) -> Self {
        let mut sketch = GkSketch::new(epsilon);
        sketch.entries = entries
            .into_iter()
            .map(|(value, g, delta)| GkEntry { value, g, delta })
            .collect();
        sketch.count = count;
        sketch.since_compress = since_compress;
        sketch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::quantile;

    fn rank_of(sorted: &[f64], value: f64) -> usize {
        sorted.partition_point(|&x| x <= value)
    }

    #[test]
    fn empty_sketch_returns_none() {
        let sk = GkSketch::new(0.01);
        assert_eq!(sk.query(0.5), None);
        assert_eq!(sk.median(), None);
        assert_eq!(sk.count(), 0);
    }

    #[test]
    fn single_value() {
        let mut sk = GkSketch::new(0.01);
        sk.insert(42.0);
        assert_eq!(sk.median(), Some(42.0));
        assert_eq!(sk.query(0.0), Some(42.0));
        assert_eq!(sk.query(1.0), Some(42.0));
    }

    #[test]
    fn nan_is_ignored() {
        let mut sk = GkSketch::new(0.01);
        sk.insert(f64::NAN);
        sk.insert(1.0);
        assert_eq!(sk.count(), 1);
    }

    #[test]
    fn epsilon_is_clamped() {
        assert!(GkSketch::new(-3.0).epsilon() > 0.0);
        assert!(GkSketch::new(5.0).epsilon() <= 0.5);
    }

    #[test]
    fn median_error_is_within_bound_uniform() {
        let n = 10_000usize;
        let eps = 0.01;
        let mut values: Vec<f64> = (0..n).map(|i| (i as f64 * 37.0) % 1000.0).collect();
        let mut sk = GkSketch::new(eps);
        sk.extend(&values);
        values.sort_by(|a, b| a.total_cmp(b));
        for &p in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let approx = sk.query(p).unwrap();
            let approx_rank = rank_of(&values, approx) as f64 / n as f64;
            assert!(
                (approx_rank - p).abs() <= 3.0 * eps + 1e-9,
                "p={p} approx_rank={approx_rank}"
            );
        }
    }

    #[test]
    fn space_stays_sublinear() {
        let n = 50_000usize;
        let mut sk = GkSketch::new(0.01);
        for i in 0..n {
            sk.insert(((i * 2654435761) % 100_000) as f64);
        }
        assert!(
            sk.size() < n / 10,
            "sketch size {} should be far below n={n}",
            sk.size()
        );
        assert_eq!(sk.count(), n as u64);
    }

    #[test]
    fn sorted_and_reverse_sorted_streams() {
        let n = 5_000;
        for reverse in [false, true] {
            let mut sk = GkSketch::new(0.02);
            let iter: Box<dyn Iterator<Item = usize>> = if reverse {
                Box::new((0..n).rev())
            } else {
                Box::new(0..n)
            };
            for i in iter {
                sk.insert(i as f64);
            }
            let med = sk.median().unwrap();
            let exact = quantile(&(0..n).map(|x| x as f64).collect::<Vec<_>>(), 0.5).unwrap();
            assert!(
                (med - exact).abs() <= 0.05 * n as f64,
                "reverse={reverse} med={med} exact={exact}"
            );
        }
    }

    #[test]
    fn merge_of_disjoint_parts_stays_within_twice_the_bound() {
        let n = 20_000usize;
        let eps = 0.01;
        let values: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 100_000) as f64)
            .collect();
        // Sketch the stream in four chunks and fold them in order.
        let mut folded = GkSketch::new(eps);
        for chunk in values.chunks(n / 4) {
            let mut part = GkSketch::new(eps);
            part.extend(chunk);
            folded.merge(&part);
        }
        assert_eq!(folded.count(), n as u64);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for &p in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let approx = folded.query(p).unwrap();
            let approx_rank = rank_of(&sorted, approx) as f64 / n as f64;
            assert!(
                (approx_rank - p).abs() <= 2.0 * eps + 1e-9,
                "p={p} approx_rank={approx_rank}"
            );
        }
        // Space stays sketch-like after merging.
        assert!(folded.size() < n / 10, "size {}", folded.size());
    }

    #[test]
    fn folding_hundreds_of_segment_sketches_does_not_accumulate_error() {
        // The CI segment layout (ATLAS_SEGMENT_ROWS=1024) folds ~1000
        // per-segment sketches for a 1M-row column; the g + Δ ≤ 2εn
        // invariant must keep the rank error within the 2ε envelope no
        // matter how many folds happen.
        let n = 100_000usize;
        let eps = 0.01;
        let values: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1_000_003) as f64)
            .collect();
        let mut folded = GkSketch::new(eps);
        for chunk in values.chunks(256) {
            // ~391 folds
            let mut part = GkSketch::new(eps);
            part.extend(chunk);
            folded.merge(&part);
        }
        assert_eq!(folded.count(), n as u64);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for &p in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let approx = folded.query(p).unwrap();
            let approx_rank = rank_of(&sorted, approx) as f64 / n as f64;
            assert!(
                (approx_rank - p).abs() <= 2.0 * eps + 1e-9,
                "p={p} approx_rank={approx_rank} after ~391 folds"
            );
        }
        assert!(
            folded.size() < 2_000,
            "size {} stays sketch-like",
            folded.size()
        );
    }

    #[test]
    fn merge_edge_cases() {
        // Merging into an empty sketch adopts the other side.
        let mut empty = GkSketch::new(0.01);
        let mut other = GkSketch::new(0.02);
        other.extend(&[1.0, 2.0, 3.0]);
        empty.merge(&other);
        assert_eq!(empty.count(), 3);
        assert_eq!(empty.epsilon(), 0.02);
        // Merging an empty sketch is a no-op.
        let before = empty.size();
        empty.merge(&GkSketch::new(0.01));
        assert_eq!(empty.count(), 3);
        assert_eq!(empty.size(), before);
        // Disjoint value ranges keep order statistics sane.
        let mut low = GkSketch::new(0.05);
        low.extend(&(0..500).map(f64::from).collect::<Vec<_>>());
        let mut high = GkSketch::new(0.05);
        high.extend(&(500..1000).map(f64::from).collect::<Vec<_>>());
        low.merge(&high);
        let med = low.median().unwrap();
        assert!((med - 500.0).abs() <= 75.0, "median {med}");
        assert!(low.query(0.0).unwrap() <= 50.0);
        assert!(low.query(1.0).unwrap() >= 950.0);
    }

    #[test]
    fn parts_round_trip_is_exact() {
        let mut sk = GkSketch::new(0.02);
        sk.extend(
            &(0..5_000)
                .map(|i| ((i * 37) % 997) as f64)
                .collect::<Vec<_>>(),
        );
        let (eps, count, since, entries) = sk.to_parts();
        let rebuilt = GkSketch::from_parts(eps, count, since, entries);
        assert_eq!(rebuilt.epsilon(), sk.epsilon());
        assert_eq!(rebuilt.count(), sk.count());
        assert_eq!(rebuilt.size(), sk.size());
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            assert_eq!(
                rebuilt.query(p).map(f64::to_bits),
                sk.query(p).map(f64::to_bits),
                "p={p}"
            );
        }
        // Future behaviour matches too: same merges, same compress points.
        let mut more = GkSketch::new(0.02);
        more.extend(&(0..500).map(f64::from).collect::<Vec<_>>());
        let mut a = sk.clone();
        let mut b = rebuilt.clone();
        a.merge(&more);
        b.merge(&more);
        assert_eq!(a.size(), b.size());
        assert_eq!(a.median().map(f64::to_bits), b.median().map(f64::to_bits));
    }

    #[test]
    fn duplicates_heavy_stream() {
        let mut sk = GkSketch::new(0.01);
        for _ in 0..1000 {
            sk.insert(5.0);
        }
        for _ in 0..10 {
            sk.insert(100.0);
        }
        assert_eq!(sk.median(), Some(5.0));
    }
}
