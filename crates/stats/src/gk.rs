//! Greenwald–Khanna streaming quantile sketch.
//!
//! Section 5.1 of the paper ("Algorithm optimization") proposes approximating
//! the median computed by `CUT` with a one-pass sketch to avoid sorting large
//! columns. This is the classic ε-approximate quantile summary of Greenwald &
//! Khanna (SIGMOD 2001): after inserting `n` items, `query(p)` returns a value
//! whose rank is within `ε·n` of the exact `p`-quantile rank, using
//! `O((1/ε)·log(ε·n))` space.

/// One tuple of the GK summary: a stored value `v`, the minimum gap `g`
/// between its rank and its predecessor's, and the rank uncertainty `delta`.
#[derive(Debug, Clone, Copy)]
struct GkEntry {
    value: f64,
    g: u64,
    delta: u64,
}

/// Greenwald–Khanna ε-approximate quantile sketch.
#[derive(Debug, Clone)]
pub struct GkSketch {
    epsilon: f64,
    entries: Vec<GkEntry>,
    count: u64,
    /// Compress every `compress_interval` inserts.
    compress_interval: u64,
    since_compress: u64,
}

impl GkSketch {
    /// Create a sketch with the given error bound `epsilon` (e.g. `0.01` for a
    /// 1 % rank error). Values of `epsilon` outside `(0, 0.5]` are clamped.
    pub fn new(epsilon: f64) -> Self {
        let epsilon = if epsilon <= 0.0 {
            1e-4
        } else {
            epsilon.min(0.5)
        };
        let compress_interval = (1.0 / (2.0 * epsilon)).ceil() as u64;
        GkSketch {
            epsilon,
            entries: Vec::new(),
            count: 0,
            compress_interval: compress_interval.max(1),
            since_compress: 0,
        }
    }

    /// The error bound the sketch was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of values inserted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current number of stored tuples (the space usage).
    pub fn size(&self) -> usize {
        self.entries.len()
    }

    /// Insert one value.
    pub fn insert(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let idx = self.entries.partition_point(|e| e.value < value);
        let delta = if idx == 0 || idx == self.entries.len() {
            0
        } else {
            (2.0 * self.epsilon * self.count as f64).floor() as u64
        };
        self.entries.insert(idx, GkEntry { value, g: 1, delta });
        self.count += 1;
        self.since_compress += 1;
        if self.since_compress >= self.compress_interval {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Insert a batch of values.
    pub fn extend(&mut self, values: &[f64]) {
        for &v in values {
            self.insert(v);
        }
    }

    /// Merge entries whose combined uncertainty stays within the bound.
    fn compress(&mut self) {
        if self.entries.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.epsilon * self.count as f64).floor() as u64;
        let mut compressed: Vec<GkEntry> = Vec::with_capacity(self.entries.len());
        // Always keep the first entry (minimum).
        compressed.push(self.entries[0]);
        for i in 1..self.entries.len() {
            let entry = self.entries[i];
            // Try to merge `last` into `entry` (forward merge keeps maxima).
            let is_last_overall = i == self.entries.len() - 1;
            let can_merge = {
                let last = compressed
                    .last()
                    .expect("compressed always has at least one entry");
                !is_last_overall
                    && compressed.len() > 1
                    && last.g + entry.g + entry.delta <= threshold
            };
            if can_merge {
                let last = compressed
                    .last_mut()
                    .expect("compressed always has at least one entry");
                let merged_g = last.g + entry.g;
                *last = GkEntry {
                    value: entry.value,
                    g: merged_g,
                    delta: entry.delta,
                };
            } else {
                compressed.push(entry);
            }
        }
        self.entries = compressed;
    }

    /// Query the `p`-quantile (0 ≤ p ≤ 1). Returns `None` if nothing has been
    /// inserted.
    pub fn query(&self, p: f64) -> Option<f64> {
        if self.count == 0 || self.entries.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = (p * self.count as f64).ceil() as u64;
        let margin = (self.epsilon * self.count as f64).ceil() as u64;
        let mut r_min = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            r_min += e.g;
            let r_max = r_min + e.delta;
            if (rank + margin >= r_max || i == self.entries.len() - 1) && rank <= r_min + margin {
                return Some(e.value);
            }
        }
        self.entries.last().map(|e| e.value)
    }

    /// Convenience accessor for the approximate median.
    pub fn median(&self) -> Option<f64> {
        self.query(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::quantile;

    fn rank_of(sorted: &[f64], value: f64) -> usize {
        sorted.partition_point(|&x| x <= value)
    }

    #[test]
    fn empty_sketch_returns_none() {
        let sk = GkSketch::new(0.01);
        assert_eq!(sk.query(0.5), None);
        assert_eq!(sk.median(), None);
        assert_eq!(sk.count(), 0);
    }

    #[test]
    fn single_value() {
        let mut sk = GkSketch::new(0.01);
        sk.insert(42.0);
        assert_eq!(sk.median(), Some(42.0));
        assert_eq!(sk.query(0.0), Some(42.0));
        assert_eq!(sk.query(1.0), Some(42.0));
    }

    #[test]
    fn nan_is_ignored() {
        let mut sk = GkSketch::new(0.01);
        sk.insert(f64::NAN);
        sk.insert(1.0);
        assert_eq!(sk.count(), 1);
    }

    #[test]
    fn epsilon_is_clamped() {
        assert!(GkSketch::new(-3.0).epsilon() > 0.0);
        assert!(GkSketch::new(5.0).epsilon() <= 0.5);
    }

    #[test]
    fn median_error_is_within_bound_uniform() {
        let n = 10_000usize;
        let eps = 0.01;
        let mut values: Vec<f64> = (0..n).map(|i| (i as f64 * 37.0) % 1000.0).collect();
        let mut sk = GkSketch::new(eps);
        sk.extend(&values);
        values.sort_by(|a, b| a.total_cmp(b));
        for &p in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let approx = sk.query(p).unwrap();
            let approx_rank = rank_of(&values, approx) as f64 / n as f64;
            assert!(
                (approx_rank - p).abs() <= 3.0 * eps + 1e-9,
                "p={p} approx_rank={approx_rank}"
            );
        }
    }

    #[test]
    fn space_stays_sublinear() {
        let n = 50_000usize;
        let mut sk = GkSketch::new(0.01);
        for i in 0..n {
            sk.insert(((i * 2654435761) % 100_000) as f64);
        }
        assert!(
            sk.size() < n / 10,
            "sketch size {} should be far below n={n}",
            sk.size()
        );
        assert_eq!(sk.count(), n as u64);
    }

    #[test]
    fn sorted_and_reverse_sorted_streams() {
        let n = 5_000;
        for reverse in [false, true] {
            let mut sk = GkSketch::new(0.02);
            let iter: Box<dyn Iterator<Item = usize>> = if reverse {
                Box::new((0..n).rev())
            } else {
                Box::new(0..n)
            };
            for i in iter {
                sk.insert(i as f64);
            }
            let med = sk.median().unwrap();
            let exact = quantile(&(0..n).map(|x| x as f64).collect::<Vec<_>>(), 0.5).unwrap();
            assert!(
                (med - exact).abs() <= 0.05 * n as f64,
                "reverse={reverse} med={med} exact={exact}"
            );
        }
    }

    #[test]
    fn duplicates_heavy_stream() {
        let mut sk = GkSketch::new(0.01);
        for _ in 0..1000 {
            sk.insert(5.0);
        }
        for _ in 0..10 {
            sk.insert(100.0);
        }
        assert_eq!(sk.median(), Some(5.0));
    }
}
