//! Entropy, mutual information and the Variation of Information.
//!
//! All quantities are in **bits** (base-2 logarithms). The Variation of
//! Information (Meilă 2007) is the map distance the paper recommends: unlike
//! raw mutual information it is a true metric on partitions, so the
//! agglomerative clustering of candidate maps (Section 3.2) behaves well.

use crate::contingency::ContingencyTable;

/// Shannon entropy (bits) of a discrete distribution given as probabilities.
///
/// Probabilities that are zero or negative are skipped; the input does not
/// need to be normalised (it is renormalised internally).
pub fn entropy(probabilities: &[f64]) -> f64 {
    let total: f64 = probabilities.iter().filter(|&&p| p > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &p in probabilities {
        if p > 0.0 {
            let q = p / total;
            h -= q * q.log2();
        }
    }
    h.max(0.0)
}

/// Shannon entropy (bits) of a discrete distribution given as counts.
pub fn entropy_of_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.log2();
        }
    }
    h.max(0.0)
}

/// Shannon entropy (bits) of the population distribution of a set of
/// selections — the entropy of "which region does a random selected row fall
/// into".
///
/// This is the streaming form of [`entropy_of_counts`] for partitions given
/// as bitmaps: cardinalities come from word-level popcounts, so no per-row
/// labels or index vectors are materialised. The selections are assumed
/// pairwise disjoint (true for the regions of any Atlas map).
pub fn entropy_of_selections<'a, I>(regions: I) -> f64
where
    I: IntoIterator<Item = &'a atlas_columnar::Bitmap>,
{
    let counts: Vec<u64> = regions.into_iter().map(|r| r.count() as u64).collect();
    entropy_of_counts(&counts)
}

/// Joint entropy `H(X, Y)` (bits) of two label vectors.
pub fn joint_entropy(a: &[u32], b: &[u32], a_card: usize, b_card: usize) -> f64 {
    ContingencyTable::from_labels(a, b, a_card, b_card).joint_entropy()
}

/// Mutual information `I(X; Y)` (bits) of two label vectors.
pub fn mutual_information(a: &[u32], b: &[u32], a_card: usize, b_card: usize) -> f64 {
    ContingencyTable::from_labels(a, b, a_card, b_card).mutual_information()
}

/// Variation of Information `VI(X; Y)` (bits) of two label vectors.
pub fn variation_of_information(a: &[u32], b: &[u32], a_card: usize, b_card: usize) -> f64 {
    ContingencyTable::from_labels(a, b, a_card, b_card).variation_of_information()
}

/// Normalised Variation of Information in `[0, 1]` of two label vectors.
pub fn normalized_vi(a: &[u32], b: &[u32], a_card: usize, b_card: usize) -> f64 {
    ContingencyTable::from_labels(a, b, a_card, b_card).normalized_vi()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_and_point_mass() {
        assert!((entropy(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[0.25; 4]) - 2.0).abs() < 1e-12);
        assert!(entropy(&[1.0]) < 1e-12);
        assert!(entropy(&[1.0, 0.0, 0.0]) < 1e-12);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_handles_unnormalised_input() {
        // 2:2 ratio is the same distribution as 0.5:0.5
        assert!((entropy(&[2.0, 2.0]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[10.0, 10.0, 10.0, 10.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_counts_matches_probability_version() {
        let counts = [10u64, 30, 60];
        let probs = [0.1, 0.3, 0.6];
        assert!((entropy_of_counts(&counts) - entropy(&probs)).abs() < 1e-12);
        assert_eq!(entropy_of_counts(&[]), 0.0);
        assert_eq!(entropy_of_counts(&[0, 0]), 0.0);
    }

    #[test]
    fn entropy_is_maximised_by_balance() {
        let balanced = entropy(&[0.25; 4]);
        let skewed = entropy(&[0.7, 0.1, 0.1, 0.1]);
        assert!(balanced > skewed);
    }

    #[test]
    fn mi_and_vi_relationship() {
        // Y = X deterministically => VI = 0, I = H(X).
        let x = [0u32, 1, 0, 1, 0, 1, 1, 0];
        assert!(variation_of_information(&x, &x, 2, 2) < 1e-12);
        assert!((mutual_information(&x, &x, 2, 2) - 1.0).abs() < 1e-9);

        // Independence => I = 0 and VI = H(X) + H(Y).
        let a = [0u32, 0, 1, 1];
        let b = [0u32, 1, 0, 1];
        assert!(mutual_information(&a, &b, 2, 2) < 1e-12);
        assert!((variation_of_information(&a, &b, 2, 2) - 2.0).abs() < 1e-9);
        assert!((joint_entropy(&a, &b, 2, 2) - 2.0).abs() < 1e-9);
        assert!((normalized_vi(&a, &b, 2, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vi_triangle_inequality_spot_check() {
        // VI is a metric: check the triangle inequality on a few partitions.
        let x = [0u32, 0, 0, 1, 1, 1, 2, 2, 2];
        let y = [0u32, 0, 1, 1, 1, 2, 2, 2, 0];
        let z = [0u32, 1, 2, 0, 1, 2, 0, 1, 2];
        let d_xy = variation_of_information(&x, &y, 3, 3);
        let d_yz = variation_of_information(&y, &z, 3, 3);
        let d_xz = variation_of_information(&x, &z, 3, 3);
        assert!(d_xz <= d_xy + d_yz + 1e-9);
        assert!(d_xy <= d_xz + d_yz + 1e-9);
        assert!(d_yz <= d_xy + d_xz + 1e-9);
    }
}
