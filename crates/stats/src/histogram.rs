//! Equi-width and equi-depth histograms.
//!
//! The simplest cutting strategy in the paper is equi-width binning of an
//! ordinal attribute ("fast and intuitive"); equi-depth binning is the
//! quantile-based alternative. Both are thin wrappers that compute bin edges
//! plus per-bin counts.

use crate::quantile::quantile_sorted;

/// An equi-width histogram over a numeric sample.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiWidthHistogram {
    /// Bin edges, `num_bins + 1` of them, strictly increasing (except for the
    /// degenerate single-value case where all edges coincide).
    pub edges: Vec<f64>,
    /// Number of observations per bin.
    pub counts: Vec<usize>,
}

impl EquiWidthHistogram {
    /// Build an equi-width histogram with `num_bins` bins. Returns `None` for
    /// empty input or `num_bins == 0`.
    pub fn build(values: &[f64], num_bins: usize) -> Option<Self> {
        if values.is_empty() || num_bins == 0 {
            return None;
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut edges = Vec::with_capacity(num_bins + 1);
        if min == max {
            edges = vec![min; num_bins + 1];
            let mut counts = vec![0usize; num_bins];
            counts[0] = values.len();
            return Some(EquiWidthHistogram { edges, counts });
        }
        let width = (max - min) / num_bins as f64;
        for i in 0..=num_bins {
            edges.push(min + width * i as f64);
        }
        let mut counts = vec![0usize; num_bins];
        for &v in values {
            let mut bin = ((v - min) / width) as usize;
            if bin >= num_bins {
                bin = num_bins - 1;
            }
            counts[bin] += 1;
        }
        Some(EquiWidthHistogram { edges, counts })
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.counts.len()
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The interior split points (edges without the outermost two).
    pub fn split_points(&self) -> Vec<f64> {
        if self.edges.len() <= 2 {
            Vec::new()
        } else {
            self.edges[1..self.edges.len() - 1].to_vec()
        }
    }

    /// The bin index a value falls into.
    pub fn bin_of(&self, value: f64) -> usize {
        let n = self.num_bins();
        if n == 0 {
            return 0;
        }
        let min = self.edges[0];
        let max = self.edges[self.edges.len() - 1];
        if max == min {
            return 0;
        }
        let width = (max - min) / n as f64;
        let bin = ((value - min) / width).floor();
        (bin.max(0.0) as usize).min(n - 1)
    }
}

/// An equi-depth (quantile) histogram over a numeric sample.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    /// Bin edges, at most `num_bins + 1` of them (duplicate quantiles are
    /// collapsed).
    pub edges: Vec<f64>,
    /// Number of observations per bin.
    pub counts: Vec<usize>,
}

impl EquiDepthHistogram {
    /// Build an equi-depth histogram with (at most) `num_bins` bins.
    pub fn build(values: &[f64], num_bins: usize) -> Option<Self> {
        if values.is_empty() || num_bins == 0 {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut edges = vec![sorted[0]];
        for i in 1..num_bins {
            let q = quantile_sorted(&sorted, i as f64 / num_bins as f64);
            if q > *edges.last().expect("edges never empty") {
                edges.push(q);
            }
        }
        let last = sorted[sorted.len() - 1];
        if last > *edges.last().expect("edges never empty") || edges.len() == 1 {
            edges.push(last);
        }
        let nbins = edges.len() - 1;
        let mut counts = vec![0usize; nbins.max(1)];
        for &v in &sorted {
            // Upper-inclusive bins: bin i covers (edges[i], edges[i+1]] except
            // bin 0 which also includes its lower edge.
            let mut bin = edges.partition_point(|&e| e < v);
            bin = bin.saturating_sub(1).min(nbins.saturating_sub(1));
            counts[bin] += 1;
        }
        Some(EquiDepthHistogram { edges, counts })
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.counts.len()
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The interior split points (edges without the outermost two).
    pub fn split_points(&self) -> Vec<f64> {
        if self.edges.len() <= 2 {
            Vec::new()
        } else {
            self.edges[1..self.edges.len() - 1].to_vec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_width_basics() {
        let v: Vec<f64> = (0..100).map(|x| x as f64).collect();
        let h = EquiWidthHistogram::build(&v, 4).unwrap();
        assert_eq!(h.num_bins(), 4);
        assert_eq!(h.total(), 100);
        assert_eq!(h.counts, vec![25, 25, 25, 25]);
        assert_eq!(h.edges.len(), 5);
        assert_eq!(h.split_points().len(), 3);
        assert_eq!(h.bin_of(0.0), 0);
        assert_eq!(h.bin_of(99.0), 3);
        assert_eq!(h.bin_of(-5.0), 0);
        assert_eq!(h.bin_of(1000.0), 3);
    }

    #[test]
    fn equi_width_degenerate_single_value() {
        let v = vec![3.0; 10];
        let h = EquiWidthHistogram::build(&v, 4).unwrap();
        assert_eq!(h.total(), 10);
        assert_eq!(h.counts[0], 10);
        assert_eq!(h.bin_of(3.0), 0);
    }

    #[test]
    fn equi_width_rejects_bad_input() {
        assert!(EquiWidthHistogram::build(&[], 3).is_none());
        assert!(EquiWidthHistogram::build(&[1.0], 0).is_none());
    }

    #[test]
    fn equi_depth_balances_counts() {
        // A heavily skewed sample: equi-depth should still balance the counts.
        let mut v: Vec<f64> = (0..90).map(|x| x as f64 / 100.0).collect();
        v.extend((0..10).map(|x| 1000.0 + x as f64));
        let h = EquiDepthHistogram::build(&v, 4).unwrap();
        assert_eq!(h.total(), 100);
        let max = *h.counts.iter().max().unwrap();
        let min = *h.counts.iter().min().unwrap();
        assert!(
            max - min <= 10,
            "counts should be roughly balanced: {:?}",
            h.counts
        );
    }

    #[test]
    fn equi_depth_collapses_ties() {
        let v = vec![1.0; 40];
        let h = EquiDepthHistogram::build(&v, 4).unwrap();
        assert_eq!(h.num_bins(), 1);
        assert_eq!(h.total(), 40);
        assert!(h.split_points().is_empty());
    }

    #[test]
    fn equi_depth_rejects_bad_input() {
        assert!(EquiDepthHistogram::build(&[], 3).is_none());
        assert!(EquiDepthHistogram::build(&[1.0], 0).is_none());
    }
}
