//! Reservoir sampling.
//!
//! The anytime variant of Atlas (Section 5.1 of the paper) "continually takes
//! small samples of the data and updates a set of approximate results". The
//! reservoir sampler provides a uniform sample of the rows selected by the
//! current query without knowing the selection cardinality in advance.

/// Algorithm-R reservoir sampler over items of type `T`.
///
/// The random source is any closure returning a `f64` uniform in `[0, 1)`, so
/// the sampler itself has no dependency on a specific RNG; the engine plugs in
/// a seeded `rand::StdRng` and the tests use a deterministic counter.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    capacity: usize,
    seen: usize,
    items: Vec<T>,
}

impl<T> ReservoirSampler<T> {
    /// Create a sampler keeping at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        ReservoirSampler {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity.min(1024)),
        }
    }

    /// Offer one item; `uniform` must return a fresh uniform draw in `[0, 1)`.
    pub fn offer<F: FnMut() -> f64>(&mut self, item: T, uniform: &mut F) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else if self.capacity > 0 {
            let j = (uniform() * self.seen as f64) as usize;
            if j < self.capacity {
                self.items[j] = item;
            }
        }
    }

    /// Offer a sequence of items.
    pub fn offer_all<I, F>(&mut self, items: I, uniform: &mut F)
    where
        I: IntoIterator<Item = T>,
        F: FnMut() -> f64,
    {
        for item in items {
            self.offer(item, uniform);
        }
    }

    /// The number of items offered so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// The current sample.
    pub fn sample(&self) -> &[T] {
        &self.items
    }

    /// Consume the sampler, returning the sample.
    pub fn into_sample(self) -> Vec<T> {
        self.items
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if the reservoir is full.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap deterministic uniform source for tests.
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.max(1);
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn fills_up_to_capacity_without_randomness() {
        let mut r = ReservoirSampler::new(5);
        let mut u = lcg(1);
        r.offer_all(0..3, &mut u);
        assert_eq!(r.sample(), &[0, 1, 2]);
        assert_eq!(r.seen(), 3);
        assert!(!r.is_full());
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut r = ReservoirSampler::new(10);
        let mut u = lcg(7);
        r.offer_all(0..1000, &mut u);
        assert_eq!(r.sample().len(), 10);
        assert_eq!(r.seen(), 1000);
        assert!(r.is_full());
        assert_eq!(r.capacity(), 10);
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let mut r = ReservoirSampler::new(0);
        let mut u = lcg(3);
        r.offer_all(0..100, &mut u);
        assert!(r.sample().is_empty());
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn sample_items_come_from_the_stream() {
        let mut r = ReservoirSampler::new(20);
        let mut u = lcg(42);
        r.offer_all((0..500).map(|i| i * 2), &mut u);
        for &item in r.sample() {
            assert!(item % 2 == 0 && item < 1000);
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Offer 0..100 many times with different seeds; every item should be
        // selected a reasonable number of times (chi-square-ish sanity check).
        let mut hits = vec![0usize; 100];
        for seed in 0..300u64 {
            let mut r = ReservoirSampler::new(10);
            let mut u = lcg(seed * 2 + 1);
            r.offer_all(0..100usize, &mut u);
            for &item in r.sample() {
                hits[item] += 1;
            }
        }
        // Expected hits per item = 300 * 10 / 100 = 30.
        let min = *hits.iter().min().unwrap();
        let max = *hits.iter().max().unwrap();
        assert!(min > 5, "min hits {min} too low for uniform sampling");
        assert!(max < 90, "max hits {max} too high for uniform sampling");
    }

    #[test]
    fn into_sample_consumes() {
        let mut r = ReservoirSampler::new(3);
        let mut u = lcg(9);
        r.offer_all(0..3, &mut u);
        let v = r.into_sample();
        assert_eq!(v.len(), 3);
    }
}
