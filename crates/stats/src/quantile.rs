//! Exact quantiles.
//!
//! These are the "ground truth" used by the default median-based `CUT`, and
//! the reference the Greenwald–Khanna sketch ([`crate::gk`]) is validated
//! against.

/// The `p`-quantile (0 ≤ p ≤ 1) of `values`, using linear interpolation
/// between order statistics. Returns `None` for an empty slice.
///
/// The input does not need to be sorted; a copy is sorted internally.
pub fn quantile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Some(quantile_sorted(&sorted, p))
}

/// Several quantiles at once, sorting the input only once.
pub fn quantiles(values: &[f64], ps: &[f64]) -> Option<Vec<f64>> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Some(ps.iter().map(|&p| quantile_sorted(&sorted, p)).collect())
}

/// The median of `values` (`None` for an empty slice).
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Quantile of an already-sorted slice (ascending). `p` is clamped to `[0,1]`.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let p = p.clamp(0.0, 1.0);
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Equally spaced interior split points that partition `values` into `k`
/// roughly equally populated parts (the equi-depth / k-quantile cut).
///
/// Returns `k - 1` split values; duplicates are removed so the result may be
/// shorter when the data is heavily tied. Returns `None` for empty input or
/// `k < 2`.
pub fn equi_depth_splits(values: &[f64], k: usize) -> Option<Vec<f64>> {
    if values.is_empty() || k < 2 {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut splits = Vec::with_capacity(k - 1);
    for i in 1..k {
        let q = quantile_sorted(&sorted, i as f64 / k as f64);
        if splits.last().is_none_or(|&last: &f64| q > last) {
            splits.push(q);
        }
    }
    Some(splits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs() {
        assert!(quantile(&[], 0.5).is_none());
        assert!(median(&[]).is_none());
        assert!(quantiles(&[], &[0.5]).is_none());
        assert!(equi_depth_splits(&[], 2).is_none());
        assert!(equi_depth_splits(&[1.0], 1).is_none());
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
    }

    #[test]
    fn quantile_endpoints_and_interp() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&v, 0.0), Some(10.0));
        assert_eq!(quantile(&v, 1.0), Some(50.0));
        assert_eq!(quantile(&v, 0.5), Some(30.0));
        assert_eq!(quantile(&v, 0.25), Some(20.0));
        assert_eq!(quantile(&v, 0.1), Some(14.0));
        // out-of-range p is clamped
        assert_eq!(quantile(&v, 2.0), Some(50.0));
        assert_eq!(quantile(&v, -1.0), Some(10.0));
    }

    #[test]
    fn quantiles_batch_matches_single() {
        let v = [5.0, 1.0, 9.0, 3.0, 7.0];
        let qs = quantiles(&v, &[0.25, 0.5, 0.75]).unwrap();
        assert_eq!(qs[0], quantile(&v, 0.25).unwrap());
        assert_eq!(qs[1], quantile(&v, 0.5).unwrap());
        assert_eq!(qs[2], quantile(&v, 0.75).unwrap());
    }

    #[test]
    fn equi_depth_splits_partition_evenly() {
        let v: Vec<f64> = (0..100).map(|x| x as f64).collect();
        let splits = equi_depth_splits(&v, 4).unwrap();
        assert_eq!(splits.len(), 3);
        assert!((splits[0] - 24.75).abs() < 1.0);
        assert!((splits[1] - 49.5).abs() < 1.0);
        assert!((splits[2] - 74.25).abs() < 1.0);
    }

    #[test]
    fn equi_depth_splits_dedupe_on_ties() {
        let v = vec![1.0; 50];
        let splits = equi_depth_splits(&v, 4).unwrap();
        assert!(splits.len() <= 1);
    }
}
