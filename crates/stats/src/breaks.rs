//! Optimal one-dimensional partitioning (Fisher–Jenks natural breaks).
//!
//! Where [`crate::kmeans1d`] gives a fast local optimum, this module computes
//! the *exact* minimum-variance partition of a sorted 1-D sample into `k`
//! contiguous classes via dynamic programming (`O(k·n²)`). Atlas uses it as a
//! gold standard in the cut-quality experiments (E2) and as an optional
//! high-quality cutting strategy for small working sets.

/// Result of the optimal-breaks computation.
#[derive(Debug, Clone, PartialEq)]
pub struct NaturalBreaks {
    /// Interior split values (upper bound of each class except the last),
    /// `k - 1` of them.
    pub splits: Vec<f64>,
    /// Total within-class sum of squared deviations of the optimal partition.
    pub within_class_ssd: f64,
}

/// Compute the optimal partition of `values` into `k` contiguous classes
/// minimising the within-class sum of squared deviations.
///
/// Returns `None` if `values` is empty or `k == 0`. If there are fewer
/// distinct values than `k`, the number of classes is reduced accordingly.
pub fn natural_breaks(values: &[f64], k: usize) -> Option<NaturalBreaks> {
    if values.is_empty() || k == 0 {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let mut distinct = sorted.clone();
    distinct.dedup();
    let k = k.min(distinct.len()).max(1);
    if k == 1 {
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let ssd = sorted.iter().map(|v| (v - mean).powi(2)).sum();
        return Some(NaturalBreaks {
            splits: Vec::new(),
            within_class_ssd: ssd,
        });
    }

    // Prefix sums for O(1) segment cost.
    let mut prefix = vec![0.0f64; n + 1];
    let mut prefix_sq = vec![0.0f64; n + 1];
    for (i, &v) in sorted.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
        prefix_sq[i + 1] = prefix_sq[i] + v * v;
    }
    // Cost of the segment [i, j) = sum of squared deviations from its mean.
    let seg_cost = |i: usize, j: usize| -> f64 {
        if j <= i {
            return 0.0;
        }
        let len = (j - i) as f64;
        let sum = prefix[j] - prefix[i];
        let sum_sq = prefix_sq[j] - prefix_sq[i];
        (sum_sq - sum * sum / len).max(0.0)
    };

    // dp[c][j] = best cost of splitting the first j items into c+1 classes.
    let mut dp = vec![vec![f64::INFINITY; n + 1]; k];
    let mut back = vec![vec![0usize; n + 1]; k];
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = seg_cost(0, j);
    }
    for c in 1..k {
        for j in (c + 1)..=n {
            for split in c..j {
                let cost = dp[c - 1][split] + seg_cost(split, j);
                if cost < dp[c][j] {
                    dp[c][j] = cost;
                    back[c][j] = split;
                }
            }
        }
    }

    // Reconstruct the boundaries.
    let mut boundaries = Vec::with_capacity(k - 1);
    let mut j = n;
    for c in (1..k).rev() {
        let split = back[c][j];
        boundaries.push(split);
        j = split;
    }
    boundaries.reverse();
    let splits = boundaries
        .iter()
        .map(|&b| {
            // Split value: midpoint between the last item of the left class and
            // the first item of the right class.
            if b == 0 || b >= n {
                sorted[b.min(n - 1)]
            } else {
                (sorted[b - 1] + sorted[b]) / 2.0
            }
        })
        .collect();
    Some(NaturalBreaks {
        splits,
        within_class_ssd: dp[k - 1][n],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_input() {
        assert!(natural_breaks(&[], 2).is_none());
        assert!(natural_breaks(&[1.0], 0).is_none());
    }

    #[test]
    fn one_class_returns_total_ssd() {
        let r = natural_breaks(&[1.0, 2.0, 3.0], 1).unwrap();
        assert!(r.splits.is_empty());
        assert!((r.within_class_ssd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_separable_two_groups() {
        let values = [1.0, 1.1, 0.9, 10.0, 10.1, 9.9];
        let r = natural_breaks(&values, 2).unwrap();
        assert_eq!(r.splits.len(), 1);
        assert!(r.splits[0] > 1.1 && r.splits[0] < 9.9);
        assert!(r.within_class_ssd < 0.05);
    }

    #[test]
    fn three_groups() {
        let mut values = Vec::new();
        for c in [0.0, 100.0, 1000.0] {
            for i in 0..10 {
                values.push(c + i as f64 * 0.1);
            }
        }
        let r = natural_breaks(&values, 3).unwrap();
        assert_eq!(r.splits.len(), 2);
        assert!(r.splits[0] > 1.0 && r.splits[0] < 100.0);
        assert!(r.splits[1] > 101.0 && r.splits[1] < 1000.0);
    }

    #[test]
    fn optimal_is_no_worse_than_kmeans() {
        let values: Vec<f64> = (0..120)
            .map(|i| ((i * 37) % 100) as f64 + if i % 3 == 0 { 500.0 } else { 0.0 })
            .collect();
        let nb = natural_breaks(&values, 3).unwrap();
        let km = crate::kmeans1d::kmeans_1d(&values, 3, 100).unwrap();
        assert!(nb.within_class_ssd <= km.inertia + 1e-6);
    }

    #[test]
    fn fewer_distinct_values_than_classes() {
        let values = vec![2.0, 2.0, 7.0, 7.0, 7.0];
        let r = natural_breaks(&values, 4).unwrap();
        assert!(r.splits.len() <= 1);
        assert!(r.within_class_ssd < 1e-9);
    }

    #[test]
    fn splits_partition_data_with_expected_counts() {
        let values = [1.0, 2.0, 3.0, 101.0, 102.0, 103.0, 104.0];
        let r = natural_breaks(&values, 2).unwrap();
        let split = r.splits[0];
        let left = values.iter().filter(|&&v| v <= split).count();
        assert_eq!(left, 3);
    }
}
