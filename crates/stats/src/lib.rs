//! # atlas-stats
//!
//! Statistics substrate for the Atlas data-cartography engine.
//!
//! The map-generation framework of "Fast Cartography for Data Explorers"
//! (Sellam & Kersten, VLDB 2013) leans on a handful of statistical tools:
//!
//! * **Information theory** — the distance between two candidate maps is the
//!   statistical dependency of their underlying variables, quantified with
//!   mutual information or the Variation of Information ([`entropy`],
//!   [`contingency`]).
//! * **Quantiles and sketches** — the `CUT` primitive splits an attribute at
//!   the median (or other quantiles); the paper proposes one-pass sketches to
//!   approximate it on large columns ([`quantile`], [`gk`]).
//! * **One-dimensional clustering** — the alternative cutting strategy that
//!   maximises within-partition homogeneity ([`kmeans1d`], [`breaks`]).
//! * **Sampling** — the anytime variant draws repeated samples
//!   ([`reservoir`]).
//! * **Histograms and descriptive statistics** — for equi-width cuts and
//!   reporting ([`histogram`], [`describe`]).
//! * **Agreement scores** — the evaluation compares recovered partitions to
//!   planted ground truth (ARI, purity, NMI) ([`agreement`]).

#![warn(missing_docs)]

pub mod agreement;
pub mod breaks;
pub mod contingency;
pub mod describe;
pub mod entropy;
pub mod gk;
pub mod histogram;
pub mod kmeans1d;
pub mod quantile;
pub mod reservoir;

pub use agreement::{adjusted_rand_index, normalized_mutual_information, purity, rand_index};
pub use contingency::ContingencyTable;
pub use describe::Describe;
pub use entropy::{
    entropy_of_counts, entropy_of_selections, joint_entropy, mutual_information, normalized_vi,
    variation_of_information,
};
pub use gk::GkSketch;
pub use histogram::{EquiDepthHistogram, EquiWidthHistogram};
pub use kmeans1d::{kmeans_1d, KMeans1dResult};
pub use quantile::{median, quantiles};
pub use reservoir::ReservoirSampler;
