//! End-to-end protocol tests: a real server on an ephemeral port, driven by
//! the blocking client over real sockets.

use atlas_core::AtlasConfig;
use atlas_datagen::CensusGenerator;
use atlas_serve::wire::Json;
use atlas_serve::{Client, DatasetOptions, Registry, ServeConfig, Server, ServerHandle};
use std::sync::Arc;
use std::time::Duration;

fn boot(rows: usize, cache: usize, threads: usize) -> (ServerHandle, Client) {
    let mut registry = Registry::new();
    registry
        .add_table(
            "census",
            Arc::new(CensusGenerator::with_rows(rows, 11).generate()),
            DatasetOptions {
                config: AtlasConfig::fast(),
                cache_capacity: cache,
            },
        )
        .unwrap();
    let config = ServeConfig {
        keep_alive: Duration::from_millis(400),
        ..ServeConfig::default()
    }
    .with_threads(threads);
    let handle = Server::start(registry, config).unwrap();
    let client = Client::new(handle.addr());
    (handle, client)
}

#[test]
fn healthz_datasets_and_metrics_respond() {
    let (handle, client) = boot(800, 8, 2);

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let health = health.json().unwrap();
    assert_eq!(health.get("status").unwrap().str(), Some("ok"));
    let names = health.get("datasets").unwrap().items().unwrap();
    assert_eq!(names[0].str(), Some("census"));

    let datasets = client.get("/datasets").unwrap().json().unwrap();
    let census = &datasets.get("datasets").unwrap().items().unwrap()[0];
    assert_eq!(census.get("rows").unwrap().num(), Some(800.0));
    assert!(census.get("attributes").unwrap().items().unwrap().len() >= 5);

    let metrics = client.get("/metrics").unwrap().json().unwrap();
    assert!(metrics.get("requests_total").unwrap().num().unwrap() >= 2.0);
    assert!(metrics.get("sessions").is_some());
    assert!(metrics.get("result_cache").unwrap().get("census").is_some());
    handle.shutdown();
}

#[test]
fn the_full_exploration_loop_works_over_the_wire() {
    let (handle, client) = boot(2_000, 8, 2);
    let token = client.create_session("census").unwrap();

    // Explore with a plain-SQL body.
    let reply = client
        .post_text(
            &format!("/sessions/{token}/explore"),
            "SELECT * FROM census",
        )
        .unwrap();
    assert_eq!(reply.status, 200, "{:?}", reply.body_text());
    let reply = reply.json().unwrap();
    assert_eq!(reply.get("working_set_size").unwrap().num(), Some(2000.0));
    assert_eq!(reply.get("depth").unwrap().num(), Some(1.0));
    let maps = reply.get("maps").unwrap().items().unwrap();
    assert!(!maps.is_empty());
    let first_region_sql = maps[0].get("regions").unwrap().items().unwrap()[0]
        .get("sql")
        .unwrap()
        .str()
        .unwrap()
        .to_string();
    assert!(first_region_sql.starts_with("SELECT * FROM census"));

    // The JSON envelope works too, and the table name may be omitted.
    let reply = client
        .post_json(
            &format!("/sessions/{token}/explore"),
            &Json::object(vec![("sql", Json::from("age BETWEEN 17 AND 40"))]),
        )
        .unwrap();
    assert_eq!(reply.status, 200);
    let narrowed = reply.json().unwrap();
    assert!(narrowed.get("working_set_size").unwrap().num().unwrap() < 2000.0);
    assert_eq!(narrowed.get("depth").unwrap().num(), Some(2.0));

    // Drill into map 0 / region 0 of the current step.
    let reply = client
        .post_json(
            &format!("/sessions/{token}/drill"),
            &Json::object(vec![
                ("map", Json::from(0usize)),
                ("region", Json::from(0usize)),
            ]),
        )
        .unwrap();
    assert_eq!(reply.status, 200, "{:?}", reply.body_text());
    let drilled = reply.json().unwrap();
    assert!(
        drilled.get("working_set_size").unwrap().num().unwrap()
            < narrowed.get("working_set_size").unwrap().num().unwrap()
    );

    // History shows all three steps.
    let history = client
        .get(&format!("/sessions/{token}/history"))
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(history.get("depth").unwrap().num(), Some(3.0));
    assert_eq!(history.get("steps").unwrap().items().unwrap().len(), 3);

    // Back pops one step.
    let back = client
        .post_text(&format!("/sessions/{token}/back"), "")
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(back.get("popped").unwrap().bool(), Some(true));
    assert_eq!(back.get("depth").unwrap().num(), Some(2.0));
    assert!(back.get("current").unwrap().str().unwrap().contains("age"));

    // Delete ends the session.
    assert_eq!(
        client.delete(&format!("/sessions/{token}")).unwrap().status,
        200
    );
    let reply = client
        .post_text(
            &format!("/sessions/{token}/explore"),
            "SELECT * FROM census",
        )
        .unwrap();
    assert_eq!(reply.status, 404);
    handle.shutdown();
}

#[test]
fn identical_queries_hit_the_shared_cache_across_sessions() {
    let (handle, client) = boot(1_500, 8, 2);
    let a = client.create_session("census").unwrap();
    let b = client.create_session("census").unwrap();
    let first = client
        .post_text(&format!("/sessions/{a}/explore"), "SELECT * FROM census")
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(first.get("cache_hit").unwrap().bool(), Some(false));
    // Same query, different session, different predicate spelling order.
    let second = client
        .post_text(&format!("/sessions/{b}/explore"), "SELECT * FROM census")
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(second.get("cache_hit").unwrap().bool(), Some(true));
    assert_eq!(
        first.get("maps").unwrap().encode(),
        second.get("maps").unwrap().encode(),
        "cached replies are byte-identical"
    );
    handle.shutdown();
}

#[test]
fn errors_map_to_the_right_statuses() {
    let (handle, client) = boot(600, 4, 2);
    let token = client.create_session("census").unwrap();
    let explore = |sql: &str| {
        client
            .post_text(&format!("/sessions/{token}/explore"), sql)
            .unwrap()
    };

    // Unparseable SQL → 400.
    let reply = explore("SELECT age FROM census");
    assert_eq!(reply.status, 400);
    assert!(reply.json().unwrap().get("error").is_some());
    // Unknown attribute → 400 (query error).
    assert_eq!(explore("wingspan BETWEEN 1 AND 2").status, 400);
    // Empty working set → 422.
    assert_eq!(explore("age BETWEEN 900 AND 999").status, 422);
    // Unknown session → 404.
    let reply = client
        .post_text("/sessions/nonsense/explore", "SELECT * FROM census")
        .unwrap();
    assert_eq!(reply.status, 404);
    // Unknown dataset → 404.
    let reply = client.post_json(
        "/sessions",
        &Json::object(vec![("dataset", Json::from("mars"))]),
    );
    assert_eq!(reply.unwrap().status, 404);
    // Drill before exploring → 400, and out-of-range indices → 400.
    assert_eq!(
        client
            .post_json(
                &format!("/sessions/{token}/drill"),
                &Json::object(vec![("map", Json::from(0usize))]),
            )
            .unwrap()
            .status,
        400
    );
    explore("SELECT * FROM census");
    let reply = client
        .post_json(
            &format!("/sessions/{token}/drill"),
            &Json::object(vec![("map", Json::from(99usize))]),
        )
        .unwrap();
    assert_eq!(reply.status, 400);
    assert!(reply
        .json()
        .unwrap()
        .get("error")
        .unwrap()
        .str()
        .unwrap()
        .contains("map #99"));
    // Unknown routes and wrong methods.
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.get("/sessions/x/explore").unwrap().status, 405);
    // Malformed drill body → 400.
    let reply = client
        .request(
            "POST",
            &format!("/sessions/{token}/drill"),
            Some(("application/json", b"{\"map\": \"zero\"}")),
        )
        .unwrap();
    assert_eq!(reply.status, 400);
    handle.shutdown();
}

#[test]
fn appending_rows_over_the_wire_updates_live_sessions() {
    let (handle, client) = boot(1_200, 8, 2);
    let token = client.create_session("census").unwrap();
    let explore = || {
        client
            .post_text(
                &format!("/sessions/{token}/explore"),
                "SELECT * FROM census",
            )
            .unwrap()
            .json()
            .unwrap()
    };
    assert_eq!(
        explore().get("working_set_size").unwrap().num(),
        Some(1200.0)
    );

    // Render a census batch as header-less CSV and POST it.
    let batch = CensusGenerator::with_rows(300, 77).generate();
    let mut csv = Vec::new();
    atlas_columnar::csv::write_csv(&batch, &mut csv).unwrap();
    let text = String::from_utf8(csv).unwrap();
    let body = text.split_once('\n').unwrap().1.to_string();
    let reply = client
        .request(
            "POST",
            "/datasets/census/rows",
            Some(("text/csv", body.as_bytes())),
        )
        .unwrap();
    assert_eq!(reply.status, 200, "{:?}", reply.body_text());
    let reply = reply.json().unwrap();
    assert_eq!(reply.get("appended_rows").unwrap().num(), Some(300.0));
    assert_eq!(reply.get("total_rows").unwrap().num(), Some(1500.0));

    // The live session catches up on its next request.
    assert_eq!(
        explore().get("working_set_size").unwrap().num(),
        Some(1500.0)
    );

    // Malformed bodies are 400s; unknown datasets 404s; empty bodies 400s.
    let bad = client
        .request(
            "POST",
            "/datasets/census/rows",
            Some(("text/csv", b"just,three,columns".as_slice())),
        )
        .unwrap();
    assert_eq!(bad.status, 400);
    assert_eq!(
        client
            .request(
                "POST",
                "/datasets/mars/rows",
                Some(("text/csv", b"x".as_slice()))
            )
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client
            .request("POST", "/datasets/census/rows", None)
            .unwrap()
            .status,
        400
    );
    handle.shutdown();
}

#[test]
fn overload_is_refused_with_503() {
    // queue_depth 0 means admission control refuses every connection.
    let mut registry = Registry::new();
    registry
        .add_table(
            "census",
            Arc::new(CensusGenerator::with_rows(200, 1).generate()),
            DatasetOptions::default(),
        )
        .unwrap();
    let config = ServeConfig {
        queue_depth: 0,
        ..ServeConfig::default()
    }
    .with_threads(1);
    let handle = Server::start(registry, config).unwrap();
    let client = Client::new(handle.addr());
    let reply = client.get("/healthz").unwrap();
    assert_eq!(reply.status, 503);
    let retry_after = reply
        .headers
        .iter()
        .find(|(name, _)| name == "retry-after")
        .map(|(_, value)| value.as_str())
        .expect("503 refusals must carry a Retry-After header");
    let seconds: u64 = retry_after.parse().expect("Retry-After must be seconds");
    assert!(
        (1..=30).contains(&seconds),
        "Retry-After {seconds} out of range"
    );
    assert!(handle.metrics().rejected() >= 1);
    handle.shutdown();
}

#[test]
fn a_deadline_spent_in_the_admission_queue_is_a_504_with_work_done() {
    let (handle, _client) = boot(200, 0, 1);
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    // The deadline anchors at admission: sitting idle after connecting burns
    // the whole budget before the request even arrives.
    std::thread::sleep(Duration::from_millis(300));
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nX-Atlas-Deadline-Ms: 100\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 504"), "got: {text}");
    assert!(
        text.contains("work_done"),
        "504 must report work done: {text}"
    );
    assert!(
        text.contains("admission queue"),
        "504 must name the phase: {text}"
    );
    handle.shutdown();
}

#[test]
fn degraded_mode_must_be_enabled_server_side() {
    // A coordinator with shards configured but degraded mode off: the mode
    // gate answers before any shard is dialled, so the address can be fake.
    let mut registry = Registry::new();
    registry
        .add_table(
            "census",
            Arc::new(CensusGenerator::with_rows(200, 1).generate()),
            DatasetOptions::default(),
        )
        .unwrap();
    let config = ServeConfig {
        shards: vec!["127.0.0.1:1".to_string()],
        ..ServeConfig::default()
    }
    .with_threads(1);
    let handle = Server::start(registry, config).unwrap();
    let client = Client::new(handle.addr());

    let body = Json::object(vec![
        ("sql", Json::from("SELECT * FROM census WHERE age > 30")),
        ("mode", Json::from("degraded")),
    ]);
    let reply = client.post_json("/distributed/explore", &body).unwrap();
    assert_eq!(reply.status, 400);
    let error = reply
        .json()
        .unwrap()
        .get("error")
        .unwrap()
        .str()
        .unwrap()
        .to_string();
    assert!(error.contains("degraded mode is disabled"), "got: {error}");

    let body = Json::object(vec![
        ("sql", Json::from("SELECT * FROM census WHERE age > 30")),
        ("mode", Json::from("optimistic")),
    ]);
    let reply = client.post_json("/distributed/explore", &body).unwrap();
    assert_eq!(reply.status, 400);
    let error = reply
        .json()
        .unwrap()
        .get("error")
        .unwrap()
        .str()
        .unwrap()
        .to_string();
    assert!(error.contains("unknown mode"), "got: {error}");
    handle.shutdown();
}

#[test]
fn oversized_and_malformed_requests_fail_cleanly() {
    let mut registry = Registry::new();
    registry
        .add_table(
            "census",
            Arc::new(CensusGenerator::with_rows(200, 1).generate()),
            DatasetOptions::default(),
        )
        .unwrap();
    let config = ServeConfig {
        max_body_bytes: 64,
        ..ServeConfig::default()
    }
    .with_threads(1);
    let handle = Server::start(registry, config).unwrap();
    let client = Client::new(handle.addr());
    let reply = client
        .request(
            "POST",
            "/sessions",
            Some(("text/plain", vec![b'x'; 1000].as_slice())),
        )
        .unwrap();
    assert_eq!(reply.status, 413);

    // A raw, non-HTTP payload gets a 400 and a closed connection.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(b"garbage\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    assert!(String::from_utf8_lossy(&buf).starts_with("HTTP/1.1 400"));
    handle.shutdown();
}

#[test]
fn an_empty_registry_refuses_to_start_and_shutdown_is_clean() {
    assert!(Server::start(Registry::new(), ServeConfig::default()).is_err());
    // Boot + immediate shutdown joins every thread (no hang, no panic).
    let (handle, client) = boot(200, 0, 3);
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    handle.shutdown();
}
