//! Token-addressed exploration sessions with TTL eviction.
//!
//! Every `POST /sessions` creates an [`atlas_explorer::Session`] riding a
//! cheap clone of the dataset's prepared engine (the statistics profile is
//! shared through `Arc`s) and hands back an opaque token. Requests address
//! the session by token; a session idle longer than the TTL is evicted on
//! the next sweep, and when the table is full the least recently used
//! session makes room — the server never grows without bound.
//!
//! Sessions are stored behind per-session mutexes, so two requests for the
//! *same* token serialise while requests for different tokens proceed in
//! parallel.

use atlas_explorer::Session;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A live wire session: the exploration state plus catch-up bookkeeping.
pub struct WireSession {
    /// The dataset this session explores.
    pub dataset: String,
    /// The exploration session (history, drill-down, append refresh).
    pub session: Session,
    /// How many of the dataset's appended segments this session has applied
    /// (see `Dataset::pending_segments`).
    pub applied_generation: usize,
    /// Last time a request touched this session.
    pub last_used: Instant,
}

/// Aggregate counters for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionCounters {
    /// Sessions currently alive.
    pub live: usize,
    /// Sessions created since boot.
    pub created: u64,
    /// Sessions evicted (TTL or capacity) since boot.
    pub evicted: u64,
}

/// The token-addressed session table.
pub struct SessionManager {
    ttl: Duration,
    max_sessions: usize,
    sessions: Mutex<HashMap<String, Arc<Mutex<WireSession>>>>,
    counter: AtomicU64,
    created: AtomicU64,
    evicted: AtomicU64,
    /// Per-process random key folded into tokens so they are not guessable
    /// across server restarts.
    token_key: u64,
}

impl SessionManager {
    /// A manager evicting sessions idle for `ttl`, holding at most
    /// `max_sessions` (at least 1) at a time.
    pub fn new(ttl: Duration, max_sessions: usize) -> SessionManager {
        SessionManager {
            ttl,
            max_sessions: max_sessions.max(1),
            sessions: Mutex::new(HashMap::new()),
            counter: AtomicU64::new(1),
            created: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            // `RandomState` is seeded from the OS per process; hashing a
            // constant through it yields a process-unique key without any
            // extra deps.
            token_key: RandomState::new().hash_one(0xA71A5u64),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, Arc<Mutex<WireSession>>>> {
        match self.sessions.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn next_token(&self) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // Mix the counter with the process key (splitmix64 finaliser) so
        // tokens look opaque while staying collision-free per process.
        let mut x = n ^ self.token_key;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
        format!("s{n:x}-{x:016x}")
    }

    /// Register a new session over `dataset`, returning its token. Evicts
    /// expired sessions first; if the table is still full, the least recently
    /// used session is evicted to make room.
    pub fn create(
        &self,
        dataset: impl Into<String>,
        session: Session,
        applied_generation: usize,
    ) -> String {
        self.evict_expired();
        let token = self.next_token();
        let wire = Arc::new(Mutex::new(WireSession {
            dataset: dataset.into(),
            session,
            applied_generation,
            last_used: Instant::now(),
        }));
        let mut sessions = self.lock();
        while sessions.len() >= self.max_sessions {
            // Evict the least recently used session. Entries whose lock is
            // held are in use right now and are skipped.
            // lint: nondeterministic-ok (feeds lru_victim's total order, so the pick is iteration-order independent)
            let victim = lru_victim(sessions.iter().filter_map(|(token, slot)| {
                slot.try_lock().ok().map(|s| (token.clone(), s.last_used))
            }));
            match victim {
                Some(token) => {
                    sessions.remove(&token);
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
                None => break, // every session is busy; admit anyway
            }
        }
        sessions.insert(token.clone(), wire);
        self.created.fetch_add(1, Ordering::Relaxed);
        token
    }

    /// Look up a session by token, refreshing its recency. Returns `None`
    /// for unknown tokens and for sessions whose TTL has expired (which are
    /// removed on the spot).
    pub fn get(&self, token: &str) -> Option<Arc<Mutex<WireSession>>> {
        let mut sessions = self.lock();
        let slot = Arc::clone(sessions.get(token)?);
        // A busy session (lock held by a concurrent request) is by
        // definition not expired.
        if let Ok(mut session) = slot.try_lock() {
            if session.last_used.elapsed() > self.ttl {
                drop(session);
                sessions.remove(token);
                self.evicted.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            session.last_used = Instant::now();
        }
        Some(slot)
    }

    /// Remove a session explicitly (`DELETE /sessions/:id`).
    pub fn remove(&self, token: &str) -> bool {
        self.lock().remove(token).is_some()
    }

    /// Drop every session idle longer than the TTL; returns how many went.
    pub fn evict_expired(&self) -> usize {
        let mut sessions = self.lock();
        let expired: Vec<String> = sessions
            .iter() // lint: nondeterministic-ok (every expired session is removed; the set is order independent)
            .filter_map(|(token, slot)| {
                let session = slot.try_lock().ok()?;
                (session.last_used.elapsed() > self.ttl).then(|| token.clone())
            })
            .collect();
        for token in &expired {
            sessions.remove(token);
        }
        self.evicted
            .fetch_add(expired.len() as u64, Ordering::Relaxed);
        expired.len()
    }

    /// Current counters.
    pub fn counters(&self) -> SessionCounters {
        SessionCounters {
            live: self.lock().len(),
            created: self.created.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

/// Pick the LRU eviction victim under a **total** order: ties on `last_used`
/// (coarse clocks make same-instant sessions routine) break by token.
///
/// The candidates come out of a `HashMap`, whose iteration order is
/// randomized per process; `min_by_key` keeps the *first* minimum it sees,
/// so without the token tie-break the evicted session would depend on hash
/// order — a live determinism bug, since eviction changes which tokens later
/// requests can still resolve.
fn lru_victim(candidates: impl Iterator<Item = (String, Instant)>) -> Option<String> {
    candidates
        .min_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
        .map(|(token, _)| token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_core::{Atlas, AtlasConfig};
    use atlas_datagen::CensusGenerator;

    fn session() -> Session {
        let table = Arc::new(CensusGenerator::with_rows(300, 5).generate());
        let engine = Atlas::new(table, AtlasConfig::fast()).unwrap();
        Session::with_engine(engine)
    }

    #[test]
    fn tokens_are_unique_and_resolvable() {
        let manager = SessionManager::new(Duration::from_secs(60), 16);
        let a = manager.create("census", session(), 0);
        let b = manager.create("census", session(), 0);
        assert_ne!(a, b);
        assert!(manager.get(&a).is_some());
        assert!(manager.get(&b).is_some());
        assert!(manager.get("sdeadbeef").is_none());
        assert_eq!(manager.counters().live, 2);
        assert_eq!(manager.counters().created, 2);
    }

    #[test]
    fn ttl_eviction_removes_idle_sessions() {
        let manager = SessionManager::new(Duration::from_millis(30), 16);
        let token = manager.create("census", session(), 0);
        assert!(manager.get(&token).is_some());
        std::thread::sleep(Duration::from_millis(60));
        // Either path notices the expiry: an explicit sweep or a lookup.
        assert_eq!(manager.evict_expired(), 1);
        assert!(manager.get(&token).is_none());
        assert_eq!(manager.counters().live, 0);
        assert_eq!(manager.counters().evicted, 1);
    }

    #[test]
    fn lookup_of_an_expired_token_evicts_it() {
        let manager = SessionManager::new(Duration::from_millis(30), 16);
        let token = manager.create("census", session(), 0);
        std::thread::sleep(Duration::from_millis(60));
        assert!(manager.get(&token).is_none());
        assert_eq!(manager.counters().evicted, 1);
    }

    #[test]
    fn capacity_evicts_the_least_recently_used_session() {
        let manager = SessionManager::new(Duration::from_secs(60), 2);
        let a = manager.create("census", session(), 0);
        let b = manager.create("census", session(), 0);
        // Touch `a` so `b` becomes the LRU victim.
        std::thread::sleep(Duration::from_millis(5));
        assert!(manager.get(&a).is_some());
        let c = manager.create("census", session(), 0);
        assert!(manager.get(&a).is_some(), "recently used survives");
        assert!(manager.get(&b).is_none(), "LRU session was evicted");
        assert!(manager.get(&c).is_some());
        assert_eq!(manager.counters().live, 2);
    }

    #[test]
    fn lru_victim_tie_break_does_not_depend_on_iteration_order() {
        // Regression: ties on `last_used` used to be broken by HashMap
        // iteration order, so the evicted session varied per process.
        let now = Instant::now();
        let forward = [("s2".to_string(), now), ("s1".to_string(), now)];
        let reverse = [("s1".to_string(), now), ("s2".to_string(), now)];
        assert_eq!(lru_victim(forward.into_iter()), Some("s1".to_string()));
        assert_eq!(lru_victim(reverse.into_iter()), Some("s1".to_string()));
        // A strictly older session still wins over the token order.
        let older = now - Duration::from_millis(10);
        let mixed = [("s1".to_string(), now), ("s9".to_string(), older)];
        assert_eq!(lru_victim(mixed.into_iter()), Some("s9".to_string()));
        assert_eq!(lru_victim(std::iter::empty()), None);
    }

    #[test]
    fn remove_is_idempotent() {
        let manager = SessionManager::new(Duration::from_secs(60), 4);
        let token = manager.create("census", session(), 0);
        assert!(manager.remove(&token));
        assert!(!manager.remove(&token));
        assert!(manager.get(&token).is_none());
    }
}
