//! # atlas-serve
//!
//! The network front of the Atlas reproduction: a dependency-free,
//! concurrent exploration server that puts the prepared engine on the wire.
//!
//! The paper frames data maps as an *interactive* aid — a user submits a
//! query, gets maps back, drills into a region, goes back — and the engine
//! underneath was built for concurrent traffic (`Atlas` is `Send + Sync`,
//! prepared statistics ride `Arc`s, `Atlas::append` re-prepares
//! incrementally). This crate adds the missing subsystem between that engine
//! and a million impatient users:
//!
//! * [`http`] — a minimal HTTP/1.1 layer on `std::net::TcpListener`:
//!   request parsing, keep-alive, `Content-Length`-bounded bodies, defensive
//!   caps;
//! * [`wire`] — the hand-rolled JSON encoder/decoder; numbers round-trip
//!   bit-for-bit, so ranked-map scores survive the wire exactly;
//! * [`registry`] — datasets loaded at boot (CSV or the seeded generators),
//!   one prepared `Arc<Atlas>` each, plus a bounded LRU result cache and the
//!   incremental-append log;
//! * [`sessions`] — token-addressed [`atlas_explorer::Session`]s with TTL
//!   eviction, so `submit_sql` / `drill_down` / `back` work over the wire
//!   exactly as in-process;
//! * [`metrics`] — request counters and a latency histogram
//!   (`atlas_stats::histogram`) behind `GET /metrics`, in JSON or the
//!   Prometheus text format by `Accept` negotiation;
//! * [`trace`] — span ↔ JSON conversion for `GET /debug/traces`, the
//!   `?trace=1` inline tree, and shard span propagation (`atlas_obs`);
//! * [`server`] — accept loop, worker pool (`ATLAS_SERVE_THREADS`),
//!   admission control with `503` + `Retry-After` on overload, deadline
//!   propagation (`X-Atlas-Deadline-Ms` → `504` with work-done metadata),
//!   graceful shutdown;
//! * [`resilience`] — deadlines, [`RetryPolicy`] with deterministic seeded
//!   jitter, hedged reads, per-shard circuit breakers, and the [`Coverage`]
//!   metadata of degraded distributed answers;
//! * [`client`] — the small blocking client the tests, example and load
//!   generator use.
//!
//! ```no_run
//! use atlas_serve::{Registry, DatasetOptions, Server, ServeConfig};
//!
//! let mut registry = Registry::new();
//! registry.add_spec("census:20000", DatasetOptions::default()).unwrap();
//! let handle = Server::start(registry, ServeConfig::default()).unwrap();
//! println!("serving on http://{}", handle.addr());
//! handle.join(); // runs until killed
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod distributed;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod resilience;
pub mod server;
pub mod sessions;
mod shard;
pub mod trace;
pub mod wire;

pub use client::Client;
pub use distributed::{Coordinator, CoordinatorMetrics, CoordinatorOptions, DistributedResult};
pub use metrics::ServerMetrics;
pub use registry::{DatasetOptions, Registry};
pub use resilience::{
    CircuitConfig, CircuitState, Coverage, Deadline, ExploreMode, HedgePolicy, RetryPolicy,
};
pub use server::{ServeConfig, Server, ServerHandle};
pub use sessions::SessionManager;
pub use wire::Json;
