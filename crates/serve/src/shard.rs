//! The shard role of distributed exploration: push-down work over a segment
//! subset.
//!
//! A shard server is an ordinary `atlas-serve` process; every server answers
//! the `POST /shard/*` endpoints. The coordinator assigns each shard a set of
//! **global segment indices** and pushes the row-touching work of an explore
//! down to them: working-set evaluation, per-column summaries, quantile
//! sketches, numeric value runs, category counts, region partitioning, and
//! contingency-table counting. Every answer is **per segment**, so the
//! coordinator can fold partials in ascending global segment order and obtain
//! bit-identical results no matter how segments were assigned to shards.
//!
//! Shards are stateless with respect to the partitioning: requests carry the
//! segment indices and the (restricted SQL) queries, and the shard evaluates
//! them against cached single-segment views of its registry datasets. The
//! cache is keyed by dataset generation, so appends invalidate it naturally.
//!
//! `POST /shard/inject` is a fault-injection hook for tests. The legacy form
//! `{"delay_ms": N, "times": M}` delays the next M shard answers; the plan
//! form `{"plan": [{"fault": …}, …]}` arms a deterministic fault plan where
//! each subsequent shard request (the inject endpoint excepted) consumes the
//! next entry: `delay`, `refuse` (hang up unanswered), `error` (a synthetic
//! non-200), `truncate` (a prefix of the real answer), `garbage` (bytes that
//! are not HTTP), `kill` (hang up on everything until the next inject), or
//! `none` (answer normally). This is how the chaos suite drives every
//! coordinator failure path without real packet loss — deterministically,
//! from a seeded plan.

use crate::http::{self, Request, Response};
use crate::metrics::Endpoint;
use crate::registry::{Dataset, Registry};
use crate::wire::frames::{
    bitmap_to_json, contingency_to_json, get_items, get_str, hex_f64s, parse_hex_f64,
    parse_hex_f64s, sketch_to_json, summary_to_json,
};
use crate::wire::{self, Json};
use atlas_columnar::{Bitmap, DataType, Table};
use atlas_core::AtlasError;
use atlas_query::{parse_query, ConjunctiveQuery};
use atlas_stats::{ContingencyTable, GkSketch};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a shard endpoint answers: a normal HTTP response, raw bytes written
/// verbatim (truncated or garbled answers), or a silent hangup. Anything but
/// `Normal` closes the connection afterwards.
pub(crate) enum Reply {
    /// An ordinary HTTP response.
    Normal(Response),
    /// Write exactly these bytes, then close.
    Raw(Vec<u8>),
    /// Close the connection without writing a byte.
    Hangup,
}

impl From<Response> for Reply {
    fn from(response: Response) -> Reply {
        Reply::Normal(response)
    }
}

/// One entry of an armed fault plan, consumed by one shard request.
enum Fault {
    /// Answer normally (an explicit pass-through slot in a plan).
    None,
    /// Sleep this long, then answer normally.
    Delay(u64),
    /// Hang up without answering.
    Refuse,
    /// Answer a synthetic error with this status.
    Error(u16),
    /// Compute the real answer but send only `keep_per_mille`/1000 of its
    /// bytes, then close mid-body.
    Truncate(u16),
    /// Send bytes that are not HTTP.
    Garbage,
    /// Hang up now and on every later request until the next inject.
    Kill,
}

/// Per-server shard state: the single-segment table cache plus the
/// fault-injection knobs.
#[derive(Default)]
pub(crate) struct ShardState {
    /// dataset name → (generation, one single-segment table per global
    /// segment, in segment order).
    tables: Mutex<HashMap<String, SegmentTables>>,
    inject: Mutex<InjectState>,
}

/// One dataset's cached push-down view: the generation it was built from
/// and one single-segment table per global segment, in segment order.
type SegmentTables = (usize, Arc<Vec<Arc<Table>>>);

#[derive(Default)]
struct InjectState {
    /// Legacy knob: delay the next `times` answers by `delay_ms`.
    delay_ms: u64,
    times: u64,
    /// Armed fault plan; each request pops the front entry.
    plan: VecDeque<Fault>,
    /// Kill switch — a consumed [`Fault::Kill`] sets it; only the next
    /// inject clears it.
    dead: bool,
}

/// What the fault machinery decided before any real work: pass through
/// (possibly after a delay), or preempt with a raw outcome.
enum Preamble {
    Proceed,
    Preempt(Reply),
    /// Send a truncated prefix of the real answer (computed later).
    TruncateAnswer(u16),
}

impl ShardState {
    /// Consume one fault-plan entry (or the legacy delay) for a shard
    /// request. Called once per request before any real work.
    fn consume_fault(&self) -> Preamble {
        let decision = {
            let mut inject = match self.inject.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            if inject.dead {
                return Preamble::Preempt(Reply::Hangup);
            }
            match inject.plan.pop_front() {
                Some(fault) => fault,
                None => {
                    // Legacy path: each armed "time" delays one answer.
                    if inject.times > 0 {
                        inject.times -= 1;
                        Fault::Delay(inject.delay_ms)
                    } else {
                        Fault::None
                    }
                }
            }
        };
        match decision {
            Fault::None => Preamble::Proceed,
            Fault::Delay(ms) => {
                if ms > 0 {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                Preamble::Proceed
            }
            Fault::Refuse => Preamble::Preempt(Reply::Hangup),
            Fault::Error(status) => Preamble::Preempt(Reply::Normal(Response::error(
                status,
                "injected fault: synthetic shard error",
            ))),
            Fault::Truncate(keep_per_mille) => Preamble::TruncateAnswer(keep_per_mille),
            Fault::Garbage => {
                // Not an HTTP status line; the coordinator's parser must
                // reject it with a typed error, never hang.
                Preamble::Preempt(Reply::Raw(
                    b"\x00\x7fatlas-chaos garbage bytes\r\n\r\n".to_vec(),
                ))
            }
            Fault::Kill => {
                let mut inject = match self.inject.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                inject.dead = true;
                Preamble::Preempt(Reply::Hangup)
            }
        }
    }

    /// The dataset's segments as cached single-segment tables (one per global
    /// segment, named after the dataset so shipped queries parse against
    /// them), rebuilt when the dataset generation moves.
    fn segment_tables(&self, dataset: &Dataset) -> Result<Arc<Vec<Arc<Table>>>, AtlasError> {
        let (engine, generation) = dataset.snapshot();
        let mut cache = match self.tables.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some((cached_generation, tables)) = cache.get(dataset.name()) {
            if *cached_generation == generation {
                return Ok(Arc::clone(tables));
            }
        }
        let table = engine.table();
        let tables: Vec<Arc<Table>> = table
            .segments()
            .iter()
            .map(|segment| {
                Table::from_segments(
                    dataset.name(),
                    table.schema().clone(),
                    vec![Arc::clone(segment)],
                )
                .map(Arc::new)
                .map_err(AtlasError::from)
            })
            .collect::<Result<_, _>>()?;
        let tables = Arc::new(tables);
        cache.insert(
            dataset.name().to_string(),
            (generation, Arc::clone(&tables)),
        );
        Ok(tables)
    }
}

/// The `Endpoint` of a `/shard/<action>` path segment.
pub(crate) fn endpoint_of(action: &str) -> Option<Endpoint> {
    Some(match action {
        "meta" => Endpoint::ShardMeta,
        "working" => Endpoint::ShardWorking,
        "summaries" => Endpoint::ShardSummaries,
        "sketches" => Endpoint::ShardSketches,
        "values" => Endpoint::ShardValues,
        "categories" => Endpoint::ShardCategories,
        "select" => Endpoint::ShardSelect,
        "contingency" => Endpoint::ShardContingency,
        "inject" => Endpoint::ShardInject,
        _ => return None,
    })
}

/// Serve one shard endpoint, applying any armed fault first (the inject
/// endpoint itself is never faulted, so a test can always re-arm or revive
/// a killed shard).
pub(crate) fn handle(
    registry: &Registry,
    state: &ShardState,
    endpoint: Endpoint,
    request: &Request,
) -> Reply {
    let body = match request.body_text() {
        Some(text) if !text.trim().is_empty() => match wire::parse(text) {
            Ok(json) => json,
            Err(error) => return Response::error(400, error.to_string()).into(),
        },
        _ => Json::object(Vec::<(String, Json)>::new()),
    };
    if endpoint == Endpoint::ShardInject {
        return inject(state, &body).into();
    }
    let truncate = match state.consume_fault() {
        Preamble::Preempt(reply) => return reply,
        Preamble::TruncateAnswer(keep_per_mille) => Some(keep_per_mille),
        Preamble::Proceed => None,
    };
    let shard_span = shard_span(endpoint, request);
    let mut response = answer(registry, state, endpoint, &body);
    if let Some(span) = shard_span {
        let trace_id = span.context().map(|ctx| ctx.trace_id);
        // Close the root before snapshotting so it is in the ring.
        drop(span);
        if let Some(trace_id) = trace_id {
            embed_shard_spans(&mut response, trace_id);
        }
    }
    match truncate {
        None => Reply::Normal(response),
        Some(keep_per_mille) => {
            let mut bytes = Vec::new();
            // Writing to a Vec cannot fail.
            let _ = http::write_response(&mut bytes, &response, false);
            let keep = bytes
                .len()
                .saturating_mul(usize::from(keep_per_mille.min(1000)))
                / 1000;
            bytes.truncate(keep);
            Reply::Raw(bytes)
        }
    }
}

/// When the coordinator sent an `x-atlas-trace-id` header and tracing is on,
/// open a **fresh local** root span for this shard request. The local trace
/// id is never the coordinator's: in-process shard servers share one process
/// tracer, and reusing the remote id would interleave several shards' spans
/// into one trace. The remote id rides along as an attribute instead, and
/// the coordinator re-parents the returned spans under its own call span.
fn shard_span(endpoint: Endpoint, request: &Request) -> Option<atlas_obs::SpanGuard> {
    let remote = request.header(http::TRACE_HEADER)?;
    if !atlas_obs::enabled() {
        return None;
    }
    let mut span = atlas_obs::span_root("shard.request");
    span.attr("endpoint", endpoint.label());
    span.attr("remote_trace", remote);
    Some(span)
}

/// Append this shard request's recorded spans to a successful answer as a
/// top-level `"spans"` member, for the coordinator to reassemble. Non-200
/// answers (and non-JSON bodies) travel unchanged.
fn embed_shard_spans(response: &mut Response, trace_id: u64) {
    if response.status != 200 {
        return;
    }
    let spans = atlas_obs::tracer().trace(trace_id);
    if spans.is_empty() {
        return;
    }
    let Ok(text) = std::str::from_utf8(&response.body) else {
        return;
    };
    let Ok(mut body) = wire::parse(text) else {
        return;
    };
    if let Json::Obj(members) = &mut body {
        members.push(("spans".to_string(), crate::trace::spans_to_json(&spans)));
        response.body = body.encode().into_bytes();
    }
}

/// Compute the real answer of one shard data endpoint.
fn answer(registry: &Registry, state: &ShardState, endpoint: Endpoint, body: &Json) -> Response {
    let dataset = match resolve_dataset(registry, body) {
        Ok(dataset) => dataset,
        Err(response) => return response,
    };
    if endpoint == Endpoint::ShardMeta {
        return meta(dataset);
    }
    let tables = match state.segment_tables(dataset) {
        Ok(tables) => tables,
        Err(error) => return crate::server::error_response(&error),
    };
    let run = match endpoint {
        Endpoint::ShardWorking => working(&tables, body),
        Endpoint::ShardSummaries => summaries(&tables, body),
        Endpoint::ShardSketches => sketches(&tables, body),
        Endpoint::ShardValues => values(&tables, body),
        Endpoint::ShardCategories => categories(&tables, body),
        Endpoint::ShardSelect => select(&tables, body),
        Endpoint::ShardContingency => contingency(&tables, body),
        _ => return Response::error(404, "unknown shard endpoint"),
    };
    match run {
        Ok(response) => response,
        Err(Fail::Frame(message)) => Response::error(400, message),
        Err(Fail::Engine(error)) => crate::server::error_response(&error),
    }
}

/// Why a shard request failed: a malformed frame (the coordinator's fault,
/// `400`) or an engine error while computing the answer.
enum Fail {
    Frame(String),
    Engine(AtlasError),
}

impl From<String> for Fail {
    fn from(message: String) -> Fail {
        Fail::Frame(message)
    }
}

impl From<AtlasError> for Fail {
    fn from(error: AtlasError) -> Fail {
        Fail::Engine(error)
    }
}

fn resolve_dataset<'a>(registry: &'a Registry, body: &Json) -> Result<&'a Dataset, Response> {
    match body.get("dataset").and_then(Json::str) {
        Some(name) => registry
            .get(name)
            .ok_or_else(|| Response::error(404, format!("no dataset named '{name}'"))),
        None => match registry.datasets() {
            [only] => Ok(only),
            _ => Err(Response::error(
                400,
                "several datasets are served; pass {\"dataset\": name}",
            )),
        },
    }
}

/// Arm the fault machinery. Any inject call — either form — revives a
/// killed shard and replaces whatever was armed before.
fn inject(state: &ShardState, body: &Json) -> Response {
    if let Some(items) = body.get("plan").and_then(Json::items) {
        let mut plan = VecDeque::with_capacity(items.len());
        for entry in items {
            match parse_fault(entry) {
                Ok(fault) => plan.push_back(fault),
                Err(message) => return Response::error(400, message),
            }
        }
        let armed = plan.len();
        let mut inject = match state.inject.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inject.dead = false;
        inject.delay_ms = 0;
        inject.times = 0;
        inject.plan = plan;
        return Response::json(
            200,
            &Json::object(vec![
                ("armed", Json::from(armed)),
                ("dead", Json::from(false)),
            ]),
        );
    }
    let delay_ms = body.get("delay_ms").and_then(Json::index).unwrap_or(0) as u64;
    let times = body.get("times").and_then(Json::index).unwrap_or(0) as u64;
    let mut inject = match state.inject.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    inject.dead = false;
    inject.plan.clear();
    inject.delay_ms = delay_ms;
    inject.times = times;
    Response::json(
        200,
        &Json::object(vec![
            ("delay_ms", Json::from(delay_ms)),
            ("times", Json::from(times)),
        ]),
    )
}

/// Parse one fault-plan entry.
fn parse_fault(entry: &Json) -> Result<Fault, String> {
    let kind = entry
        .get("fault")
        .and_then(Json::str)
        .ok_or_else(|| "plan entry without a \"fault\" member".to_string())?;
    Ok(match kind {
        "none" => Fault::None,
        "delay" => Fault::Delay(entry.get("ms").and_then(Json::index).unwrap_or(0) as u64),
        "refuse" => Fault::Refuse,
        "error" => {
            let status = entry.get("status").and_then(Json::index).unwrap_or(500);
            if !(400..=599).contains(&status) {
                return Err(format!(
                    "error fault status {status} out of range (400..=599)"
                ));
            }
            Fault::Error(status as u16)
        }
        "truncate" => {
            let keep = entry
                .get("keep_per_mille")
                .and_then(Json::index)
                .unwrap_or(500);
            if keep > 1000 {
                return Err(format!(
                    "truncate keep_per_mille {keep} out of range (0..=1000)"
                ));
            }
            Fault::Truncate(keep as u16)
        }
        "garbage" => Fault::Garbage,
        "kill" => Fault::Kill,
        other => return Err(format!("unknown fault kind '{other}'")),
    })
}

fn meta(dataset: &Dataset) -> Response {
    let (engine, generation) = dataset.snapshot();
    let table = engine.table();
    Response::json(
        200,
        &Json::object(vec![
            ("dataset", Json::from(dataset.name())),
            ("generation", Json::from(generation)),
            ("num_rows", Json::from(table.num_rows())),
            (
                "segments",
                Json::array(
                    table
                        .segments()
                        .iter()
                        .map(|s| Json::from(s.num_rows()))
                        .collect(),
                ),
            ),
            (
                "fields",
                Json::array(
                    table
                        .schema()
                        .fields()
                        .iter()
                        .map(|f| {
                            Json::object(vec![
                                ("name", Json::from(f.name.as_str())),
                                ("dtype", Json::from(f.dtype.name())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    )
}

/// The common preamble of the data endpoints: the parsed query plus the
/// requested global segment indices, validated against the segment count.
fn query_and_segments(
    tables: &[Arc<Table>],
    body: &Json,
) -> Result<(ConjunctiveQuery, Vec<usize>), Fail> {
    let sql = get_str(body, "sql")?;
    let query = parse_query(sql).map_err(AtlasError::from)?;
    let segments = segment_list(tables, body)?;
    Ok((query, segments))
}

fn segment_list(tables: &[Arc<Table>], body: &Json) -> Result<Vec<usize>, Fail> {
    let items = get_items(body, "segments")?;
    items
        .iter()
        .map(|item| {
            let idx = item
                .index()
                .ok_or_else(|| "non-integral segment index".to_string())?;
            if idx >= tables.len() {
                return Err(Fail::Frame(format!(
                    "segment {idx} out of range (dataset has {})",
                    tables.len()
                )));
            }
            Ok(idx)
        })
        .collect()
}

/// Evaluate the shipped query on one single-segment table: the bitmap of the
/// working set's rows restricted to that segment, in segment-local indices.
fn local_working(query: &ConjunctiveQuery, table: &Table) -> Result<Bitmap, AtlasError> {
    Ok(atlas_query::evaluate(query, table)?)
}

fn partials_response(partials: Vec<Json>) -> Response {
    Response::json(
        200,
        &Json::object(vec![("partials", Json::array(partials))]),
    )
}

fn working(tables: &[Arc<Table>], body: &Json) -> Result<Response, Fail> {
    let (query, segments) = query_and_segments(tables, body)?;
    let mut partials = Vec::with_capacity(segments.len());
    for seg in segments {
        // lint: slice-index-ok (segment_list rejected indices >= tables.len())
        let local = local_working(&query, &tables[seg])?;
        partials.push(Json::object(vec![
            ("segment", Json::from(seg)),
            ("count", Json::from(local.count())),
            ("bitmap", bitmap_to_json(&local)),
        ]));
    }
    Ok(partials_response(partials))
}

fn summaries(tables: &[Arc<Table>], body: &Json) -> Result<Response, Fail> {
    let (query, segments) = query_and_segments(tables, body)?;
    let mut partials = Vec::with_capacity(segments.len());
    for seg in segments {
        // lint: slice-index-ok (segment_list rejected indices >= tables.len())
        let table = &tables[seg];
        let local = local_working(&query, table)?;
        let columns = table
            .schema()
            .fields()
            .iter()
            .map(|field| {
                let view = table.column(&field.name).map_err(AtlasError::from)?;
                Ok(summary_to_json(&view.summary(&local).to_parts()))
            })
            .collect::<Result<Vec<_>, Fail>>()?;
        partials.push(Json::object(vec![
            ("segment", Json::from(seg)),
            ("columns", Json::array(columns)),
        ]));
    }
    Ok(partials_response(partials))
}

fn sketches(tables: &[Arc<Table>], body: &Json) -> Result<Response, Fail> {
    let epsilon = parse_hex_f64(get_str(body, "epsilon")?)?;
    if !(epsilon > 0.0 && epsilon < 0.5) {
        return Err(Fail::Frame(format!(
            "sketch epsilon must be a finite value in (0, 0.5), got {epsilon}"
        )));
    }
    let attributes: Vec<&str> = get_items(body, "attributes")?
        .iter()
        .map(|a| a.str().ok_or_else(|| "non-string attribute".to_string()))
        .collect::<Result<_, _>>()?;
    let segments = segment_list(tables, body)?;
    let mut partials = Vec::with_capacity(segments.len());
    for seg in segments {
        // lint: slice-index-ok (segment_list rejected indices >= tables.len())
        let table = &tables[seg];
        // Profile sketches cover the **whole** segment (they are only ever
        // consulted for working sets that cover the table).
        let full = Bitmap::new_full(table.num_rows());
        let sketches = attributes
            .iter()
            .map(|attribute| {
                let view = table.column(attribute).map_err(AtlasError::from)?;
                if !matches!(view.data_type(), DataType::Int | DataType::Float) {
                    return Err(Fail::Frame(format!(
                        "attribute '{attribute}' is not numeric"
                    )));
                }
                let mut sketch = GkSketch::new(epsilon);
                sketch.extend(&view.numeric_values_where(&full));
                Ok(sketch_to_json(&sketch))
            })
            .collect::<Result<Vec<_>, Fail>>()?;
        partials.push(Json::object(vec![
            ("segment", Json::from(seg)),
            ("sketches", Json::array(sketches)),
        ]));
    }
    Ok(partials_response(partials))
}

fn values(tables: &[Arc<Table>], body: &Json) -> Result<Response, Fail> {
    let (query, segments) = query_and_segments(tables, body)?;
    let attribute = get_str(body, "attribute")?;
    let mut partials = Vec::with_capacity(segments.len());
    for seg in segments {
        // lint: slice-index-ok (segment_list rejected indices >= tables.len())
        let table = &tables[seg];
        let local = local_working(&query, table)?;
        let view = table.column(attribute).map_err(AtlasError::from)?;
        partials.push(Json::object(vec![
            ("segment", Json::from(seg)),
            (
                "values",
                Json::from(hex_f64s(&view.numeric_values_where(&local))),
            ),
        ]));
    }
    Ok(partials_response(partials))
}

fn categories(tables: &[Arc<Table>], body: &Json) -> Result<Response, Fail> {
    let (query, segments) = query_and_segments(tables, body)?;
    let attribute = get_str(body, "attribute")?;
    let mut partials = Vec::with_capacity(segments.len());
    for seg in segments {
        // lint: slice-index-ok (segment_list rejected indices >= tables.len())
        let table = &tables[seg];
        let local = local_working(&query, table)?;
        let view = table.column(attribute).map_err(AtlasError::from)?;
        let counts = view
            .category_counts(&local)
            .into_iter()
            .map(|(value, count)| Json::array(vec![Json::from(value), Json::from(count)]))
            .collect();
        let dictionary = view
            .dictionary()
            .into_iter()
            .map(Json::from)
            .collect::<Vec<_>>();
        partials.push(Json::object(vec![
            ("segment", Json::from(seg)),
            ("counts", Json::array(counts)),
            ("dictionary", Json::array(dictionary)),
        ]));
    }
    Ok(partials_response(partials))
}

fn select(tables: &[Arc<Table>], body: &Json) -> Result<Response, Fail> {
    let (query, segments) = query_and_segments(tables, body)?;
    let attribute = get_str(body, "attribute")?;
    enum Partition {
        Ranges(Vec<(f64, f64)>),
        Groups(Vec<Vec<String>>),
    }
    let partition = match get_str(body, "kind")? {
        "ranges" => {
            // Bounds travel as one hex run of (lo, hi) bit-pattern pairs.
            let flat = parse_hex_f64s(get_str(body, "bounds")?)?;
            if flat.len() % 2 != 0 {
                return Err(Fail::Frame("odd number of range bounds".to_string()));
            }
            // lint: slice-index-ok (chunks_exact(2) yields exactly two elements per chunk)
            Partition::Ranges(flat.chunks_exact(2).map(|c| (c[0], c[1])).collect())
        }
        "groups" => {
            let groups = get_items(body, "groups")?
                .iter()
                .map(|group| {
                    group
                        .items()
                        .ok_or_else(|| "non-array value group".to_string())?
                        .iter()
                        .map(|v| {
                            v.str()
                                .map(String::from)
                                .ok_or_else(|| "non-string group value".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            Partition::Groups(groups)
        }
        other => return Err(Fail::Frame(format!("unknown partition kind '{other}'"))),
    };
    let mut partials = Vec::with_capacity(segments.len());
    for seg in segments {
        // lint: slice-index-ok (segment_list rejected indices >= tables.len())
        let table = &tables[seg];
        let local = local_working(&query, table)?;
        let view = table.column(attribute).map_err(AtlasError::from)?;
        let regions = match &partition {
            Partition::Ranges(bounds) => view.select_ranges(&local, bounds),
            Partition::Groups(groups) => view.select_in_groups(&local, groups),
        };
        partials.push(Json::object(vec![
            ("segment", Json::from(seg)),
            (
                "regions",
                Json::array(regions.iter().map(bitmap_to_json).collect()),
            ),
        ]));
    }
    Ok(partials_response(partials))
}

fn contingency(tables: &[Arc<Table>], body: &Json) -> Result<Response, Fail> {
    let maps: Vec<Vec<ConjunctiveQuery>> = get_items(body, "maps")?
        .iter()
        .map(|map| {
            map.items()
                .ok_or_else(|| "non-array map".to_string())?
                .iter()
                .map(|sql| {
                    let sql = sql
                        .str()
                        .ok_or_else(|| "non-string region SQL".to_string())?;
                    parse_query(sql).map_err(|e| Fail::Engine(e.into()))
                })
                .collect::<Result<Vec<_>, Fail>>()
        })
        .collect::<Result<_, Fail>>()?;
    let segments = segment_list(tables, body)?;
    let mut partials = Vec::with_capacity(segments.len());
    for seg in segments {
        // lint: slice-index-ok (segment_list rejected indices >= tables.len())
        let table = &tables[seg];
        // Region selections restricted to this segment, rebuilt from the
        // shipped region queries (region queries evaluate to exactly the
        // kernel-computed extents — pinned by the cut-primitive tests).
        let selections: Vec<Vec<Bitmap>> = maps
            .iter()
            .map(|regions| {
                regions
                    .iter()
                    .map(|query| local_working(query, table))
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, AtlasError>>()?;
        let mut pairs = Vec::new();
        for i in 0..selections.len() {
            for j in (i + 1)..selections.len() {
                // lint: slice-index-ok (i and j are loop-bounded by selections.len())
                let rows: Vec<&Bitmap> = selections[i].iter().collect();
                // lint: slice-index-ok (i and j are loop-bounded by selections.len())
                let cols: Vec<&Bitmap> = selections[j].iter().collect();
                let partial = ContingencyTable::from_selections(&rows, &cols);
                let mut members: Vec<(String, Json)> = vec![
                    ("a".to_string(), Json::from(i)),
                    ("b".to_string(), Json::from(j)),
                ];
                if let Json::Obj(fields) =
                    contingency_to_json(partial.num_rows(), partial.num_cols(), partial.counts())
                {
                    members.extend(fields);
                }
                pairs.push(Json::object(members));
            }
        }
        partials.push(Json::object(vec![
            ("segment", Json::from(seg)),
            ("pairs", Json::array(pairs)),
        ]));
    }
    Ok(partials_response(partials))
}
