//! Distributed scatter-gather exploration: a merging coordinator over shard
//! servers.
//!
//! A [`Coordinator`] partitions a dataset's segments across N shard servers
//! (ordinary `atlas-serve` processes answering the `POST /shard/*` endpoints)
//! and runs the Atlas pipeline with every row-touching kernel pushed down:
//!
//! 1. **working set** — the user query is evaluated per shard segment and the
//!    per-segment bitmaps are OR-folded at their global offsets;
//! 2. **candidates** — per-column statistics come back as mergeable
//!    [`atlas_columnar::ColumnSummary`] parts folded in ascending segment
//!    order (plus merged Greenwald–Khanna sketches for sketch-based cut
//!    strategies), and the single shared `CUT` body
//!    ([`atlas_core::cut_from_source`]) runs locally over a
//!    [`atlas_core::CutSource`] whose kernels scatter to the shards;
//! 3. **distances** — contingency tables of candidate-map pairs are counted
//!    per segment and summed cell-wise (exact `u64` adds), then scored
//!    locally with [`atlas_core::metric_of`];
//! 4. **clustering, merging, ranking** — run locally on the folded inputs,
//!    byte-for-byte the engine's own implementations.
//!
//! Every fold is deterministic (ascending global segment order) and every
//! pushed-down kernel reproduces its local counterpart exactly, so the ranked
//! maps are **bit-identical** — score bits, region SQL, region counts — to a
//! single-process [`atlas_core::Atlas::explore`] over the same table and
//! configuration, for *any* assignment of segments to shards. The
//! `tests/distributed.rs` property suite pins this.
//!
//! The coordinator assumes the engine's default pipeline stages with
//! [`MergeStrategy::Product`]; the composition merge re-cuts every region
//! locally and is rejected at [`Coordinator::connect`] time.
//!
//! ## Fault model
//!
//! Each shard request has a configurable timeout and is retried exactly once
//! on a transport error (connection refused/reset, timeout). A second failure
//! — or any non-`200` answer — fails the explore with a typed
//! [`AtlasError::Distributed`] naming the shard and the endpoint; the
//! coordinator never hangs and never returns a partial map.

use crate::client::Client;
use crate::wire::frames::{
    bitmap_from_json, contingency_from_json, dtype_from_name, get_index, get_items, get_str,
    hex_f64, hex_f64s, parse_hex_f64s, sketch_from_json, summary_from_json,
};
use crate::wire::Json;
use atlas_columnar::{
    merge_category_counts, rank_categories_by_frequency, Bitmap, ColumnStats, ColumnSummary,
    DataType,
};
use atlas_core::{
    cluster_maps_with_pool, cut_from_source, enforce_region_cap, metric_of, product_maps,
    rank_maps, AtlasConfig, AtlasError, CutSource, DistanceMatrix, MapResult, MergeStrategy,
    NumericCutStrategy, PhaseTimings, ThreadPool,
};
use atlas_query::{to_sql, ConjunctiveQuery};
use atlas_stats::{ContingencyTable, GkSketch};
use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Scatter counters of one [`Coordinator`].
///
/// `fan_out` counts shard requests issued (one per shard with assigned
/// segments per scatter round), `retries` counts second attempts after a
/// transport error; both are monotone over the coordinator's lifetime.
#[derive(Debug)]
pub struct CoordinatorMetrics {
    fan_out: AtomicU64,
    retries: AtomicU64,
    per_shard: Vec<ShardLatency>,
}

#[derive(Debug)]
struct ShardLatency {
    addr: String,
    requests: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl CoordinatorMetrics {
    fn new(addrs: &[String]) -> CoordinatorMetrics {
        CoordinatorMetrics {
            fan_out: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            per_shard: addrs
                .iter()
                .map(|addr| ShardLatency {
                    addr: addr.clone(),
                    requests: AtomicU64::new(0),
                    total_micros: AtomicU64::new(0),
                    max_micros: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Total shard requests issued across all scatter rounds.
    pub fn fan_out(&self) -> u64 {
        self.fan_out.load(Ordering::Relaxed)
    }

    /// Total second attempts after a transport error.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn record(&self, shard: usize, elapsed: Duration) {
        // lint: slice-index-ok (callers index 0..shards.len(); per_shard is built one slot per shard)
        let lat = &self.per_shard[shard];
        let micros = elapsed.as_micros() as u64;
        lat.requests.fetch_add(1, Ordering::Relaxed);
        lat.total_micros.fetch_add(micros, Ordering::Relaxed);
        lat.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// A JSON snapshot: fan-out, retries, and per-shard request latency.
    pub fn snapshot(&self) -> Json {
        Json::object(vec![
            ("fan_out", Json::from(self.fan_out())),
            ("retries", Json::from(self.retries())),
            (
                "shards",
                Json::array(
                    self.per_shard
                        .iter()
                        .map(|lat| {
                            let requests = lat.requests.load(Ordering::Relaxed);
                            let total = lat.total_micros.load(Ordering::Relaxed);
                            let mean_ms = if requests == 0 {
                                0.0
                            } else {
                                total as f64 / requests as f64 / 1000.0
                            };
                            Json::object(vec![
                                ("addr", Json::from(lat.addr.as_str())),
                                ("requests", Json::from(requests)),
                                ("mean_ms", Json::from(mean_ms)),
                                (
                                    "max_ms",
                                    Json::from(
                                        lat.max_micros.load(Ordering::Relaxed) as f64 / 1000.0,
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[derive(Debug)]
struct ShardSlot {
    addr: String,
    client: Client,
    /// Global segment indices this shard answers for, ascending. May be
    /// empty, in which case the shard is skipped by every scatter.
    segments: Vec<usize>,
}

/// A shard's `/shard/meta` view: (generation, total rows, per-segment row
/// counts, schema fields) — unanimity across shards is required at connect.
type MetaView = (usize, usize, Vec<usize>, Vec<(String, DataType)>);

/// Gathered contingency counts: candidate-map pair → (rows, cols, cell
/// counts summed across segments).
type PairCounts = HashMap<(usize, usize), (usize, usize, Vec<u64>)>;

/// The merging coordinator of a distributed exploration (see the module
/// docs for the protocol and the determinism guarantee).
#[derive(Debug)]
pub struct Coordinator {
    dataset: String,
    config: AtlasConfig,
    shards: Vec<ShardSlot>,
    generation: usize,
    num_rows: usize,
    segment_rows: Vec<usize>,
    segment_offsets: Vec<usize>,
    fields: Vec<(String, DataType)>,
    pool: ThreadPool,
    metrics: CoordinatorMetrics,
}

fn dist_err(message: impl Into<String>) -> AtlasError {
    AtlasError::Distributed(message.into())
}

fn resolve_addr(addr: &str) -> Result<SocketAddr, AtlasError> {
    addr.to_socket_addrs()
        .map_err(|e| dist_err(format!("cannot resolve shard address '{addr}': {e}")))?
        .next()
        .ok_or_else(|| dist_err(format!("shard address '{addr}' resolves to nothing")))
}

impl Coordinator {
    /// Connect to the shard servers, fetch and cross-check their view of
    /// `dataset`, and assign segments contiguously (balanced within one
    /// segment) across the shards.
    ///
    /// Fails with [`AtlasError::InvalidConfig`] when the configuration does
    /// not validate or requests [`MergeStrategy::Composition`] (whose local
    /// re-cuts the coordinator does not push down), and with
    /// [`AtlasError::Distributed`] when a shard is unreachable or the shards
    /// disagree about the dataset (row count, segmentation, schema, or
    /// generation).
    pub fn connect(
        addrs: &[String],
        dataset: &str,
        config: AtlasConfig,
        timeout: Duration,
    ) -> Result<Coordinator, AtlasError> {
        config.validate()?;
        if config.merge == MergeStrategy::Composition {
            return Err(AtlasError::InvalidConfig(
                "distributed explore requires MergeStrategy::Product \
                 (composition re-cuts regions locally)"
                    .to_string(),
            ));
        }
        if addrs.is_empty() {
            return Err(dist_err("no shard addresses"));
        }
        let shards: Vec<ShardSlot> = addrs
            .iter()
            .map(|addr| {
                Ok(ShardSlot {
                    addr: addr.clone(),
                    client: Client::new(resolve_addr(addr)?).with_timeout(timeout),
                    segments: Vec::new(),
                })
            })
            .collect::<Result<_, AtlasError>>()?;
        let metrics = CoordinatorMetrics::new(addrs);
        let mut coordinator = Coordinator {
            dataset: dataset.to_string(),
            config,
            shards,
            generation: 0,
            num_rows: 0,
            segment_rows: Vec::new(),
            segment_offsets: Vec::new(),
            fields: Vec::new(),
            pool: ThreadPool::new(1),
            metrics,
        };
        coordinator.pool = ThreadPool::new(coordinator.config.parallelism);
        coordinator.fetch_meta()?;
        let num_segments = coordinator.segment_rows.len();
        let num_shards = coordinator.shards.len();
        // Contiguous balanced default: shard i takes ⌈n/N⌉ or ⌊n/N⌋ segments.
        let base = num_segments / num_shards;
        let extra = num_segments % num_shards;
        let mut next = 0usize;
        for (i, slot) in coordinator.shards.iter_mut().enumerate() {
            let take = base + usize::from(i < extra);
            slot.segments = (next..next + take).collect();
            next += take;
        }
        Ok(coordinator)
    }

    /// Replace the segment assignment. `assignment[i]` lists the global
    /// segment indices shard `i` answers for; the lists must form an exact
    /// partition of `0..num_segments` (empty lists are fine — those shards
    /// simply idle).
    pub fn with_assignment(
        mut self,
        assignment: Vec<Vec<usize>>,
    ) -> Result<Coordinator, AtlasError> {
        if assignment.len() != self.shards.len() {
            return Err(dist_err(format!(
                "assignment covers {} shards, the coordinator has {}",
                assignment.len(),
                self.shards.len()
            )));
        }
        let mut all: Vec<usize> = assignment.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..self.segment_rows.len()).collect();
        if all != expected {
            return Err(dist_err(format!(
                "assignment is not a partition of the {} segments",
                self.segment_rows.len()
            )));
        }
        for (slot, mut segments) in self.shards.iter_mut().zip(assignment) {
            segments.sort_unstable();
            slot.segments = segments;
        }
        Ok(self)
    }

    /// The dataset this coordinator explores.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The dataset generation the shards agreed on at connect time.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Number of segments of the distributed table.
    pub fn num_segments(&self) -> usize {
        self.segment_rows.len()
    }

    /// Total rows of the distributed table.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The current segment assignment, one list of global segment indices
    /// per shard.
    pub fn assignment(&self) -> Vec<Vec<usize>> {
        self.shards.iter().map(|s| s.segments.clone()).collect()
    }

    /// The scatter counters.
    pub fn metrics(&self) -> &CoordinatorMetrics {
        &self.metrics
    }

    /// Fetch `/shard/meta` from every shard and adopt their (unanimous) view
    /// of the dataset.
    fn fetch_meta(&mut self) -> Result<(), AtlasError> {
        let body = Json::object(vec![("dataset", Json::from(self.dataset.as_str()))]);
        let mut agreed: Option<MetaView> = None;
        for idx in 0..self.shards.len() {
            let reply = self.call(idx, "/shard/meta", &body)?;
            let generation = get_index(&reply, "generation").map_err(dist_err)?;
            let num_rows = get_index(&reply, "num_rows").map_err(dist_err)?;
            let segments = get_items(&reply, "segments")
                .map_err(dist_err)?
                .iter()
                .map(|s| s.index().ok_or_else(|| dist_err("bad segment row count")))
                .collect::<Result<Vec<_>, _>>()?;
            let fields = get_items(&reply, "fields")
                .map_err(dist_err)?
                .iter()
                .map(|f| {
                    let name = get_str(f, "name").map_err(dist_err)?.to_string();
                    let dtype = dtype_from_name(get_str(f, "dtype").map_err(dist_err)?)
                        .map_err(dist_err)?;
                    Ok((name, dtype))
                })
                .collect::<Result<Vec<_>, AtlasError>>()?;
            let view = (generation, num_rows, segments, fields);
            match &agreed {
                None => agreed = Some(view),
                Some(first) if *first == view => {}
                Some(_) => {
                    return Err(dist_err(format!(
                        "shard {} disagrees about dataset '{}' (generation, rows, \
                         segmentation or schema)",
                        // lint: slice-index-ok (idx enumerates self.shards)
                        self.shards[idx].addr,
                        self.dataset
                    )));
                }
            }
        }
        let (generation, num_rows, segment_rows, fields) = agreed
            .ok_or_else(|| dist_err("no shard answered the metadata probe; none are connected"))?;
        self.generation = generation;
        self.num_rows = num_rows;
        self.segment_offsets = segment_rows
            .iter()
            .scan(0usize, |acc, rows| {
                let offset = *acc;
                *acc += rows;
                Some(offset)
            })
            .collect();
        self.segment_rows = segment_rows;
        self.fields = fields;
        Ok(())
    }

    /// One shard request with the retry-once fault policy: a transport error
    /// (refused connection, reset, timeout) is retried exactly once; a second
    /// transport error or any non-`200` answer fails with a typed error.
    fn call(&self, shard: usize, path: &str, body: &Json) -> Result<Json, AtlasError> {
        // lint: slice-index-ok (callers index 0..shards.len())
        let slot = &self.shards[shard];
        self.metrics.fan_out.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let attempt = slot.client.post_json(path, body).or_else(|_| {
            self.metrics.retries.fetch_add(1, Ordering::Relaxed);
            slot.client.post_json(path, body)
        });
        self.metrics.record(shard, started.elapsed());
        let response =
            attempt.map_err(|e| dist_err(format!("shard {} failed on {path}: {e}", slot.addr)))?;
        let json = response.json();
        if response.status != 200 {
            let detail = json
                .as_ref()
                .and_then(|j| j.get("error").and_then(Json::str).map(String::from))
                .unwrap_or_else(|| "no error body".to_string());
            return Err(dist_err(format!(
                "shard {} answered {} on {path}: {detail}",
                slot.addr, response.status
            )));
        }
        json.ok_or_else(|| dist_err(format!("shard {} sent non-JSON on {path}", slot.addr)))
    }

    /// Scatter one endpoint to every shard with assigned segments (in
    /// parallel, one thread per shard) and gather the `partials` arrays
    /// sorted by ascending global segment index. The result holds exactly
    /// one entry per segment of the table.
    fn scatter(
        &self,
        path: &str,
        body_of: impl Fn(&[usize]) -> Json + Sync,
    ) -> Result<Vec<Json>, AtlasError> {
        let live: Vec<usize> = (0..self.shards.len())
            // lint: slice-index-ok (i ranges over 0..shards.len())
            .filter(|&i| !self.shards[i].segments.is_empty())
            .collect();
        let replies: Vec<Result<Json, AtlasError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = live
                .iter()
                .map(|&idx| {
                    let body_of = &body_of;
                    // lint: slice-index-ok (idx comes from live, a subset of 0..shards.len())
                    scope.spawn(move || self.call(idx, path, &body_of(&self.shards[idx].segments)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(dist_err("scatter thread panicked")))
                })
                .collect()
        });
        let mut partials: Vec<(usize, Json)> = Vec::with_capacity(self.segment_rows.len());
        for reply in replies {
            let reply = reply?;
            for partial in get_items(&reply, "partials").map_err(dist_err)? {
                let segment = get_index(partial, "segment").map_err(dist_err)?;
                if segment >= self.segment_rows.len() {
                    return Err(dist_err(format!(
                        "shard answered for unknown segment {segment}"
                    )));
                }
                partials.push((segment, partial.clone()));
            }
        }
        partials.sort_by_key(|(segment, _)| *segment);
        let segments: Vec<usize> = partials.iter().map(|(segment, _)| *segment).collect();
        let expected: Vec<usize> = (0..self.segment_rows.len()).collect();
        if segments != expected {
            return Err(dist_err(format!(
                "scatter on {path} gathered segments {segments:?}, expected every one of 0..{}",
                self.segment_rows.len()
            )));
        }
        Ok(partials.into_iter().map(|(_, partial)| partial).collect())
    }

    /// The request body shared by the per-working-set endpoints.
    fn data_body(&self, sql: &str, segments: &[usize], rest: Vec<(&str, Json)>) -> Json {
        let mut members = vec![
            ("dataset", Json::from(self.dataset.as_str())),
            ("sql", Json::from(sql)),
            (
                "segments",
                Json::array(segments.iter().map(|&s| Json::from(s)).collect()),
            ),
        ];
        members.extend(rest);
        Json::object(members)
    }

    /// Gather a per-segment bitmap member into one table-wide bitmap.
    fn fold_bitmaps(&self, partials: &[(usize, Bitmap)]) -> Result<Bitmap, AtlasError> {
        let mut folded = Bitmap::new_empty(self.num_rows);
        for (segment, bitmap) in partials {
            // lint: slice-index-ok (scatter validated segment < segment_rows.len(); offsets has the same len)
            if bitmap.len() != self.segment_rows[*segment] {
                return Err(dist_err(format!(
                    "segment {segment} bitmap has {} rows, expected {}",
                    bitmap.len(),
                    // lint: slice-index-ok (same scatter-validated segment)
                    self.segment_rows[*segment]
                )));
            }
            // lint: slice-index-ok (same scatter-validated segment)
            folded.or_shifted(bitmap, self.segment_offsets[*segment]);
        }
        Ok(folded)
    }

    /// Scatter the working-set evaluation and fold the global bitmap.
    fn fetch_working(&self, sql: &str) -> Result<Bitmap, AtlasError> {
        let partials = self.scatter("/shard/working", |segments| {
            self.data_body(sql, segments, Vec::new())
        })?;
        let bitmaps = partials
            .iter()
            .enumerate()
            .map(|(segment, partial)| {
                let bitmap = partial
                    .get("bitmap")
                    .ok_or_else(|| "partial without a bitmap".to_string())
                    .and_then(bitmap_from_json)
                    .map_err(dist_err)?;
                Ok((segment, bitmap))
            })
            .collect::<Result<Vec<_>, AtlasError>>()?;
        self.fold_bitmaps(&bitmaps)
    }

    /// Scatter the per-column summaries of the working set and fold them in
    /// ascending segment order — exactly the fold of
    /// [`atlas_columnar::ColumnView::summary`] and of the engine's table
    /// profile, so the collapsed [`ColumnStats`] match the local path bit
    /// for bit.
    fn fetch_summaries(&self, sql: &str) -> Result<Vec<ColumnSummary>, AtlasError> {
        let partials = self.scatter("/shard/summaries", |segments| {
            self.data_body(sql, segments, Vec::new())
        })?;
        let mut folded: Vec<ColumnSummary> = self
            .fields
            .iter()
            .map(|(_, dtype)| ColumnSummary::empty(*dtype))
            .collect();
        for partial in &partials {
            let columns = get_items(partial, "columns").map_err(dist_err)?;
            if columns.len() != self.fields.len() {
                return Err(dist_err(format!(
                    "summaries partial has {} columns, schema has {}",
                    columns.len(),
                    self.fields.len()
                )));
            }
            for (acc, column) in folded.iter_mut().zip(columns) {
                let parts = summary_from_json(column).map_err(dist_err)?;
                if parts.dtype != acc.dtype() {
                    return Err(dist_err("summary dtype does not match the schema"));
                }
                acc.merge_from(&ColumnSummary::from_parts(parts));
            }
        }
        Ok(folded)
    }

    /// Scatter whole-segment quantile sketches of the numeric attributes and
    /// merge them in ascending segment order — the table-profile fold.
    fn fetch_sketches(
        &self,
        attributes: &[&str],
        epsilon: f64,
    ) -> Result<HashMap<String, GkSketch>, AtlasError> {
        if attributes.is_empty() {
            return Ok(HashMap::new());
        }
        let partials = self.scatter("/shard/sketches", |segments| {
            Json::object(vec![
                ("dataset", Json::from(self.dataset.as_str())),
                ("epsilon", Json::from(hex_f64(epsilon))),
                (
                    "attributes",
                    Json::array(attributes.iter().map(|&a| Json::from(a)).collect()),
                ),
                (
                    "segments",
                    Json::array(segments.iter().map(|&s| Json::from(s)).collect()),
                ),
            ])
        })?;
        let mut folded: Vec<GkSketch> = attributes.iter().map(|_| GkSketch::new(epsilon)).collect();
        for partial in &partials {
            let sketches = get_items(partial, "sketches").map_err(dist_err)?;
            if sketches.len() != attributes.len() {
                return Err(dist_err(
                    "sketches partial does not match the attribute list",
                ));
            }
            for (acc, sketch) in folded.iter_mut().zip(sketches) {
                acc.merge(&sketch_from_json(sketch).map_err(dist_err)?);
            }
        }
        Ok(attributes
            .iter()
            .map(|&a| a.to_string())
            .zip(folded)
            .collect())
    }

    /// Scatter the contingency-table counts of every candidate-map pair and
    /// sum them cell-wise (exact integer adds across segments).
    fn fetch_pair_counts(&self, maps: &[atlas_core::DataMap]) -> Result<PairCounts, AtlasError> {
        let map_sqls: Vec<Json> = maps
            .iter()
            .map(|map| {
                Json::array(
                    map.regions
                        .iter()
                        .map(|region| Json::from(to_sql(&region.query)))
                        .collect(),
                )
            })
            .collect();
        let partials = self.scatter("/shard/contingency", |segments| {
            Json::object(vec![
                ("dataset", Json::from(self.dataset.as_str())),
                ("maps", Json::array(map_sqls.clone())),
                (
                    "segments",
                    Json::array(segments.iter().map(|&s| Json::from(s)).collect()),
                ),
            ])
        })?;
        let mut folded: HashMap<(usize, usize), (usize, usize, Vec<u64>)> = HashMap::new();
        for partial in &partials {
            for pair in get_items(partial, "pairs").map_err(dist_err)? {
                let a = get_index(pair, "a").map_err(dist_err)?;
                let b = get_index(pair, "b").map_err(dist_err)?;
                let (rows, cols, counts) = contingency_from_json(pair).map_err(dist_err)?;
                match folded.get_mut(&(a, b)) {
                    None => {
                        folded.insert((a, b), (rows, cols, counts));
                    }
                    Some((acc_rows, acc_cols, acc)) => {
                        if (*acc_rows, *acc_cols) != (rows, cols) || acc.len() != counts.len() {
                            return Err(dist_err(format!(
                                "contingency dimensions of pair ({a}, {b}) differ across segments"
                            )));
                        }
                        for (cell, add) in acc.iter_mut().zip(&counts) {
                            *cell += add;
                        }
                    }
                }
            }
        }
        Ok(folded)
    }

    /// Run one distributed exploration step.
    ///
    /// Bit-identical to [`atlas_core::Atlas::explore`] with the same table
    /// and configuration (see the module docs); errors exactly like it on an
    /// empty working set ([`AtlasError::EmptyWorkingSet`]) or when nothing
    /// can be cut ([`AtlasError::NoCuttableAttributes`]), and with
    /// [`AtlasError::Distributed`] when a shard misbehaves.
    pub fn explore(&self, query: &ConjunctiveQuery) -> Result<MapResult, AtlasError> {
        let total_start = Instant::now();
        let mut query = query.clone();
        if query.table.is_empty() {
            query.table = self.dataset.clone();
        }
        let sql = to_sql(&query);

        let phase = Instant::now();
        let working = self.fetch_working(&sql)?;
        let query_ms = phase.elapsed().as_secs_f64() * 1e3;
        let working_count = working.count();
        if working_count == 0 {
            return Err(AtlasError::EmptyWorkingSet);
        }

        // Candidate generation: folded stats + the shared CUT body over the
        // scattering source.
        let phase = Instant::now();
        let covering = working_count == self.num_rows;
        let summaries = self.fetch_summaries(&sql)?;
        let names: Vec<String> = match &self.config.attributes {
            Some(list) => list.clone(),
            None => self.fields.iter().map(|(name, _)| name.clone()).collect(),
        };
        // Prebuilt whole-table sketches are only consulted for covering
        // working sets (the table-profile path of the local engine).
        let sketches = match self.config.cut.numeric {
            NumericCutStrategy::SketchMedian { epsilon } if covering => {
                let numeric: Vec<&str> = names
                    .iter()
                    .filter(|name| {
                        self.fields.iter().any(|(n, dtype)| {
                            n == *name && matches!(dtype, DataType::Int | DataType::Float)
                        })
                    })
                    .map(String::as_str)
                    .collect();
                self.fetch_sketches(&numeric, epsilon)?
            }
            _ => HashMap::new(),
        };
        let source = RemoteSource {
            coordinator: self,
            sql: &sql,
        };
        let mut maps = Vec::new();
        let mut skipped = Vec::new();
        for name in &names {
            let stats = self.stats_of(&summaries, name)?;
            let sketch = sketches.get(name.as_str());
            match cut_from_source(&source, &query, name, &self.config.cut, &stats, sketch)? {
                Some(map) => maps.push(map),
                None => skipped.push(name.clone()),
            }
        }
        let candidates_ms = phase.elapsed().as_secs_f64() * 1e3;
        if maps.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }

        // Distances from segment-summed contingency tables, then the
        // engine's own clustering.
        let phase = Instant::now();
        let mut matrix = DistanceMatrix::zeros(maps.len());
        if maps.len() > 1 {
            let mut pair_counts = self.fetch_pair_counts(&maps)?;
            for i in 0..maps.len() {
                for j in (i + 1)..maps.len() {
                    let (rows, cols, counts) = pair_counts.remove(&(i, j)).ok_or_else(|| {
                        dist_err(format!("no contingency counts for pair ({i}, {j})"))
                    })?;
                    // lint: slice-index-ok (i and j are loop-bounded by maps.len())
                    if rows != maps[i].num_regions() || cols != maps[j].num_regions() {
                        return Err(dist_err(format!(
                            "contingency of pair ({i}, {j}) is {rows}x{cols}, maps have {}x{} regions",
                            // lint: slice-index-ok (same loop-bounded i and j)
                            maps[i].num_regions(),
                            // lint: slice-index-ok (same loop-bounded i and j)
                            maps[j].num_regions()
                        )));
                    }
                    let table = ContingencyTable::from_counts(rows, cols, counts);
                    matrix.set(i, j, metric_of(&table, self.config.distance));
                }
            }
        }
        let clusters = cluster_maps_with_pool(&matrix, &self.config.clustering, &self.pool)?;
        let clustering_ms = phase.elapsed().as_secs_f64() * 1e3;

        // Product merge + region cap, the engine's own code on local data.
        let phase = Instant::now();
        let products = self.pool.par_map(&clusters, |cluster| {
            let members: Vec<atlas_core::DataMap> =
                // lint: slice-index-ok (clusters partition 0..maps.len() — the matrix was built with maps.len() points)
                cluster.iter().map(|&idx| maps[idx].clone()).collect();
            product_maps(&members, self.config.drop_empty_regions)
        });
        let mut merged = Vec::with_capacity(products.len());
        for product in products.into_iter().flatten() {
            merged.push(enforce_region_cap(
                product,
                self.config.max_regions_per_map,
                self.num_rows,
            ));
        }
        let merge_ms = phase.elapsed().as_secs_f64() * 1e3;

        let phase = Instant::now();
        let mut ranked = rank_maps(merged);
        ranked.truncate(self.config.max_maps);
        let rank_ms = phase.elapsed().as_secs_f64() * 1e3;

        Ok(MapResult {
            maps: ranked,
            working_set_size: working_count,
            working_set: working,
            skipped_attributes: skipped,
            timings: PhaseTimings {
                query_ms,
                candidates_ms,
                clustering_ms,
                merge_ms,
                rank_ms,
                total_ms: total_start.elapsed().as_secs_f64() * 1e3,
            },
        })
    }

    /// The folded [`ColumnStats`] of one attribute (errors on attributes the
    /// schema does not know, like the local path does).
    fn stats_of(
        &self,
        summaries: &[ColumnSummary],
        attribute: &str,
    ) -> Result<ColumnStats, AtlasError> {
        let idx = self
            .fields
            .iter()
            .position(|(name, _)| name == attribute)
            .ok_or_else(|| dist_err(format!("unknown attribute '{attribute}'")))?;
        // Checked: the summaries arrive over the wire, so their count is not
        // guaranteed to match the schema the metadata probe agreed on.
        summaries
            .get(idx)
            .map(ColumnSummary::to_stats)
            .ok_or_else(|| {
                dist_err(format!(
                    "shards sent {} column summaries, schema has {}",
                    summaries.len(),
                    self.fields.len()
                ))
            })
    }

    fn field_type(&self, attribute: &str) -> Result<DataType, AtlasError> {
        self.fields
            .iter()
            .find(|(name, _)| name == attribute)
            .map(|(_, dtype)| *dtype)
            .ok_or_else(|| dist_err(format!("unknown attribute '{attribute}'")))
    }

    /// Scatter one region-partition kernel (`select_ranges` or
    /// `select_in_groups`) and fold the per-segment region bitmaps into
    /// table-wide ones.
    fn fetch_regions(
        &self,
        sql: &str,
        attribute: &str,
        rest: Vec<(&str, Json)>,
        expected: usize,
    ) -> Result<Vec<Bitmap>, AtlasError> {
        let partials = self.scatter("/shard/select", |segments| {
            let mut extra = vec![("attribute", Json::from(attribute))];
            extra.extend(rest.iter().map(|(k, v)| (*k, v.clone())));
            self.data_body(sql, segments, extra)
        })?;
        let mut folded: Vec<Bitmap> = (0..expected)
            .map(|_| Bitmap::new_empty(self.num_rows))
            .collect();
        for (segment, partial) in partials.iter().enumerate() {
            let regions = get_items(partial, "regions").map_err(dist_err)?;
            if regions.len() != expected {
                return Err(dist_err(format!(
                    "segment {segment} answered {} regions, expected {expected}",
                    regions.len()
                )));
            }
            for (acc, region) in folded.iter_mut().zip(regions) {
                let bitmap = bitmap_from_json(region).map_err(dist_err)?;
                // lint: slice-index-ok (scatter returned exactly one partial per segment, so enumerate() is in bounds)
                if bitmap.len() != self.segment_rows[segment] {
                    return Err(dist_err(format!(
                        "segment {segment} region bitmap has the wrong length"
                    )));
                }
                // lint: slice-index-ok (same enumerate-bounded segment; offsets has segment_rows's len)
                acc.or_shifted(&bitmap, self.segment_offsets[segment]);
            }
        }
        Ok(folded)
    }
}

/// The scattering [`CutSource`]: every kernel of the shared `CUT` body
/// ([`atlas_core::cut_from_source`]) becomes one scatter round whose
/// per-segment answers fold — in ascending global segment order — into
/// exactly what the in-process [`atlas_core::TableCutSource`] computes.
struct RemoteSource<'a> {
    coordinator: &'a Coordinator,
    /// The working-set SQL every kernel re-evaluates shard-side.
    sql: &'a str,
}

impl CutSource for RemoteSource<'_> {
    fn data_type(&self, attribute: &str) -> Result<DataType, AtlasError> {
        self.coordinator.field_type(attribute)
    }

    fn numeric_values(&self, attribute: &str) -> Result<Vec<f64>, AtlasError> {
        let partials = self.coordinator.scatter("/shard/values", |segments| {
            self.coordinator.data_body(
                self.sql,
                segments,
                vec![("attribute", Json::from(attribute))],
            )
        })?;
        let mut values = Vec::new();
        for partial in &partials {
            values.extend(
                parse_hex_f64s(get_str(partial, "values").map_err(dist_err)?).map_err(dist_err)?,
            );
        }
        Ok(values)
    }

    fn select_ranges(
        &self,
        attribute: &str,
        bounds: &[(f64, f64)],
    ) -> Result<Vec<Bitmap>, AtlasError> {
        let flat: Vec<f64> = bounds.iter().flat_map(|&(lo, hi)| [lo, hi]).collect();
        self.coordinator.fetch_regions(
            self.sql,
            attribute,
            vec![
                ("kind", Json::from("ranges")),
                ("bounds", Json::from(hex_f64s(&flat))),
            ],
            bounds.len(),
        )
    }

    fn categories_by_frequency(&self, attribute: &str) -> Result<Vec<(String, usize)>, AtlasError> {
        let partials = self.fetch_categories(attribute)?;
        let mut folded: Vec<(String, usize)> = Vec::new();
        for (counts, _) in &partials {
            merge_category_counts(&mut folded, counts);
        }
        Ok(rank_categories_by_frequency(folded))
    }

    fn dictionary(&self, attribute: &str) -> Result<Vec<String>, AtlasError> {
        let partials = self.fetch_categories(attribute)?;
        let mut dictionary: Vec<String> = Vec::new();
        for (_, segment_dictionary) in partials {
            for value in segment_dictionary {
                if !dictionary.contains(&value) {
                    dictionary.push(value);
                }
            }
        }
        Ok(dictionary)
    }

    fn select_in_groups(
        &self,
        attribute: &str,
        groups: &[Vec<String>],
    ) -> Result<Vec<Bitmap>, AtlasError> {
        let groups_json = Json::array(
            groups
                .iter()
                .map(|group| Json::array(group.iter().map(|v| Json::from(v.as_str())).collect()))
                .collect(),
        );
        self.coordinator.fetch_regions(
            self.sql,
            attribute,
            vec![("kind", Json::from("groups")), ("groups", groups_json)],
            groups.len(),
        )
    }
}

impl RemoteSource<'_> {
    /// Scatter `/shard/categories`: per segment, the zero-inclusive category
    /// counts (first-appearance order) and the segment dictionary.
    #[allow(clippy::type_complexity)]
    fn fetch_categories(
        &self,
        attribute: &str,
    ) -> Result<Vec<(Vec<(String, usize)>, Vec<String>)>, AtlasError> {
        let partials = self.coordinator.scatter("/shard/categories", |segments| {
            self.coordinator.data_body(
                self.sql,
                segments,
                vec![("attribute", Json::from(attribute))],
            )
        })?;
        partials
            .iter()
            .map(|partial| {
                let counts = get_items(partial, "counts")
                    .map_err(dist_err)?
                    .iter()
                    .map(|pair| {
                        let items = pair
                            .items()
                            .filter(|items| items.len() == 2)
                            .ok_or_else(|| dist_err("category count is not a pair"))?;
                        // lint: slice-index-ok (the filter above admits only len == 2)
                        let value = items[0]
                            .str()
                            .ok_or_else(|| dist_err("category value is not a string"))?;
                        // lint: slice-index-ok (the filter above admits only len == 2)
                        let count = items[1]
                            .index()
                            .ok_or_else(|| dist_err("category count is not integral"))?;
                        Ok((value.to_string(), count))
                    })
                    .collect::<Result<Vec<_>, AtlasError>>()?;
                let dictionary = get_items(partial, "dictionary")
                    .map_err(dist_err)?
                    .iter()
                    .map(|v| {
                        v.str()
                            .map(String::from)
                            .ok_or_else(|| dist_err("dictionary value is not a string"))
                    })
                    .collect::<Result<Vec<_>, AtlasError>>()?;
                Ok((counts, dictionary))
            })
            .collect()
    }
}
