//! Distributed scatter-gather exploration: a merging coordinator over shard
//! servers.
//!
//! A [`Coordinator`] partitions a dataset's segments across N shard servers
//! (ordinary `atlas-serve` processes answering the `POST /shard/*` endpoints)
//! and runs the Atlas pipeline with every row-touching kernel pushed down:
//!
//! 1. **working set** — the user query is evaluated per shard segment and the
//!    per-segment bitmaps are OR-folded at their global offsets;
//! 2. **candidates** — per-column statistics come back as mergeable
//!    [`atlas_columnar::ColumnSummary`] parts folded in ascending segment
//!    order (plus merged Greenwald–Khanna sketches for sketch-based cut
//!    strategies), and the single shared `CUT` body
//!    ([`atlas_core::cut_from_source`]) runs locally over a
//!    [`atlas_core::CutSource`] whose kernels scatter to the shards;
//! 3. **distances** — contingency tables of candidate-map pairs are counted
//!    per segment and summed cell-wise (exact `u64` adds), then scored
//!    locally with [`atlas_core::metric_of`];
//! 4. **clustering, merging, ranking** — run locally on the folded inputs,
//!    byte-for-byte the engine's own implementations.
//!
//! Every fold is deterministic (ascending global segment order) and every
//! pushed-down kernel reproduces its local counterpart exactly, so the ranked
//! maps are **bit-identical** — score bits, region SQL, region counts — to a
//! single-process [`atlas_core::Atlas::explore`] over the same table and
//! configuration, for *any* assignment of segments to shards. The
//! `tests/distributed.rs` property suite pins this.
//!
//! The coordinator assumes the engine's default pipeline stages with
//! [`MergeStrategy::Product`]; the composition merge re-cuts every region
//! locally and is rejected at [`Coordinator::connect`] time.
//!
//! ## Fault model
//!
//! Shard calls run under a [`RetryPolicy`] — bounded attempts with
//! exponential backoff whose jitter comes from a **seeded** generator, so a
//! fault plan replays to the same schedule — an optional [`HedgePolicy`]
//! that duplicates straggling reads (idempotent shard kernels make the
//! duplicate safe; first success wins), and a per-shard [`CircuitBreaker`]
//! that stops hammering a shard that keeps failing. A request-scoped
//! [`Deadline`] caps every wait: per-shard budgets are derived from the
//! remaining time, the remainder is forwarded in the `X-Atlas-Deadline-Ms`
//! header, and a blown deadline surfaces as [`AtlasError::Deadline`] with
//! the phase that was running.
//!
//! In [`ExploreMode::Strict`] (the default and the historical contract) any
//! shard failing past its retries fails the whole explore with a typed
//! [`AtlasError::Distributed`] naming the shard and endpoint — never a hang,
//! never a silent partial answer. [`ExploreMode::Degraded`] instead drops up
//! to `max_failed_shards` failed shards, folds the surviving segments, and
//! tags the answer with exact [`Coverage`] metadata; the surviving-segment
//! answer is bit-identical to a local explore over just those segments.

use crate::client::Client;
use crate::http::{ClientResponse, DEADLINE_HEADER, TRACE_HEADER};
use crate::resilience::{
    CircuitBreaker, CircuitConfig, CircuitState, Coverage, Deadline, ExploreMode, HedgePolicy,
    RetryPolicy,
};
use crate::wire::frames::{
    bitmap_from_json, contingency_from_json, dtype_from_name, get_index, get_items, get_str,
    hex_f64, hex_f64s, parse_hex_f64s, sketch_from_json, summary_from_json,
};
use crate::wire::Json;
use atlas_columnar::{
    merge_category_counts, rank_categories_by_frequency, Bitmap, ColumnStats, ColumnSummary,
    DataType,
};
use atlas_core::{
    cluster_maps_with_pool, cut_from_source, enforce_region_cap, metric_of, product_maps,
    rank_maps, AtlasConfig, AtlasError, CutSource, DistanceMatrix, MapResult, MergeStrategy,
    NumericCutStrategy, PhaseTimings, ThreadPool,
};
use atlas_query::{to_sql, ConjunctiveQuery};
use atlas_stats::quantile::quantile;
use atlas_stats::{ContingencyTable, GkSketch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How many recent shard-call latencies feed the percentile hedge delay.
const LATENCY_RING: usize = 512;

/// Fault-policy knobs of a [`Coordinator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinatorOptions {
    /// Per-attempt read/write budget of one shard call (further capped by
    /// the request deadline when one is set).
    pub shard_timeout: Duration,
    /// TCP connect budget, split from `shard_timeout` so an unreachable
    /// host fails fast.
    pub connect_timeout: Duration,
    /// Retry schedule of one shard call.
    pub retry: RetryPolicy,
    /// When to duplicate a straggling read.
    pub hedge: HedgePolicy,
    /// Per-shard circuit-breaker tuning.
    pub circuit: CircuitConfig,
    /// Seed of the jitter generator — fixed by default so retry schedules
    /// replay deterministically.
    pub jitter_seed: u64,
}

impl Default for CoordinatorOptions {
    fn default() -> CoordinatorOptions {
        CoordinatorOptions {
            shard_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            hedge: HedgePolicy::Off,
            circuit: CircuitConfig::default(),
            jitter_seed: 0x41_54_4c_41_53, // "ATLAS"
        }
    }
}

/// A distributed answer: the ranked maps plus exactly what they cover.
#[derive(Debug, Clone)]
pub struct DistributedResult {
    /// The ranked maps. Complete coverage means bit-identical to the local
    /// engine over the whole table; degraded coverage means bit-identical
    /// to the local engine over the surviving segments.
    pub result: MapResult,
    /// Exactly which segments and rows the answer covers.
    pub coverage: Coverage,
}

/// Scatter counters of one [`Coordinator`].
///
/// `fan_out` counts shard calls issued (one per shard with assigned
/// segments per scatter round), `retries` counts repeat attempts after a
/// retryable failure; all counters are monotone over the coordinator's
/// lifetime.
#[derive(Debug)]
pub struct CoordinatorMetrics {
    fan_out: AtomicU64,
    retries: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
    skipped_open_circuit: AtomicU64,
    deadline_exceeded: AtomicU64,
    degraded_explores: AtomicU64,
    per_shard: Vec<ShardLatency>,
    /// Recent shard-call latencies (ms), a bounded ring feeding
    /// [`HedgePolicy::Percentile`].
    recent: Mutex<RecentLatencies>,
}

#[derive(Debug)]
struct RecentLatencies {
    samples: Vec<f64>,
    next: usize,
}

#[derive(Debug)]
struct ShardLatency {
    addr: String,
    requests: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl CoordinatorMetrics {
    fn new(addrs: &[String]) -> CoordinatorMetrics {
        CoordinatorMetrics {
            fan_out: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            hedges_launched: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            skipped_open_circuit: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            degraded_explores: AtomicU64::new(0),
            per_shard: addrs
                .iter()
                .map(|addr| ShardLatency {
                    addr: addr.clone(),
                    requests: AtomicU64::new(0),
                    total_micros: AtomicU64::new(0),
                    max_micros: AtomicU64::new(0),
                })
                .collect(),
            recent: Mutex::new(RecentLatencies {
                samples: Vec::new(),
                next: 0,
            }),
        }
    }

    /// Total shard calls issued across all scatter rounds.
    pub fn fan_out(&self) -> u64 {
        self.fan_out.load(Ordering::Relaxed)
    }

    /// Total repeat attempts after a retryable failure.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total hedged (duplicated) reads launched at straggling shards.
    pub fn hedges_launched(&self) -> u64 {
        self.hedges_launched.load(Ordering::Relaxed)
    }

    /// Hedged reads that answered before the primary attempt.
    pub fn hedges_won(&self) -> u64 {
        self.hedges_won.load(Ordering::Relaxed)
    }

    /// Shard calls refused locally because the shard's circuit was open.
    pub fn skipped_open_circuit(&self) -> u64 {
        self.skipped_open_circuit.load(Ordering::Relaxed)
    }

    /// Explores that failed with [`AtlasError::Deadline`].
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Explores answered degraded (at least one shard dropped).
    pub fn degraded_explores(&self) -> u64 {
        self.degraded_explores.load(Ordering::Relaxed)
    }

    fn record(&self, shard: usize, elapsed: Duration) {
        // lint: slice-index-ok (callers index 0..shards.len(); per_shard is built one slot per shard)
        let lat = &self.per_shard[shard];
        let micros = elapsed.as_micros() as u64;
        lat.requests.fetch_add(1, Ordering::Relaxed);
        lat.total_micros.fetch_add(micros, Ordering::Relaxed);
        lat.max_micros.fetch_max(micros, Ordering::Relaxed);
        let ms = micros as f64 / 1000.0;
        let mut recent = match self.recent.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if recent.samples.len() < LATENCY_RING {
            recent.samples.push(ms);
        } else {
            let slot = recent.next;
            // lint: slice-index-ok (next always wraps below LATENCY_RING == samples.len())
            recent.samples[slot] = ms;
        }
        recent.next = (recent.next + 1) % LATENCY_RING;
    }

    /// The recent shard-call latencies, in milliseconds (bounded window).
    fn recent_latencies(&self) -> Vec<f64> {
        match self.recent.lock() {
            Ok(guard) => guard.samples.clone(),
            Err(poisoned) => poisoned.into_inner().samples.clone(),
        }
    }

    /// A JSON snapshot: fan-out, retries, hedges, circuit skips, and
    /// per-shard request latency.
    pub fn snapshot(&self) -> Json {
        Json::object(vec![
            ("fan_out", Json::from(self.fan_out())),
            ("retries", Json::from(self.retries())),
            ("hedges_launched", Json::from(self.hedges_launched())),
            ("hedges_won", Json::from(self.hedges_won())),
            (
                "skipped_open_circuit",
                Json::from(self.skipped_open_circuit()),
            ),
            ("deadline_exceeded", Json::from(self.deadline_exceeded())),
            ("degraded_explores", Json::from(self.degraded_explores())),
            (
                "shards",
                Json::array(
                    self.per_shard
                        .iter()
                        .map(|lat| {
                            let requests = lat.requests.load(Ordering::Relaxed);
                            let total = lat.total_micros.load(Ordering::Relaxed);
                            let mean_ms = if requests == 0 {
                                0.0
                            } else {
                                total as f64 / requests as f64 / 1000.0
                            };
                            Json::object(vec![
                                ("addr", Json::from(lat.addr.as_str())),
                                ("requests", Json::from(requests)),
                                ("mean_ms", Json::from(mean_ms)),
                                (
                                    "max_ms",
                                    Json::from(
                                        lat.max_micros.load(Ordering::Relaxed) as f64 / 1000.0,
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[derive(Debug)]
struct ShardSlot {
    addr: String,
    client: Client,
    /// Global segment indices this shard answers for, ascending. May be
    /// empty, in which case the shard is skipped by every scatter.
    segments: Vec<usize>,
    breaker: CircuitBreaker,
}

/// A shard's `/shard/meta` view: (generation, total rows, per-segment row
/// counts, schema fields) — unanimity across shards is required at connect.
type MetaView = (usize, usize, Vec<usize>, Vec<(String, DataType)>);

/// Gathered contingency counts: candidate-map pair → (rows, cols, cell
/// counts summed across segments).
type PairCounts = HashMap<(usize, usize), (usize, usize, Vec<u64>)>;

/// How one shard call failed, before rendering into an [`AtlasError`].
enum CallFail {
    /// The shard failed past its retries; the message already names the
    /// shard and endpoint.
    Shard { message: String },
    /// The call was refused locally — the shard's circuit is open.
    CircuitOpen,
    /// The request deadline expired before (or between) attempts.
    Deadline,
}

/// One attempt's verdict: retry or give up.
enum AttemptFail {
    /// Transient-looking failure (transport error, 5xx, garbled body).
    Retryable(String),
    /// Definitive failure (4xx — retrying cannot change the answer).
    NoRetry(String),
}

/// Why one explore pass failed — shard-attributable failures carry the
/// shard index so degraded mode can drop it and re-run.
enum ExploreFail {
    /// One shard failed past its retries.
    Shard { shard: usize, error: AtlasError },
    /// A failure no shard-drop can fix (deadline, merge validation, local
    /// pipeline error).
    Fatal(AtlasError),
}

/// Per-explore scatter context: the dropped shards, the live segment list
/// (ascending global indices), and the first shard-attributable failure
/// (stashed here because [`CutSource`] signatures only carry `AtlasError`).
struct ExploreCtx<'a> {
    dead: &'a BTreeSet<usize>,
    live: Vec<usize>,
    live_rows: usize,
    /// Row offset of each live segment in the compacted (live-rows-only)
    /// coordinate space, parallel to `live`. With nothing dead these are the
    /// table's global offsets; in degraded mode they renumber the surviving
    /// rows contiguously — exactly the row space of a local table built
    /// from the surviving segments, which is what the degraded answer is
    /// bit-compared against.
    offsets: Vec<usize>,
    deadline: Option<&'a Deadline>,
    failed: Mutex<Option<ExploreFail>>,
}

impl ExploreCtx<'_> {
    /// The compacted row offset of a live segment (`None` when the segment
    /// is not live).
    fn offset_of(&self, segment: usize) -> Option<usize> {
        let i = self.live.binary_search(&segment).ok()?;
        self.offsets.get(i).copied()
    }
}

/// The merging coordinator of a distributed exploration (see the module
/// docs for the protocol, the determinism guarantee, and the fault model).
#[derive(Debug)]
pub struct Coordinator {
    dataset: String,
    config: AtlasConfig,
    options: CoordinatorOptions,
    shards: Vec<ShardSlot>,
    generation: usize,
    num_rows: usize,
    segment_rows: Vec<usize>,
    fields: Vec<(String, DataType)>,
    pool: ThreadPool,
    metrics: CoordinatorMetrics,
    jitter: Mutex<StdRng>,
}

fn dist_err(message: impl Into<String>) -> AtlasError {
    AtlasError::Distributed(message.into())
}

fn resolve_addr(addr: &str) -> Result<SocketAddr, AtlasError> {
    addr.to_socket_addrs()
        .map_err(|e| dist_err(format!("cannot resolve shard address '{addr}': {e}")))?
        .next()
        .ok_or_else(|| dist_err(format!("shard address '{addr}' resolves to nothing")))
}

/// Judge one attempt's outcome: `200` with JSON wins; transport errors,
/// garbled bodies and 5xx (except 501/504) are retryable; 4xx and the
/// deadline statuses are definitive.
fn judge(addr: &str, path: &str, outcome: io::Result<ClientResponse>) -> Result<Json, AttemptFail> {
    let response = match outcome {
        Ok(response) => response,
        Err(e) => {
            return Err(AttemptFail::Retryable(format!(
                "shard {addr} failed on {path}: {e}"
            )));
        }
    };
    let json = response.json();
    if response.status == 200 {
        return json.ok_or_else(|| {
            AttemptFail::Retryable(format!("shard {addr} sent non-JSON on {path}"))
        });
    }
    let detail = json
        .as_ref()
        .and_then(|j| j.get("error").and_then(Json::str).map(String::from))
        .unwrap_or_else(|| "no error body".to_string());
    let message = format!(
        "shard {addr} answered {} on {path}: {detail}",
        response.status
    );
    // 504 means the shard's own deadline fired — retrying cannot beat an
    // already-blown global budget. 501 means the endpoint does not exist.
    if response.status >= 500 && response.status != 501 && response.status != 504 {
        Err(AttemptFail::Retryable(message))
    } else {
        Err(AttemptFail::NoRetry(message))
    }
}

/// Fold a shard reply's `"spans"` member (recorded under the shard's own
/// local trace) into this process's trace: allocate fresh local span ids,
/// re-parent the shard's trace roots under the enclosing `shard.call` span,
/// and rebase the shard's monotonic timestamps into the call interval (the
/// two processes share no clock epoch, so shard times are anchored to end at
/// reply arrival and clamped to never precede the call). The member is
/// stripped either way, so frame parsing sees exactly the documented reply.
fn adopt_shard_spans(reply: &mut Json, parent: atlas_obs::SpanContext, call_started: Instant) {
    let Json::Obj(members) = reply else { return };
    let Some(position) = members.iter().position(|(key, _)| key == "spans") else {
        return;
    };
    let (_, spans_json) = members.remove(position);
    if !atlas_obs::enabled() {
        return;
    }
    let records = crate::trace::spans_from_json(&spans_json);
    if records.is_empty() {
        return;
    }
    let tracer = atlas_obs::tracer();
    let fresh: HashMap<u64, u64> = records
        .iter()
        .map(|record| (record.span_id, tracer.alloc_id()))
        .collect();
    let lo = records.iter().map(|r| r.start_us).min().unwrap_or(0);
    let hi = records.iter().map(|r| r.end_us()).max().unwrap_or(lo);
    let now = tracer.now_us();
    let call_start_us = now.saturating_sub(call_started.elapsed().as_micros() as u64);
    let anchor = now.saturating_sub(hi.saturating_sub(lo)).max(call_start_us);
    for mut record in records {
        record.trace_id = parent.trace_id;
        record.parent_id = match fresh.get(&record.parent_id) {
            Some(&mapped) => mapped,
            None => parent.span_id,
        };
        record.span_id = fresh
            .get(&record.span_id)
            .copied()
            .unwrap_or(record.span_id);
        record.start_us = anchor.saturating_add(record.start_us.saturating_sub(lo));
        tracer.record(record);
    }
}

impl Coordinator {
    /// Connect to the shard servers, fetch and cross-check their view of
    /// `dataset`, and assign segments contiguously (balanced within one
    /// segment) across the shards. `timeout` becomes the per-attempt shard
    /// budget; everything else uses [`CoordinatorOptions::default`].
    ///
    /// Fails with [`AtlasError::InvalidConfig`] when the configuration does
    /// not validate or requests [`MergeStrategy::Composition`] (whose local
    /// re-cuts the coordinator does not push down), and with
    /// [`AtlasError::Distributed`] when a shard is unreachable or the shards
    /// disagree about the dataset (row count, segmentation, schema, or
    /// generation).
    pub fn connect(
        addrs: &[String],
        dataset: &str,
        config: AtlasConfig,
        timeout: Duration,
    ) -> Result<Coordinator, AtlasError> {
        let options = CoordinatorOptions {
            shard_timeout: timeout,
            connect_timeout: timeout.min(Duration::from_secs(2)),
            ..CoordinatorOptions::default()
        };
        Coordinator::connect_with(addrs, dataset, config, options)
    }

    /// [`Coordinator::connect`] with explicit fault-policy knobs.
    pub fn connect_with(
        addrs: &[String],
        dataset: &str,
        config: AtlasConfig,
        options: CoordinatorOptions,
    ) -> Result<Coordinator, AtlasError> {
        config.validate()?;
        if config.merge == MergeStrategy::Composition {
            return Err(AtlasError::InvalidConfig(
                "distributed explore requires MergeStrategy::Product \
                 (composition re-cuts regions locally)"
                    .to_string(),
            ));
        }
        if addrs.is_empty() {
            return Err(dist_err("no shard addresses"));
        }
        let shards: Vec<ShardSlot> = addrs
            .iter()
            .map(|addr| {
                Ok(ShardSlot {
                    addr: addr.clone(),
                    client: Client::new(resolve_addr(addr)?)
                        .with_timeout(options.shard_timeout)
                        .with_connect_timeout(options.connect_timeout),
                    segments: Vec::new(),
                    breaker: CircuitBreaker::new(options.circuit),
                })
            })
            .collect::<Result<_, AtlasError>>()?;
        let metrics = CoordinatorMetrics::new(addrs);
        let mut coordinator = Coordinator {
            dataset: dataset.to_string(),
            config,
            options,
            shards,
            generation: 0,
            num_rows: 0,
            segment_rows: Vec::new(),
            fields: Vec::new(),
            pool: ThreadPool::new(1),
            metrics,
            jitter: Mutex::new(StdRng::seed_from_u64(options.jitter_seed)),
        };
        coordinator.pool = ThreadPool::new(coordinator.config.parallelism);
        coordinator.fetch_meta()?;
        let num_segments = coordinator.segment_rows.len();
        let num_shards = coordinator.shards.len();
        // Contiguous balanced default: shard i takes ⌈n/N⌉ or ⌊n/N⌋ segments.
        let base = num_segments / num_shards;
        let extra = num_segments % num_shards;
        let mut next = 0usize;
        for (i, slot) in coordinator.shards.iter_mut().enumerate() {
            let take = base + usize::from(i < extra);
            slot.segments = (next..next + take).collect();
            next += take;
        }
        Ok(coordinator)
    }

    /// Replace the segment assignment. `assignment[i]` lists the global
    /// segment indices shard `i` answers for; the lists must form an exact
    /// partition of `0..num_segments` (empty lists are fine — those shards
    /// simply idle).
    pub fn with_assignment(
        mut self,
        assignment: Vec<Vec<usize>>,
    ) -> Result<Coordinator, AtlasError> {
        if assignment.len() != self.shards.len() {
            return Err(dist_err(format!(
                "assignment covers {} shards, the coordinator has {}",
                assignment.len(),
                self.shards.len()
            )));
        }
        let mut all: Vec<usize> = assignment.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..self.segment_rows.len()).collect();
        if all != expected {
            return Err(dist_err(format!(
                "assignment is not a partition of the {} segments",
                self.segment_rows.len()
            )));
        }
        for (slot, mut segments) in self.shards.iter_mut().zip(assignment) {
            segments.sort_unstable();
            slot.segments = segments;
        }
        Ok(self)
    }

    /// The dataset this coordinator explores.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The dataset generation the shards agreed on at connect time.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Number of segments of the distributed table.
    pub fn num_segments(&self) -> usize {
        self.segment_rows.len()
    }

    /// Total rows of the distributed table.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The current segment assignment, one list of global segment indices
    /// per shard.
    pub fn assignment(&self) -> Vec<Vec<usize>> {
        self.shards.iter().map(|s| s.segments.clone()).collect()
    }

    /// The scatter counters.
    pub fn metrics(&self) -> &CoordinatorMetrics {
        &self.metrics
    }

    /// The fault-policy knobs this coordinator runs under.
    pub fn options(&self) -> &CoordinatorOptions {
        &self.options
    }

    /// Every shard's `(addr, circuit state, times opened)`.
    pub fn circuit_states(&self) -> Vec<(String, CircuitState, u64)> {
        self.shards
            .iter()
            .map(|slot| {
                (
                    slot.addr.clone(),
                    slot.breaker.state(),
                    slot.breaker.opened_total(),
                )
            })
            .collect()
    }

    /// The counter snapshot extended with per-shard circuit state — what
    /// `/metrics` serves for each connected coordinator.
    pub fn metrics_snapshot(&self) -> Json {
        let mut snapshot = self.metrics.snapshot();
        let circuits: Vec<Json> = self
            .shards
            .iter()
            .map(|slot| {
                Json::object(vec![
                    ("addr", Json::from(slot.addr.as_str())),
                    ("state", Json::from(slot.breaker.state().label())),
                    ("opened_total", Json::from(slot.breaker.opened_total())),
                ])
            })
            .collect();
        let opened: u64 = self
            .shards
            .iter()
            .map(|slot| slot.breaker.opened_total())
            .sum();
        if let Json::Obj(members) = &mut snapshot {
            members.push(("circuit_open_total".to_string(), Json::from(opened)));
            members.push(("circuits".to_string(), Json::array(circuits)));
        }
        snapshot
    }

    /// Fetch `/shard/meta` from every shard and adopt their (unanimous) view
    /// of the dataset.
    fn fetch_meta(&mut self) -> Result<(), AtlasError> {
        let body = Json::object(vec![("dataset", Json::from(self.dataset.as_str()))]);
        let mut agreed: Option<MetaView> = None;
        for idx in 0..self.shards.len() {
            let reply = self
                .call_with(idx, "/shard/meta", &body, None)
                .map_err(|fail| self.render_call_fail(idx, "/shard/meta", fail))?;
            let generation = get_index(&reply, "generation").map_err(dist_err)?;
            let num_rows = get_index(&reply, "num_rows").map_err(dist_err)?;
            let segments = get_items(&reply, "segments")
                .map_err(dist_err)?
                .iter()
                .map(|s| s.index().ok_or_else(|| dist_err("bad segment row count")))
                .collect::<Result<Vec<_>, _>>()?;
            let fields = get_items(&reply, "fields")
                .map_err(dist_err)?
                .iter()
                .map(|f| {
                    let name = get_str(f, "name").map_err(dist_err)?.to_string();
                    let dtype = dtype_from_name(get_str(f, "dtype").map_err(dist_err)?)
                        .map_err(dist_err)?;
                    Ok((name, dtype))
                })
                .collect::<Result<Vec<_>, AtlasError>>()?;
            let view = (generation, num_rows, segments, fields);
            match &agreed {
                None => agreed = Some(view),
                Some(first) if *first == view => {}
                Some(_) => {
                    return Err(dist_err(format!(
                        "shard {} disagrees about dataset '{}' (generation, rows, \
                         segmentation or schema)",
                        // lint: slice-index-ok (idx enumerates self.shards)
                        self.shards[idx].addr,
                        self.dataset
                    )));
                }
            }
        }
        let (generation, num_rows, segment_rows, fields) = agreed
            .ok_or_else(|| dist_err("no shard answered the metadata probe; none are connected"))?;
        self.generation = generation;
        self.num_rows = num_rows;
        self.segment_rows = segment_rows;
        self.fields = fields;
        Ok(())
    }

    /// One uniform draw in `[0, 1)` from the seeded jitter generator.
    fn jitter_draw(&self) -> f64 {
        let mut rng = match self.jitter.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        rng.gen::<f64>()
    }

    /// The hedge delay of one attempt with budget `budget`, `None` when
    /// hedging is off or could not fire before the attempt deadline anyway.
    fn hedge_delay(&self, budget: Duration) -> Option<Duration> {
        let delay = match self.options.hedge {
            HedgePolicy::Off => return None,
            HedgePolicy::After(delay) => delay,
            HedgePolicy::Percentile { q, floor } => {
                let samples = self.metrics.recent_latencies();
                match quantile(&samples, q.clamp(0.0, 1.0)) {
                    Some(ms) if ms.is_finite() && ms >= 0.0 => {
                        Duration::from_secs_f64(ms / 1000.0).max(floor)
                    }
                    _ => floor,
                }
            }
        };
        (delay < budget).then_some(delay)
    }

    /// Render a [`CallFail`] into the typed error a caller surfaces.
    fn render_call_fail(&self, shard: usize, path: &str, fail: CallFail) -> AtlasError {
        // lint: slice-index-ok (callers index 0..shards.len())
        let addr = &self.shards[shard].addr;
        match fail {
            CallFail::Shard { message } => dist_err(message),
            CallFail::CircuitOpen => {
                dist_err(format!("shard {addr} refused on {path}: circuit open"))
            }
            CallFail::Deadline => dist_err(format!(
                "deadline expired while calling shard {addr} on {path}"
            )),
        }
    }

    /// One shard call under the full fault policy: circuit-breaker
    /// admission, bounded retries with seeded-jitter backoff, optional
    /// hedging, and the request deadline capping every attempt and sleep.
    fn call_with(
        &self,
        shard: usize,
        path: &str,
        body: &Json,
        deadline: Option<&Deadline>,
    ) -> Result<Json, CallFail> {
        // lint: slice-index-ok (callers index 0..shards.len())
        let slot = &self.shards[shard];
        if !slot.breaker.admit() {
            self.metrics
                .skipped_open_circuit
                .fetch_add(1, Ordering::Relaxed);
            if atlas_obs::enabled() {
                atlas_obs::event(
                    "shard.skip",
                    &[
                        ("shard", &shard.to_string()),
                        ("path", path),
                        ("reason", "circuit-open"),
                    ],
                );
            }
            return Err(CallFail::CircuitOpen);
        }
        self.metrics.fan_out.fetch_add(1, Ordering::Relaxed);
        let payload = Arc::new(body.encode());
        let started = Instant::now();
        let mut failures = 0u32;
        let result = loop {
            let budget = match deadline {
                None => self.options.shard_timeout,
                Some(d) => match d.remaining() {
                    None => break Err(CallFail::Deadline),
                    Some(left) => left.min(self.options.shard_timeout),
                },
            };
            let call_started = Instant::now();
            let mut call_span = atlas_obs::span("shard.call");
            call_span.attr("shard", shard);
            call_span.attr("path", path);
            call_span.attr("attempt", failures + 1);
            call_span.attr("mode", if failures == 0 { "primary" } else { "retry" });
            match self.attempt(slot, path, &payload, budget, deadline) {
                Ok(mut json) => {
                    if let Some(ctx) = call_span.context() {
                        adopt_shard_spans(&mut json, ctx, call_started);
                    }
                    break Ok(json);
                }
                Err(AttemptFail::NoRetry(message)) => break Err(CallFail::Shard { message }),
                Err(AttemptFail::Retryable(message)) => {
                    // Close the attempt span before any backoff sleep.
                    drop(call_span);
                    failures += 1;
                    if failures >= self.options.retry.max_attempts.max(1) {
                        break Err(CallFail::Shard { message });
                    }
                    self.metrics.retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.options.retry.backoff(failures, self.jitter_draw());
                    if !backoff.is_zero() {
                        match deadline {
                            None => std::thread::sleep(backoff),
                            Some(d) => match d.remaining() {
                                None => break Err(CallFail::Deadline),
                                Some(left) => std::thread::sleep(backoff.min(left)),
                            },
                        }
                    }
                }
            }
        };
        self.metrics.record(shard, started.elapsed());
        match &result {
            Ok(_) => slot.breaker.record_success(),
            Err(CallFail::Shard { .. }) => slot.breaker.record_failure(),
            Err(CallFail::CircuitOpen | CallFail::Deadline) => {}
        }
        result
    }

    /// One attempt of one shard call. Without hedging the request runs
    /// inline; with hedging a second identical request launches once the
    /// hedge delay passes unanswered, and the first success wins.
    fn attempt(
        &self,
        slot: &ShardSlot,
        path: &str,
        payload: &Arc<String>,
        budget: Duration,
        deadline: Option<&Deadline>,
    ) -> Result<Json, AttemptFail> {
        let mut client = slot.client.clone().with_timeout(budget);
        if let Some(d) = deadline {
            let left = d.remaining().unwrap_or(Duration::ZERO).as_millis();
            client = client.with_header(DEADLINE_HEADER, left.to_string());
        }
        // Propagate the coordinator trace id; the shard answers its child
        // spans in the reply's "spans" member for reassembly.
        if let Some(ctx) = atlas_obs::current() {
            client = client.with_header(TRACE_HEADER, ctx.trace_id.to_string());
        }
        let Some(hedge_after) = self.hedge_delay(budget) else {
            let outcome =
                client.request("POST", path, Some(("application/json", payload.as_bytes())));
            return judge(&slot.addr, path, outcome);
        };

        let started = Instant::now();
        let attempt_deadline = started + budget;
        let (tx, rx) = mpsc::channel::<(bool, io::Result<ClientResponse>)>();
        let parent = atlas_obs::current();
        let launch = |is_hedge: bool| {
            let client = client.clone();
            let path = path.to_string();
            let payload = Arc::clone(payload);
            let tx = tx.clone();
            std::thread::spawn(move || {
                // The primary's timing is the enclosing shard.call span; a
                // hedge gets its own child span so the duplicate shows up
                // labeled in the reassembled tree.
                let hedge_span = is_hedge.then(|| {
                    let mut span = atlas_obs::span_in(parent, "shard.call");
                    span.attr("path", path.as_str());
                    span.attr("mode", "hedge");
                    span
                });
                let outcome = client.request(
                    "POST",
                    &path,
                    Some(("application/json", payload.as_bytes())),
                );
                drop(hedge_span);
                let _ = tx.send((is_hedge, outcome));
            });
        };
        launch(false);
        let mut outstanding = 1u32;
        let mut hedged = false;
        let mut last_failure: Option<String> = None;
        while outstanding > 0 {
            let now = Instant::now();
            let wake = if hedged {
                attempt_deadline
            } else {
                (started + hedge_after).min(attempt_deadline)
            };
            if now >= wake {
                if !hedged && now >= started + hedge_after {
                    hedged = true;
                    self.metrics.hedges_launched.fetch_add(1, Ordering::Relaxed);
                    launch(true);
                    outstanding += 1;
                    continue;
                }
                break; // attempt deadline passed with requests still out
            }
            match rx.recv_timeout(wake.duration_since(now)) {
                Ok((is_hedge, outcome)) => {
                    outstanding -= 1;
                    match judge(&slot.addr, path, outcome) {
                        Ok(json) => {
                            if is_hedge {
                                self.metrics.hedges_won.fetch_add(1, Ordering::Relaxed);
                            }
                            return Ok(json);
                        }
                        Err(AttemptFail::NoRetry(message)) => {
                            return Err(AttemptFail::NoRetry(message));
                        }
                        Err(AttemptFail::Retryable(message)) => last_failure = Some(message),
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        Err(AttemptFail::Retryable(last_failure.unwrap_or_else(|| {
            format!(
                "shard {} timed out on {path} after {} ms",
                slot.addr,
                budget.as_millis()
            )
        })))
    }

    /// Stash the first shard-attributable failure of this explore pass and
    /// return its rendered error (the [`CutSource`] signatures only carry
    /// `AtlasError`, so attribution travels through the context).
    fn stash(&self, ctx: &ExploreCtx, fail: ExploreFail) -> AtlasError {
        let error = match &fail {
            ExploreFail::Shard { error, .. } | ExploreFail::Fatal(error) => error.clone(),
        };
        let mut stashed = match ctx.failed.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if stashed.is_none() {
            *stashed = Some(fail);
        }
        error
    }

    /// Fail fast when the request deadline has passed between phases.
    fn check_deadline(&self, ctx: &ExploreCtx, phase: &str) -> Result<(), AtlasError> {
        match ctx.deadline {
            Some(d) if d.expired() => Err(self.stash(ctx, ExploreFail::Fatal(d.error(phase)))),
            _ => Ok(()),
        }
    }

    /// Scatter one endpoint to every live shard with assigned segments (in
    /// parallel, one thread per shard) and gather the `partials` arrays
    /// sorted by ascending global segment index. The result holds exactly
    /// one entry per live segment, in `ctx.live` order.
    fn scatter(
        &self,
        ctx: &ExploreCtx,
        path: &str,
        body_of: impl Fn(&[usize]) -> Json + Sync,
    ) -> Result<Vec<Json>, AtlasError> {
        if let Some(d) = ctx.deadline {
            if d.expired() {
                return Err(self.stash(ctx, ExploreFail::Fatal(d.error(path))));
            }
        }
        let live: Vec<usize> = (0..self.shards.len())
            .filter(|i| !ctx.dead.contains(i))
            // lint: slice-index-ok (i ranges over 0..shards.len())
            .filter(|&i| !self.shards[i].segments.is_empty())
            .collect();
        // Scatter threads inherit the dispatching phase span, so shard.call
        // spans parent under the phase that issued them.
        let parent = atlas_obs::current();
        let replies: Vec<(usize, Result<Json, CallFail>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = live
                .iter()
                .map(|&idx| {
                    let body_of = &body_of;
                    let handle = scope.spawn(move || {
                        let _trace = atlas_obs::with_context(parent);
                        // lint: slice-index-ok (idx comes from live, a subset of 0..shards.len())
                        let body = body_of(&self.shards[idx].segments);
                        self.call_with(idx, path, &body, ctx.deadline)
                    });
                    (idx, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(idx, handle)| {
                    let reply = handle.join().unwrap_or_else(|_| {
                        Err(CallFail::Shard {
                            message: format!("scatter thread for shard {idx} panicked"),
                        })
                    });
                    (idx, reply)
                })
                .collect()
        });
        let mut gathered: Vec<(usize, Json)> = Vec::with_capacity(ctx.live.len());
        let mut first_fail: Option<(usize, String)> = None;
        let mut deadline_hit = false;
        for (shard, reply) in replies {
            match reply.and_then(|json| self.shard_partials(shard, path, json)) {
                Ok(mut list) => gathered.append(&mut list),
                Err(CallFail::Deadline) => deadline_hit = true,
                Err(CallFail::CircuitOpen) => {
                    if first_fail.as_ref().is_none_or(|(s, _)| shard < *s) {
                        first_fail = Some((
                            shard,
                            format!(
                                "shard {} refused on {path}: circuit open",
                                // lint: slice-index-ok (shard came from live, a subset of 0..shards.len())
                                self.shards[shard].addr
                            ),
                        ));
                    }
                }
                Err(CallFail::Shard { message }) => {
                    if first_fail.as_ref().is_none_or(|(s, _)| shard < *s) {
                        first_fail = Some((shard, message));
                    }
                }
            }
        }
        if deadline_hit {
            let error = match ctx.deadline {
                Some(d) => d.error(path),
                None => dist_err(format!("deadline expired during {path}")),
            };
            return Err(self.stash(ctx, ExploreFail::Fatal(error)));
        }
        if let Some((shard, message)) = first_fail {
            let fail = ExploreFail::Shard {
                shard,
                error: dist_err(message),
            };
            return Err(self.stash(ctx, fail));
        }
        gathered.sort_by_key(|(segment, _)| *segment);
        let segments: Vec<usize> = gathered.iter().map(|(segment, _)| *segment).collect();
        if segments != ctx.live {
            let fail = ExploreFail::Fatal(dist_err(format!(
                "scatter on {path} gathered segments {segments:?}, expected {:?}",
                ctx.live
            )));
            return Err(self.stash(ctx, fail));
        }
        Ok(gathered.into_iter().map(|(_, partial)| partial).collect())
    }

    /// Validate one shard's reply: its `partials` must cover exactly the
    /// segments assigned to it. A mismatch is a shard-attributable failure
    /// (and counts against its circuit breaker).
    fn shard_partials(
        &self,
        shard: usize,
        path: &str,
        reply: Json,
    ) -> Result<Vec<(usize, Json)>, CallFail> {
        // lint: slice-index-ok (shard came from live, a subset of 0..shards.len())
        let slot = &self.shards[shard];
        let semantic = |message: String| {
            slot.breaker.record_failure();
            CallFail::Shard {
                message: format!("shard {} misbehaved on {path}: {message}", slot.addr),
            }
        };
        let items = match get_items(&reply, "partials") {
            Ok(items) => items,
            Err(e) => return Err(semantic(e)),
        };
        let mut list = Vec::with_capacity(items.len());
        for partial in items {
            match get_index(partial, "segment") {
                Ok(segment) => list.push((segment, partial.clone())),
                Err(e) => return Err(semantic(e)),
            }
        }
        let mut seen: Vec<usize> = list.iter().map(|(segment, _)| *segment).collect();
        seen.sort_unstable();
        if seen != slot.segments {
            return Err(semantic(format!(
                "answered for segments {seen:?}, assigned {:?}",
                slot.segments
            )));
        }
        Ok(list)
    }

    /// The request body shared by the per-working-set endpoints.
    fn data_body(&self, sql: &str, segments: &[usize], rest: Vec<(&str, Json)>) -> Json {
        let mut members = vec![
            ("dataset", Json::from(self.dataset.as_str())),
            ("sql", Json::from(sql)),
            (
                "segments",
                Json::array(segments.iter().map(|&s| Json::from(s)).collect()),
            ),
        ];
        members.extend(rest);
        Json::object(members)
    }

    /// Gather a per-segment bitmap member into one bitmap over the live
    /// rows (the whole table in strict mode, the surviving rows renumbered
    /// contiguously in degraded mode).
    fn fold_bitmaps(
        &self,
        ctx: &ExploreCtx,
        partials: &[(usize, Bitmap)],
    ) -> Result<Bitmap, AtlasError> {
        let mut folded = Bitmap::new_empty(ctx.live_rows);
        for (segment, bitmap) in partials {
            // lint: slice-index-ok (scatter validated segment against the assignment)
            if bitmap.len() != self.segment_rows[*segment] {
                return Err(dist_err(format!(
                    "segment {segment} bitmap has {} rows, expected {}",
                    bitmap.len(),
                    // lint: slice-index-ok (same scatter-validated segment)
                    self.segment_rows[*segment]
                )));
            }
            let Some(offset) = ctx.offset_of(*segment) else {
                return Err(dist_err(format!("segment {segment} is not live")));
            };
            folded.or_shifted(bitmap, offset);
        }
        Ok(folded)
    }

    /// Scatter the working-set evaluation and fold the global bitmap (empty
    /// at the segments of dropped shards in degraded mode).
    fn fetch_working(&self, ctx: &ExploreCtx, sql: &str) -> Result<Bitmap, AtlasError> {
        let partials = self.scatter(ctx, "/shard/working", |segments| {
            self.data_body(sql, segments, Vec::new())
        })?;
        let bitmaps = partials
            .iter()
            .zip(&ctx.live)
            .map(|(partial, &segment)| {
                let bitmap = partial
                    .get("bitmap")
                    .ok_or_else(|| "partial without a bitmap".to_string())
                    .and_then(bitmap_from_json)
                    .map_err(dist_err)?;
                Ok((segment, bitmap))
            })
            .collect::<Result<Vec<_>, AtlasError>>()?;
        self.fold_bitmaps(ctx, &bitmaps)
    }

    /// Scatter the per-column summaries of the working set and fold them in
    /// ascending segment order — exactly the fold of
    /// [`atlas_columnar::ColumnView::summary`] and of the engine's table
    /// profile, so the collapsed [`ColumnStats`] match the local path bit
    /// for bit.
    fn fetch_summaries(
        &self,
        ctx: &ExploreCtx,
        sql: &str,
    ) -> Result<Vec<ColumnSummary>, AtlasError> {
        let partials = self.scatter(ctx, "/shard/summaries", |segments| {
            self.data_body(sql, segments, Vec::new())
        })?;
        let mut folded: Vec<ColumnSummary> = self
            .fields
            .iter()
            .map(|(_, dtype)| ColumnSummary::empty(*dtype))
            .collect();
        for partial in &partials {
            let columns = get_items(partial, "columns").map_err(dist_err)?;
            if columns.len() != self.fields.len() {
                return Err(dist_err(format!(
                    "summaries partial has {} columns, schema has {}",
                    columns.len(),
                    self.fields.len()
                )));
            }
            for (acc, column) in folded.iter_mut().zip(columns) {
                let parts = summary_from_json(column).map_err(dist_err)?;
                if parts.dtype != acc.dtype() {
                    return Err(dist_err("summary dtype does not match the schema"));
                }
                acc.merge_from(&ColumnSummary::from_parts(parts));
            }
        }
        Ok(folded)
    }

    /// Scatter whole-segment quantile sketches of the numeric attributes and
    /// merge them in ascending segment order — the table-profile fold.
    fn fetch_sketches(
        &self,
        ctx: &ExploreCtx,
        attributes: &[&str],
        epsilon: f64,
    ) -> Result<HashMap<String, GkSketch>, AtlasError> {
        if attributes.is_empty() {
            return Ok(HashMap::new());
        }
        let partials = self.scatter(ctx, "/shard/sketches", |segments| {
            Json::object(vec![
                ("dataset", Json::from(self.dataset.as_str())),
                ("epsilon", Json::from(hex_f64(epsilon))),
                (
                    "attributes",
                    Json::array(attributes.iter().map(|&a| Json::from(a)).collect()),
                ),
                (
                    "segments",
                    Json::array(segments.iter().map(|&s| Json::from(s)).collect()),
                ),
            ])
        })?;
        let mut folded: Vec<GkSketch> = attributes.iter().map(|_| GkSketch::new(epsilon)).collect();
        for partial in &partials {
            let sketches = get_items(partial, "sketches").map_err(dist_err)?;
            if sketches.len() != attributes.len() {
                return Err(dist_err(
                    "sketches partial does not match the attribute list",
                ));
            }
            for (acc, sketch) in folded.iter_mut().zip(sketches) {
                acc.merge(&sketch_from_json(sketch).map_err(dist_err)?);
            }
        }
        Ok(attributes
            .iter()
            .map(|&a| a.to_string())
            .zip(folded)
            .collect())
    }

    /// Scatter the contingency-table counts of every candidate-map pair and
    /// sum them cell-wise (exact integer adds across segments).
    fn fetch_pair_counts(
        &self,
        ctx: &ExploreCtx,
        maps: &[atlas_core::DataMap],
    ) -> Result<PairCounts, AtlasError> {
        let map_sqls: Vec<Json> = maps
            .iter()
            .map(|map| {
                Json::array(
                    map.regions
                        .iter()
                        .map(|region| Json::from(to_sql(&region.query)))
                        .collect(),
                )
            })
            .collect();
        let partials = self.scatter(ctx, "/shard/contingency", |segments| {
            Json::object(vec![
                ("dataset", Json::from(self.dataset.as_str())),
                ("maps", Json::array(map_sqls.clone())),
                (
                    "segments",
                    Json::array(segments.iter().map(|&s| Json::from(s)).collect()),
                ),
            ])
        })?;
        let mut folded: PairCounts = HashMap::new();
        for partial in &partials {
            for pair in get_items(partial, "pairs").map_err(dist_err)? {
                let a = get_index(pair, "a").map_err(dist_err)?;
                let b = get_index(pair, "b").map_err(dist_err)?;
                let (rows, cols, counts) = contingency_from_json(pair).map_err(dist_err)?;
                match folded.get_mut(&(a, b)) {
                    None => {
                        folded.insert((a, b), (rows, cols, counts));
                    }
                    Some((acc_rows, acc_cols, acc)) => {
                        if (*acc_rows, *acc_cols) != (rows, cols) || acc.len() != counts.len() {
                            return Err(dist_err(format!(
                                "contingency dimensions of pair ({a}, {b}) differ across segments"
                            )));
                        }
                        for (cell, add) in acc.iter_mut().zip(&counts) {
                            *cell += add;
                        }
                    }
                }
            }
        }
        Ok(folded)
    }

    /// The live segment list (ascending global indices) once `dead` shards
    /// are dropped.
    fn live_segments(&self, dead: &BTreeSet<usize>) -> Vec<usize> {
        let mut live: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(i, _)| !dead.contains(i))
            .flat_map(|(_, slot)| slot.segments.iter().copied())
            .collect();
        live.sort_unstable();
        live
    }

    /// Exact coverage of an answer that dropped the `dead` shards.
    fn coverage(&self, dead: &BTreeSet<usize>) -> Coverage {
        let mut missing: Vec<usize> = dead
            .iter()
            // lint: slice-index-ok (dead holds indices of self.shards)
            .flat_map(|&i| self.shards[i].segments.iter().copied())
            .collect();
        missing.sort_unstable();
        let missing_rows: usize = missing
            .iter()
            // lint: slice-index-ok (assignments are validated partitions of 0..segment_rows.len())
            .map(|&s| self.segment_rows[s])
            .sum();
        let rows_answered = self.num_rows.saturating_sub(missing_rows);
        let segments_answered = self.segment_rows.len().saturating_sub(missing.len());
        Coverage {
            segments_total: self.segment_rows.len(),
            segments_answered,
            missing_segments: missing,
            rows_total: self.num_rows,
            rows_answered,
            failed_shards: dead
                .iter()
                // lint: slice-index-ok (dead holds indices of self.shards)
                .map(|&i| self.shards[i].addr.clone())
                .collect(),
            columns: self
                .fields
                .iter()
                .map(|(name, _)| (name.clone(), rows_answered))
                .collect(),
        }
    }

    /// Run one distributed exploration step under the strict contract.
    ///
    /// Bit-identical to [`atlas_core::Atlas::explore`] with the same table
    /// and configuration (see the module docs); errors exactly like it on an
    /// empty working set ([`AtlasError::EmptyWorkingSet`]) or when nothing
    /// can be cut ([`AtlasError::NoCuttableAttributes`]), and with
    /// [`AtlasError::Distributed`] when a shard misbehaves.
    pub fn explore(&self, query: &ConjunctiveQuery) -> Result<MapResult, AtlasError> {
        self.explore_resilient(query, ExploreMode::Strict, None)
            .map(|distributed| distributed.result)
    }

    /// Run one distributed exploration step under an explicit failure mode
    /// and optional request deadline.
    ///
    /// [`ExploreMode::Strict`] keeps the bit-identity-or-typed-error
    /// contract of [`Coordinator::explore`]. [`ExploreMode::Degraded`]
    /// drops up to `max_failed_shards` shards that fail past their retries
    /// (restarting the pass without them), folds the surviving segments,
    /// and reports exact [`Coverage`]; shards whose circuit is already open
    /// are dropped up front without waiting for them to fail again.
    pub fn explore_resilient(
        &self,
        query: &ConjunctiveQuery,
        mode: ExploreMode,
        deadline: Option<Deadline>,
    ) -> Result<DistributedResult, AtlasError> {
        let max_failed = match mode {
            ExploreMode::Strict => 0,
            ExploreMode::Degraded { max_failed_shards } => {
                max_failed_shards.min(self.shards.len().saturating_sub(1))
            }
        };
        let mut dead: BTreeSet<usize> = BTreeSet::new();
        if max_failed > 0 {
            for (i, slot) in self.shards.iter().enumerate() {
                if dead.len() >= max_failed {
                    break;
                }
                if !slot.segments.is_empty() && slot.breaker.is_refusing() {
                    dead.insert(i);
                }
            }
        }
        let outcome = loop {
            match self.explore_once(query, &dead, deadline.as_ref()) {
                Ok(result) => break Ok(result),
                Err(ExploreFail::Shard { shard, error }) => {
                    if dead.len() < max_failed && !dead.contains(&shard) {
                        dead.insert(shard);
                        continue;
                    }
                    break Err(error);
                }
                Err(ExploreFail::Fatal(error)) => break Err(error),
            }
        };
        match outcome {
            Ok(result) => {
                if !dead.is_empty() {
                    self.metrics
                        .degraded_explores
                        .fetch_add(1, Ordering::Relaxed);
                }
                Ok(DistributedResult {
                    coverage: self.coverage(&dead),
                    result,
                })
            }
            Err(error) => {
                if matches!(error, AtlasError::Deadline { .. }) {
                    self.metrics
                        .deadline_exceeded
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(error)
            }
        }
    }

    /// One explore pass over the live shards, classifying any failure as
    /// shard-attributable (degraded mode may drop the shard and re-run) or
    /// fatal.
    fn explore_once(
        &self,
        query: &ConjunctiveQuery,
        dead: &BTreeSet<usize>,
        deadline: Option<&Deadline>,
    ) -> Result<MapResult, ExploreFail> {
        let live = self.live_segments(dead);
        if live.is_empty() {
            return Err(ExploreFail::Fatal(dist_err(
                "no live shard holds any segment (every shard failed or is refusing)",
            )));
        }
        let mut offsets = Vec::with_capacity(live.len());
        let mut live_rows = 0usize;
        for &segment in &live {
            offsets.push(live_rows);
            // lint: slice-index-ok (live segments come from validated assignments)
            live_rows += self.segment_rows[segment];
        }
        let ctx = ExploreCtx {
            dead,
            live,
            live_rows,
            offsets,
            deadline,
            failed: Mutex::new(None),
        };
        match self.explore_pipeline(query, &ctx) {
            Ok(result) => Ok(result),
            Err(error) => {
                let stashed = match ctx.failed.into_inner() {
                    Ok(inner) => inner,
                    Err(poisoned) => poisoned.into_inner(),
                };
                Err(stashed.unwrap_or(ExploreFail::Fatal(error)))
            }
        }
    }

    /// The distributed pipeline over the context's live segments —
    /// byte-for-byte the engine's phases on the folded inputs.
    fn explore_pipeline(
        &self,
        query: &ConjunctiveQuery,
        ctx: &ExploreCtx,
    ) -> Result<MapResult, AtlasError> {
        let mut total_span = atlas_obs::span("explore");
        total_span.attr("dataset", self.dataset.as_str());
        total_span.attr("distributed", true);
        let mut query = query.clone();
        if query.table.is_empty() {
            query.table = self.dataset.clone();
        }
        let sql = to_sql(&query);

        let query_span = atlas_obs::span("phase.query");
        let working = self.fetch_working(ctx, &sql)?;
        let query_ms = query_span.finish_ms();
        let working_count = working.count();
        if working_count == 0 {
            return Err(AtlasError::EmptyWorkingSet);
        }
        self.check_deadline(ctx, "candidates")?;

        // Candidate generation: folded stats + the shared CUT body over the
        // scattering source. "Covering" compares against the *live* rows —
        // the degraded table is the surviving segments.
        let candidates_span = atlas_obs::span("phase.candidates");
        let covering = working_count == ctx.live_rows;
        let summaries = self.fetch_summaries(ctx, &sql)?;
        let names: Vec<String> = match &self.config.attributes {
            Some(list) => list.clone(),
            None => self.fields.iter().map(|(name, _)| name.clone()).collect(),
        };
        // Prebuilt whole-table sketches are only consulted for covering
        // working sets (the table-profile path of the local engine).
        let sketches = match self.config.cut.numeric {
            NumericCutStrategy::SketchMedian { epsilon } if covering => {
                let numeric: Vec<&str> = names
                    .iter()
                    .filter(|name| {
                        self.fields.iter().any(|(n, dtype)| {
                            n == *name && matches!(dtype, DataType::Int | DataType::Float)
                        })
                    })
                    .map(String::as_str)
                    .collect();
                self.fetch_sketches(ctx, &numeric, epsilon)?
            }
            _ => HashMap::new(),
        };
        let source = RemoteSource {
            coordinator: self,
            sql: &sql,
            ctx,
        };
        let mut maps = Vec::new();
        let mut skipped = Vec::new();
        for name in &names {
            let stats = self.stats_of(&summaries, name)?;
            let sketch = sketches.get(name.as_str());
            match cut_from_source(&source, &query, name, &self.config.cut, &stats, sketch)? {
                Some(map) => maps.push(map),
                None => skipped.push(name.clone()),
            }
        }
        let candidates_ms = candidates_span.finish_ms();
        if maps.is_empty() {
            return Err(AtlasError::NoCuttableAttributes);
        }
        self.check_deadline(ctx, "distances")?;

        // Distances from segment-summed contingency tables, then the
        // engine's own clustering.
        let clustering_span = atlas_obs::span("phase.clustering");
        let mut matrix = DistanceMatrix::zeros(maps.len());
        if maps.len() > 1 {
            let mut pair_counts = self.fetch_pair_counts(ctx, &maps)?;
            for i in 0..maps.len() {
                for j in (i + 1)..maps.len() {
                    let (rows, cols, counts) = pair_counts.remove(&(i, j)).ok_or_else(|| {
                        dist_err(format!("no contingency counts for pair ({i}, {j})"))
                    })?;
                    // lint: slice-index-ok (i and j are loop-bounded by maps.len())
                    if rows != maps[i].num_regions() || cols != maps[j].num_regions() {
                        return Err(dist_err(format!(
                            "contingency of pair ({i}, {j}) is {rows}x{cols}, maps have {}x{} regions",
                            // lint: slice-index-ok (same loop-bounded i and j)
                            maps[i].num_regions(),
                            // lint: slice-index-ok (same loop-bounded i and j)
                            maps[j].num_regions()
                        )));
                    }
                    let table = ContingencyTable::from_counts(rows, cols, counts);
                    matrix.set(i, j, metric_of(&table, self.config.distance));
                }
            }
        }
        let clusters = cluster_maps_with_pool(&matrix, &self.config.clustering, &self.pool)?;
        let clustering_ms = clustering_span.finish_ms();
        self.check_deadline(ctx, "merge")?;

        // Product merge + region cap, the engine's own code on local data.
        // The cap's relative threshold reads the live row count, so a
        // degraded answer matches a local explore over the same segments.
        let merge_span = atlas_obs::span("phase.merge");
        let products = self.pool.par_map(&clusters, |cluster| {
            let members: Vec<atlas_core::DataMap> =
                // lint: slice-index-ok (clusters partition 0..maps.len() — the matrix was built with maps.len() points)
                cluster.iter().map(|&idx| maps[idx].clone()).collect();
            product_maps(&members, self.config.drop_empty_regions)
        });
        let mut merged = Vec::with_capacity(products.len());
        for product in products.into_iter().flatten() {
            merged.push(enforce_region_cap(
                product,
                self.config.max_regions_per_map,
                ctx.live_rows,
            ));
        }
        let merge_ms = merge_span.finish_ms();
        self.check_deadline(ctx, "rank")?;

        let rank_span = atlas_obs::span("phase.rank");
        let mut ranked = rank_maps(merged);
        ranked.truncate(self.config.max_maps);
        let rank_ms = rank_span.finish_ms();

        Ok(MapResult {
            maps: ranked,
            working_set_size: working_count,
            working_set: working,
            skipped_attributes: skipped,
            timings: PhaseTimings {
                query_ms,
                candidates_ms,
                clustering_ms,
                merge_ms,
                rank_ms,
                total_ms: total_span.finish_ms(),
            },
        })
    }

    /// The folded [`ColumnStats`] of one attribute (errors on attributes the
    /// schema does not know, like the local path does).
    fn stats_of(
        &self,
        summaries: &[ColumnSummary],
        attribute: &str,
    ) -> Result<ColumnStats, AtlasError> {
        let idx = self
            .fields
            .iter()
            .position(|(name, _)| name == attribute)
            .ok_or_else(|| dist_err(format!("unknown attribute '{attribute}'")))?;
        // Checked: the summaries arrive over the wire, so their count is not
        // guaranteed to match the schema the metadata probe agreed on.
        summaries
            .get(idx)
            .map(ColumnSummary::to_stats)
            .ok_or_else(|| {
                dist_err(format!(
                    "shards sent {} column summaries, schema has {}",
                    summaries.len(),
                    self.fields.len()
                ))
            })
    }

    fn field_type(&self, attribute: &str) -> Result<DataType, AtlasError> {
        self.fields
            .iter()
            .find(|(name, _)| name == attribute)
            .map(|(_, dtype)| *dtype)
            .ok_or_else(|| dist_err(format!("unknown attribute '{attribute}'")))
    }

    /// Scatter one region-partition kernel (`select_ranges` or
    /// `select_in_groups`) and fold the per-segment region bitmaps into
    /// table-wide ones.
    fn fetch_regions(
        &self,
        ctx: &ExploreCtx,
        sql: &str,
        attribute: &str,
        rest: Vec<(&str, Json)>,
        expected: usize,
    ) -> Result<Vec<Bitmap>, AtlasError> {
        let partials = self.scatter(ctx, "/shard/select", |segments| {
            let mut extra = vec![("attribute", Json::from(attribute))];
            extra.extend(rest.iter().map(|(k, v)| (*k, v.clone())));
            self.data_body(sql, segments, extra)
        })?;
        let mut folded: Vec<Bitmap> = (0..expected)
            .map(|_| Bitmap::new_empty(ctx.live_rows))
            .collect();
        for (partial, &segment) in partials.iter().zip(&ctx.live) {
            let regions = get_items(partial, "regions").map_err(dist_err)?;
            if regions.len() != expected {
                return Err(dist_err(format!(
                    "segment {segment} answered {} regions, expected {expected}",
                    regions.len()
                )));
            }
            let Some(offset) = ctx.offset_of(segment) else {
                return Err(dist_err(format!("segment {segment} is not live")));
            };
            for (acc, region) in folded.iter_mut().zip(regions) {
                let bitmap = bitmap_from_json(region).map_err(dist_err)?;
                // lint: slice-index-ok (ctx.live holds validated segment indices)
                if bitmap.len() != self.segment_rows[segment] {
                    return Err(dist_err(format!(
                        "segment {segment} region bitmap has the wrong length"
                    )));
                }
                acc.or_shifted(&bitmap, offset);
            }
        }
        Ok(folded)
    }
}

/// The scattering [`CutSource`]: every kernel of the shared `CUT` body
/// ([`atlas_core::cut_from_source`]) becomes one scatter round whose
/// per-segment answers fold — in ascending global segment order — into
/// exactly what the in-process [`atlas_core::TableCutSource`] computes.
struct RemoteSource<'a> {
    coordinator: &'a Coordinator,
    /// The working-set SQL every kernel re-evaluates shard-side.
    sql: &'a str,
    /// The live-set and failure context of the running explore pass.
    ctx: &'a ExploreCtx<'a>,
}

impl CutSource for RemoteSource<'_> {
    fn data_type(&self, attribute: &str) -> Result<DataType, AtlasError> {
        self.coordinator.field_type(attribute)
    }

    fn numeric_values(&self, attribute: &str) -> Result<Vec<f64>, AtlasError> {
        let partials = self
            .coordinator
            .scatter(self.ctx, "/shard/values", |segments| {
                self.coordinator.data_body(
                    self.sql,
                    segments,
                    vec![("attribute", Json::from(attribute))],
                )
            })?;
        let mut values = Vec::new();
        for partial in &partials {
            values.extend(
                parse_hex_f64s(get_str(partial, "values").map_err(dist_err)?).map_err(dist_err)?,
            );
        }
        Ok(values)
    }

    fn select_ranges(
        &self,
        attribute: &str,
        bounds: &[(f64, f64)],
    ) -> Result<Vec<Bitmap>, AtlasError> {
        let flat: Vec<f64> = bounds.iter().flat_map(|&(lo, hi)| [lo, hi]).collect();
        self.coordinator.fetch_regions(
            self.ctx,
            self.sql,
            attribute,
            vec![
                ("kind", Json::from("ranges")),
                ("bounds", Json::from(hex_f64s(&flat))),
            ],
            bounds.len(),
        )
    }

    fn categories_by_frequency(&self, attribute: &str) -> Result<Vec<(String, usize)>, AtlasError> {
        let partials = self.fetch_categories(attribute)?;
        let mut folded: Vec<(String, usize)> = Vec::new();
        for (counts, _) in &partials {
            merge_category_counts(&mut folded, counts);
        }
        Ok(rank_categories_by_frequency(folded))
    }

    fn dictionary(&self, attribute: &str) -> Result<Vec<String>, AtlasError> {
        let partials = self.fetch_categories(attribute)?;
        let mut dictionary: Vec<String> = Vec::new();
        for (_, segment_dictionary) in partials {
            for value in segment_dictionary {
                if !dictionary.contains(&value) {
                    dictionary.push(value);
                }
            }
        }
        Ok(dictionary)
    }

    fn select_in_groups(
        &self,
        attribute: &str,
        groups: &[Vec<String>],
    ) -> Result<Vec<Bitmap>, AtlasError> {
        let groups_json = Json::array(
            groups
                .iter()
                .map(|group| Json::array(group.iter().map(|v| Json::from(v.as_str())).collect()))
                .collect(),
        );
        self.coordinator.fetch_regions(
            self.ctx,
            self.sql,
            attribute,
            vec![("kind", Json::from("groups")), ("groups", groups_json)],
            groups.len(),
        )
    }
}

impl RemoteSource<'_> {
    /// Scatter `/shard/categories`: per segment, the zero-inclusive category
    /// counts (first-appearance order) and the segment dictionary.
    #[allow(clippy::type_complexity)]
    fn fetch_categories(
        &self,
        attribute: &str,
    ) -> Result<Vec<(Vec<(String, usize)>, Vec<String>)>, AtlasError> {
        let partials = self
            .coordinator
            .scatter(self.ctx, "/shard/categories", |segments| {
                self.coordinator.data_body(
                    self.sql,
                    segments,
                    vec![("attribute", Json::from(attribute))],
                )
            })?;
        partials
            .iter()
            .map(|partial| {
                let counts = get_items(partial, "counts")
                    .map_err(dist_err)?
                    .iter()
                    .map(|pair| {
                        let items = pair
                            .items()
                            .filter(|items| items.len() == 2)
                            .ok_or_else(|| dist_err("category count is not a pair"))?;
                        // lint: slice-index-ok (the filter above admits only len == 2)
                        let value = items[0]
                            .str()
                            .ok_or_else(|| dist_err("category value is not a string"))?;
                        // lint: slice-index-ok (the filter above admits only len == 2)
                        let count = items[1]
                            .index()
                            .ok_or_else(|| dist_err("category count is not integral"))?;
                        Ok((value.to_string(), count))
                    })
                    .collect::<Result<Vec<_>, AtlasError>>()?;
                let dictionary = get_items(partial, "dictionary")
                    .map_err(dist_err)?
                    .iter()
                    .map(|v| {
                        v.str()
                            .map(String::from)
                            .ok_or_else(|| dist_err("dictionary value is not a string"))
                    })
                    .collect::<Result<Vec<_>, AtlasError>>()?;
                Ok((counts, dictionary))
            })
            .collect()
    }
}
