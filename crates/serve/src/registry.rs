//! The dataset registry: one prepared engine per served dataset.
//!
//! Datasets are loaded once at boot — from CSV files or from the seeded
//! generators of `atlas-datagen` — and each is prepared into an
//! `Arc<Atlas>` engine whose build-time statistics profile is shared by
//! every session and every worker thread. Each dataset also carries:
//!
//! * a bounded **shared result cache** ([`atlas_core::CachedAtlas`], LRU):
//!   identical queries from different sessions are answered from memory, and
//!   the hit/miss/eviction counters feed `/metrics`;
//! * an **append log**: `POST /datasets/:name/rows` re-prepares the engine
//!   incrementally ([`Atlas::append`], profiling only the new rows) and logs
//!   the segment so live sessions can catch up through
//!   `Session::append_segment` on their next request.

use crate::wire::Json;
use atlas_columnar::{csv::CsvOptions, Schema, Segment, Table};
use atlas_core::{Atlas, AtlasConfig, CacheStats, CachedAtlas, MapResult, Result};
use atlas_datagen::{CensusGenerator, OrdersGenerator, SdssGenerator};
use atlas_query::ConjunctiveQuery;
use std::sync::{Arc, Mutex};

/// Per-dataset serving options.
#[derive(Debug, Clone)]
pub struct DatasetOptions {
    /// Engine configuration used to prepare the dataset.
    pub config: AtlasConfig,
    /// Capacity of the shared result cache; `0` disables caching entirely
    /// (every exploration runs the engine — the honest setting for load
    /// benchmarks).
    pub cache_capacity: usize,
}

impl Default for DatasetOptions {
    fn default() -> Self {
        DatasetOptions {
            config: AtlasConfig::default(),
            cache_capacity: 64,
        }
    }
}

/// The outcome of appending rows to a served dataset.
#[derive(Debug, Clone)]
pub struct AppendOutcome {
    /// Rows appended by this call.
    pub appended_rows: usize,
    /// Segments appended by this call.
    pub appended_segments: usize,
    /// Total rows of the dataset afterwards.
    pub total_rows: usize,
    /// The dataset generation afterwards (total segments appended since boot).
    pub generation: usize,
}

struct DatasetState {
    engine: Arc<Atlas>,
    cache: Option<CachedAtlas>,
    /// Every segment appended since boot, in order. Sessions remember how
    /// many they have applied and catch up lazily.
    appended: Vec<Arc<Segment>>,
    /// Cache counters accumulated from cache generations retired by appends
    /// (an append invalidates the cache: its results describe the old
    /// snapshot).
    retired: CacheStats,
}

/// One served dataset: a name, a prepared engine, a shared result cache, and
/// the append log.
pub struct Dataset {
    name: String,
    options: DatasetOptions,
    state: Mutex<DatasetState>,
    /// Serialises appenders so the expensive incremental re-preparation runs
    /// **outside** the state lock: with appends serialised, the engine
    /// snapshot an appender re-prepares from cannot be swapped out before
    /// its own swap, while explores keep probing the state lock freely.
    append_lock: Mutex<()>,
}

fn add_stats(into: &mut CacheStats, from: &CacheStats) {
    into.hits += from.hits;
    into.misses += from.misses;
    into.prefetched += from.prefetched;
    into.evicted += from.evicted;
}

impl Dataset {
    fn new(name: String, table: Arc<Table>, options: DatasetOptions) -> Result<Dataset> {
        let engine = Arc::new(Atlas::new(table, options.config.clone())?);
        let cache = (options.cache_capacity > 0)
            .then(|| CachedAtlas::from_engine((*engine).clone(), options.cache_capacity));
        Ok(Dataset {
            name,
            options,
            state: Mutex::new(DatasetState {
                engine,
                cache,
                appended: Vec::new(),
                retired: CacheStats::default(),
            }),
            append_lock: Mutex::new(()),
        })
    }

    /// The dataset name (also its URL segment).
    pub fn name(&self) -> &str {
        &self.name
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DatasetState> {
        // The state mutex only guards short critical sections (probes,
        // pointer swaps); a poisoned lock means a panic mid-section, and
        // continuing with the inner state is the serving-friendly choice.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The current engine and generation (number of segments appended since
    /// boot). The engine is a cheap `Arc` clone; explorations on it never
    /// hold the dataset lock.
    pub fn snapshot(&self) -> (Arc<Atlas>, usize) {
        let state = self.lock();
        (Arc::clone(&state.engine), state.appended.len())
    }

    /// The segments appended after generation `from` (what a session at that
    /// generation must apply to catch up).
    pub fn pending_segments(&self, from: usize) -> Vec<Arc<Segment>> {
        let state = self.lock();
        // lint: slice-index-ok (the start is clamped to appended.len(); [n..] at n <= len is valid)
        state.appended[from.min(state.appended.len())..]
            .iter()
            .map(Arc::clone)
            .collect()
    }

    /// Answer a query through the shared result cache: probe under the lock,
    /// compute a miss outside it, store the outcome. Returns the result and
    /// whether it was served from the cache.
    pub fn explore(&self, query: &ConjunctiveQuery) -> (Result<MapResult>, bool) {
        let engine = {
            let mut state = self.lock();
            if let Some(cache) = state.cache.as_mut() {
                if let Some(result) = cache.lookup(query) {
                    return (Ok(result), true);
                }
            }
            Arc::clone(&state.engine)
        };
        let result = engine.explore(query);
        if let Ok(result) = &result {
            let mut state = self.lock();
            // An append may have swapped the engine while this miss computed;
            // caching the stale result would poison later hits.
            if Arc::ptr_eq(&state.engine, &engine) {
                if let Some(cache) = state.cache.as_mut() {
                    cache.insert_result(query, result.clone());
                }
            }
        }
        (result, false)
    }

    /// Append rows sent as CSV (no header line; columns and types must match
    /// the dataset schema). The engine re-prepares incrementally per segment;
    /// the shared result cache is retired because its entries describe the
    /// old snapshot.
    pub fn append_csv(&self, body: &[u8]) -> Result<AppendOutcome> {
        // One appender at a time; concurrent explores are not blocked — the
        // CSV parse and the per-segment re-preparation below run without the
        // state lock, which is only taken for the snapshot and the swap.
        let _appending = match self.append_lock.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let base = Arc::clone(&self.lock().engine);
        let batch = parse_csv_batch(&self.name, body, base.table().schema().clone())?;
        let segments: Vec<Arc<Segment>> = batch.segments().to_vec();
        let appended_rows = batch.num_rows();

        // Re-prepare incrementally off the snapshot (the append lock
        // guarantees it is still the current engine).
        let mut engine = (*base).clone();
        for segment in &segments {
            engine = engine.append(Arc::clone(segment))?;
        }
        let engine = Arc::new(engine);

        let mut state = self.lock();
        debug_assert!(Arc::ptr_eq(&state.engine, &base));
        state.engine = Arc::clone(&engine);
        state.appended.extend(segments.iter().map(Arc::clone));
        if let Some(old) = state.cache.take() {
            add_stats(&mut state.retired, old.stats());
            state.cache = Some(CachedAtlas::from_engine(
                (*engine).clone(),
                self.options.cache_capacity,
            ));
        }
        Ok(AppendOutcome {
            appended_rows,
            appended_segments: segments.len(),
            total_rows: engine.table().num_rows(),
            generation: state.appended.len(),
        })
    }

    /// Cumulative cache counters: the live cache plus every generation
    /// retired by appends.
    pub fn cache_stats(&self) -> CacheStats {
        let state = self.lock();
        let mut total = state.retired.clone();
        if let Some(cache) = &state.cache {
            add_stats(&mut total, cache.stats());
        }
        total
    }

    /// A JSON summary of the dataset (for `GET /datasets`).
    pub fn summary(&self) -> Json {
        let state = self.lock();
        let table = state.engine.table();
        let stats = {
            let mut total = state.retired.clone();
            if let Some(cache) = &state.cache {
                add_stats(&mut total, cache.stats());
            }
            total
        };
        Json::object(vec![
            ("name", Json::from(self.name.as_str())),
            ("rows", Json::from(table.num_rows())),
            ("columns", Json::from(table.num_columns())),
            ("segments", Json::from(table.num_segments())),
            ("generation", Json::from(state.appended.len())),
            (
                "attributes",
                Json::array(
                    table
                        .schema()
                        .fields()
                        .iter()
                        .map(|f| Json::from(f.name.as_str()))
                        .collect(),
                ),
            ),
            (
                "cache",
                Json::object(vec![
                    ("capacity", Json::from(self.options.cache_capacity)),
                    ("hits", Json::from(stats.hits)),
                    ("misses", Json::from(stats.misses)),
                    ("evicted", Json::from(stats.evicted)),
                    ("prefetched", Json::from(stats.prefetched)),
                ]),
            ),
        ])
    }
}

/// Parse a headerless CSV batch against a known schema, sized so each served
/// append becomes one segment per `ATLAS_SEGMENT_ROWS` (same default as the
/// storage layer).
fn parse_csv_batch(name: &str, body: &[u8], schema: Schema) -> Result<Table> {
    let opts = CsvOptions {
        has_header: false,
        ..CsvOptions::default()
    };
    atlas_columnar::csv::read_csv(name, body, Some(schema), &opts)
        .map_err(atlas_core::AtlasError::from)
}

/// The boot-time set of served datasets.
#[derive(Default)]
pub struct Registry {
    datasets: Vec<Dataset>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Serve an in-memory table under `name`.
    pub fn add_table(
        &mut self,
        name: impl Into<String>,
        table: Arc<Table>,
        options: DatasetOptions,
    ) -> Result<&mut Self> {
        let name = name.into();
        if self.get(&name).is_some() {
            return Err(atlas_core::AtlasError::InvalidConfig(format!(
                "dataset '{name}' is already registered"
            )));
        }
        self.datasets.push(Dataset::new(name, table, options)?);
        Ok(self)
    }

    /// Serve a dataset described by a boot spec:
    ///
    /// * `census:ROWS[:SEED]`, `sdss:ROWS[:SEED]`, `orders:ROWS[:SEED]` —
    ///   the seeded generators (seed defaults to 42);
    /// * `csv:NAME=PATH` — a CSV file with a header line, loaded from disk.
    pub fn add_spec(&mut self, spec: &str, options: DatasetOptions) -> Result<&mut Self> {
        let invalid = |msg: String| atlas_core::AtlasError::InvalidConfig(msg);
        let (kind, rest) = spec
            .split_once(':')
            .ok_or_else(|| invalid(format!("dataset spec '{spec}' is missing ':'")))?;
        match kind {
            "census" | "sdss" | "orders" => {
                let mut parts = rest.split(':');
                let rows: usize = parts
                    .next()
                    .unwrap_or("")
                    .parse()
                    .map_err(|_| invalid(format!("bad row count in spec '{spec}'")))?;
                let seed: u64 = match parts.next() {
                    None => 42,
                    Some(s) => s
                        .parse()
                        .map_err(|_| invalid(format!("bad seed in spec '{spec}'")))?,
                };
                let table = match kind {
                    "census" => CensusGenerator::with_rows(rows, seed).generate(),
                    "sdss" => SdssGenerator::with_rows(rows, seed).generate(),
                    _ => OrdersGenerator::with_rows(rows, seed).generate(),
                };
                let name = table.name().to_string();
                self.add_table(name, Arc::new(table), options)
            }
            "csv" => {
                let (name, path) = rest
                    .split_once('=')
                    .ok_or_else(|| invalid(format!("csv spec '{spec}' needs NAME=PATH")))?;
                let table =
                    atlas_columnar::csv::read_csv_path(name, path, None, &CsvOptions::default())
                        .map_err(atlas_core::AtlasError::from)?;
                self.add_table(name.to_string(), Arc::new(table), options)
            }
            other => Err(invalid(format!(
                "unknown dataset kind '{other}' in '{spec}'"
            ))),
        }
    }

    /// The dataset named `name`.
    pub fn get(&self, name: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.name == name)
    }

    /// All datasets, in registration order.
    pub fn datasets(&self) -> &[Dataset] {
        &self.datasets
    }

    /// True if no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_columnar::csv::write_csv;

    fn census_registry(rows: usize, cache: usize) -> Registry {
        let mut registry = Registry::new();
        registry
            .add_table(
                "census",
                Arc::new(CensusGenerator::with_rows(rows, 3).generate()),
                DatasetOptions {
                    config: AtlasConfig::fast(),
                    cache_capacity: cache,
                },
            )
            .unwrap();
        registry
    }

    #[test]
    fn explore_uses_the_shared_cache() {
        let registry = census_registry(2_000, 8);
        let dataset = registry.get("census").unwrap();
        let query = ConjunctiveQuery::all("census");
        let (first, hit_first) = dataset.explore(&query);
        let (second, hit_second) = dataset.explore(&query);
        assert!(!hit_first);
        assert!(hit_second);
        let (a, b) = (first.unwrap(), second.unwrap());
        assert_eq!(a.num_maps(), b.num_maps());
        let stats = dataset.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let registry = census_registry(2_000, 0);
        let dataset = registry.get("census").unwrap();
        let query = ConjunctiveQuery::all("census");
        let (_, hit1) = dataset.explore(&query);
        let (_, hit2) = dataset.explore(&query);
        assert!(!hit1 && !hit2);
        assert_eq!(dataset.cache_stats(), CacheStats::default());
    }

    #[test]
    fn append_csv_re_prepares_and_retires_the_cache() {
        let registry = census_registry(2_000, 8);
        let dataset = registry.get("census").unwrap();
        let query = ConjunctiveQuery::all("census");
        let (result, _) = dataset.explore(&query);
        assert_eq!(result.unwrap().working_set_size, 2_000);

        // Render a fresh batch as headerless CSV.
        let batch = CensusGenerator::with_rows(500, 9).generate();
        let mut csv = Vec::new();
        write_csv(&batch, &mut csv).unwrap();
        let body: Vec<u8> = {
            let text = String::from_utf8(csv).unwrap();
            text.split_once('\n').unwrap().1.as_bytes().to_vec()
        };

        let outcome = dataset.append_csv(&body).unwrap();
        assert_eq!(outcome.appended_rows, 500);
        assert_eq!(outcome.total_rows, 2_500);
        assert!(outcome.generation >= 1);
        assert_eq!(dataset.pending_segments(0).len(), outcome.generation);
        assert!(dataset.pending_segments(outcome.generation).is_empty());

        // The swap retired the old cache but kept its counters.
        let (result, hit) = dataset.explore(&query);
        assert!(!hit, "old cache entries must not survive an append");
        assert_eq!(result.unwrap().working_set_size, 2_500);
        assert!(dataset.cache_stats().misses >= 2);
    }

    #[test]
    fn append_csv_rejects_malformed_bodies_and_keeps_serving() {
        let registry = census_registry(1_000, 4);
        let dataset = registry.get("census").unwrap();
        assert!(dataset.append_csv(b"not,enough,columns\n").is_err());
        let (result, _) = dataset.explore(&ConjunctiveQuery::all("census"));
        assert_eq!(result.unwrap().working_set_size, 1_000);
        assert_eq!(
            dataset.snapshot().1,
            0,
            "failed append must not bump the generation"
        );
    }

    #[test]
    fn specs_cover_generators_and_reject_nonsense() {
        let mut registry = Registry::new();
        registry
            .add_spec("census:500:7", DatasetOptions::default())
            .unwrap();
        registry
            .add_spec("orders:300", DatasetOptions::default())
            .unwrap();
        assert!(registry.get("census").is_some());
        assert!(registry.get("orders").is_some());
        assert_eq!(registry.datasets().len(), 2);

        for bad in [
            "census",
            "census:x",
            "census:10:y",
            "csv:nopath",
            "laser:10",
        ] {
            assert!(
                Registry::new()
                    .add_spec(bad, DatasetOptions::default())
                    .is_err(),
                "{bad} should be rejected"
            );
        }
        // Duplicate names are rejected.
        assert!(registry
            .add_spec("census:100", DatasetOptions::default())
            .is_err());
    }
}
