//! Resilience primitives of the distributed serving path: deadlines, retry
//! policies with deterministic jitter, hedged-read configuration, per-shard
//! circuit breakers, and the coverage metadata of degraded answers.
//!
//! These types are deliberately engine-agnostic — the
//! [`Coordinator`](crate::distributed::Coordinator) composes them into its
//! fault policy, and `atlas-serve` exposes them as configuration knobs. The
//! design constraints are the repo's usual ones: **deterministic** (jitter
//! comes from a seeded vendored-`rand` generator, never the clock),
//! **panic-free** on request paths, and **typed** — every failure mode ends
//! in an [`AtlasError`] variant, never a hang or a silent partial answer.

use crate::wire::Json;
use atlas_core::AtlasError;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Longest backoff one retry may sleep, whatever the policy computes.
const MAX_BACKOFF: Duration = Duration::from_secs(30);

/// An absolute deadline with the budget it was derived from.
///
/// Requests carry their budget in the `X-Atlas-Deadline-Ms` header; the
/// server anchors it at the moment the connection was admitted, so queue
/// waits count against the budget too. The coordinator derives per-shard
/// budgets from the remaining time (replacing a flat per-request timeout)
/// and forwards the remainder down to the shards.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Instant,
    at: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline::anchored(budget, Instant::now())
    }

    /// A deadline `budget` from `started` (the admission instant, so time
    /// already spent queueing is charged against the budget).
    pub fn anchored(budget: Duration, started: Instant) -> Deadline {
        Deadline {
            started,
            at: started + budget,
            budget,
        }
    }

    /// The absolute instant the deadline fires.
    pub fn at(&self) -> Instant {
        self.at
    }

    /// The total budget, in milliseconds.
    pub fn budget_ms(&self) -> u64 {
        self.budget.as_millis() as u64
    }

    /// Milliseconds spent since the deadline was anchored.
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Time left before the deadline, `None` once it has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.checked_duration_since(Instant::now())
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining().is_none()
    }

    /// The typed error for this deadline firing during `phase`.
    pub fn error(&self, phase: &str) -> AtlasError {
        AtlasError::Deadline {
            budget_ms: self.budget_ms(),
            elapsed_ms: self.elapsed_ms(),
            phase: phase.to_string(),
        }
    }
}

/// The retry policy of one shard call, as a value.
///
/// `max_attempts` bounds the total attempts (so `2` means the original call
/// plus one retry — the historical coordinator behavior and the default).
/// Between attempts the caller sleeps an exponential backoff:
///
/// ```text
/// backoff(n) = base_backoff · multiplier^(n−1) · uniform(1−jitter, 1+jitter)
/// ```
///
/// where `n` counts failures so far and the uniform draw comes from the
/// coordinator's **seeded** generator (vendored `rand`), so a fault plan
/// replays to the exact same schedule. Backoffs are capped at 30 s and
/// always at the request deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per shard call (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; `0` retries immediately.
    pub base_backoff: Duration,
    /// Exponential growth factor of successive backoffs.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a uniform
    /// draw from `[1−jitter, 1+jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    /// One retry, no backoff, no jitter — exactly the pre-resilience
    /// coordinator fault policy.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            multiplier: 2.0,
            jitter: 0.0,
        }
    }
}

impl RetryPolicy {
    /// This policy with the given attempt bound (floored at 1).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> RetryPolicy {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// This policy with the given base backoff.
    pub fn with_base_backoff(mut self, base: Duration) -> RetryPolicy {
        self.base_backoff = base;
        self
    }

    /// The backoff before the retry that follows failure number `failures`
    /// (1-based), given a uniform `draw` in `[0, 1)` from the seeded jitter
    /// generator.
    pub fn backoff(&self, failures: u32, draw: f64) -> Duration {
        if self.base_backoff.is_zero() || failures == 0 {
            return Duration::ZERO;
        }
        let growth = self
            .multiplier
            .max(1.0)
            .powi(failures.saturating_sub(1) as i32);
        let jitter = self.jitter.clamp(0.0, 1.0);
        let factor = (1.0 - jitter) + 2.0 * jitter * draw.clamp(0.0, 1.0);
        let secs = self.base_backoff.as_secs_f64() * growth * factor;
        if !secs.is_finite() || secs <= 0.0 {
            return Duration::ZERO;
        }
        // Clamp before converting: from_secs_f64 panics on overflow.
        Duration::from_secs_f64(secs.min(MAX_BACKOFF.as_secs_f64()))
    }
}

/// When a hedged (duplicated) read is launched at a straggling shard.
///
/// Shard endpoints are idempotent reads, so duplicating a slow request is
/// safe: the first success wins and the loser's answer is discarded. The
/// delay before hedging is either fixed or derived from the coordinator's
/// recent shard-latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum HedgePolicy {
    /// Never hedge (the default).
    #[default]
    Off,
    /// Hedge any attempt still unanswered after a fixed delay.
    After(Duration),
    /// Hedge after the `q`-quantile of recently observed shard latencies
    /// (floored at `floor`, which also covers the cold start before any
    /// latency was observed).
    Percentile {
        /// The latency quantile in `[0, 1]` after which to hedge.
        q: f64,
        /// Lower bound on the hedge delay.
        floor: Duration,
    },
}

/// Circuit-breaker tuning of one shard slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitConfig {
    /// Consecutive failed calls that open the circuit; `0` disables the
    /// breaker entirely.
    pub failure_threshold: u32,
    /// How long an open circuit refuses calls before letting one probe
    /// through (half-open).
    pub cool_down: Duration,
}

impl Default for CircuitConfig {
    fn default() -> CircuitConfig {
        CircuitConfig {
            failure_threshold: 5,
            cool_down: Duration::from_secs(5),
        }
    }
}

/// The observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Calls flow normally.
    Closed,
    /// Calls are refused without touching the shard.
    Open,
    /// One probe call is in flight; its outcome closes or re-opens.
    HalfOpen,
}

impl CircuitState {
    /// The label `/metrics` and `/healthz` report.
    pub fn label(self) -> &'static str {
        match self {
            CircuitState::Closed => "closed",
            CircuitState::Open => "open",
            CircuitState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: CircuitState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    opened_total: u64,
}

/// A per-shard circuit breaker: `failure_threshold` consecutive failed
/// calls open the circuit; after `cool_down` one probe call is admitted
/// (half-open) and its outcome closes or re-opens the circuit.
///
/// Failures are counted per *call* (a call may retry internally), so the
/// threshold reads as "this many scatter rounds in a row saw the shard
/// fail".
#[derive(Debug)]
pub struct CircuitBreaker {
    config: CircuitConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: CircuitConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: CircuitState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                opened_total: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Whether a call may proceed right now. An open circuit past its
    /// cool-down transitions to half-open and admits the caller as the
    /// probe; a half-open circuit refuses everyone but its probe.
    pub fn admit(&self) -> bool {
        if self.config.failure_threshold == 0 {
            return true;
        }
        let mut inner = self.lock();
        match inner.state {
            CircuitState::Closed => true,
            CircuitState::HalfOpen => false,
            CircuitState::Open => {
                let cooled = inner
                    .opened_at
                    .is_none_or(|at| at.elapsed() >= self.config.cool_down);
                if cooled {
                    inner.state = CircuitState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether the breaker would refuse a call right now, without mutating
    /// it (no half-open transition). Degraded-mode scatter uses this to
    /// skip open-circuit shards up front.
    pub fn is_refusing(&self) -> bool {
        if self.config.failure_threshold == 0 {
            return false;
        }
        let inner = self.lock();
        match inner.state {
            CircuitState::Closed => false,
            CircuitState::HalfOpen => true,
            CircuitState::Open => inner
                .opened_at
                .is_some_and(|at| at.elapsed() < self.config.cool_down),
        }
    }

    /// Record a successful call: closes the circuit and resets the failure
    /// run.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        inner.state = CircuitState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
    }

    /// Record a failed call: extends the failure run and opens the circuit
    /// at the threshold (or re-opens it from half-open).
    pub fn record_failure(&self) {
        if self.config.failure_threshold == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let reopen = inner.state == CircuitState::HalfOpen;
        if reopen || inner.consecutive_failures >= self.config.failure_threshold {
            if inner.state != CircuitState::Open {
                inner.opened_total += 1;
            }
            inner.state = CircuitState::Open;
            inner.opened_at = Some(Instant::now());
        }
    }

    /// The current state (an open circuit reports `Open` until a probe
    /// actually transitions it).
    pub fn state(&self) -> CircuitState {
        self.lock().state
    }

    /// How many times the circuit has opened over its lifetime.
    pub fn opened_total(&self) -> u64 {
        self.lock().opened_total
    }
}

/// How a distributed explore treats shard failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExploreMode {
    /// Bit-identity or typed error: any shard failing past its retries
    /// fails the whole explore with [`AtlasError::Distributed`] (the
    /// default, and the historical contract).
    #[default]
    Strict,
    /// Fold the surviving segments when at most `max_failed_shards` shards
    /// are down after retries, and tag the answer with exact [`Coverage`].
    Degraded {
        /// Most shards the explore may lose before failing anyway.
        max_failed_shards: usize,
    },
}

/// Exactly which part of the table a (possibly degraded) distributed answer
/// covers.
///
/// Segment loss is atomic — a failed shard takes all of its assigned
/// segments with it and nothing else — so coverage is exact: `missing_segments`
/// lists the global segment indices that went unanswered, `rows_answered`
/// sums the surviving segments' rows, and `columns` carries the per-column
/// row coverage (identical across columns under segment-atomic loss, but
/// reported per column so clients need not know that invariant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Total segments of the table.
    pub segments_total: usize,
    /// Segments whose shards answered.
    pub segments_answered: usize,
    /// Global indices of the unanswered segments, ascending.
    pub missing_segments: Vec<usize>,
    /// Total rows of the table.
    pub rows_total: usize,
    /// Rows in the answered segments.
    pub rows_answered: usize,
    /// Addresses of the shards that were dropped.
    pub failed_shards: Vec<String>,
    /// Per-column `(name, rows answered)` coverage.
    pub columns: Vec<(String, usize)>,
}

impl Coverage {
    /// Whether the answer covers the whole table (a strict answer, or a
    /// degraded one where every shard survived after all).
    pub fn complete(&self) -> bool {
        self.missing_segments.is_empty() && self.segments_answered == self.segments_total
    }

    /// The wire rendering `/distributed/explore` attaches to its answers.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("complete", Json::from(self.complete())),
            ("segments_total", Json::from(self.segments_total)),
            ("segments_answered", Json::from(self.segments_answered)),
            (
                "missing_segments",
                Json::array(
                    self.missing_segments
                        .iter()
                        .map(|&s| Json::from(s))
                        .collect(),
                ),
            ),
            ("rows_total", Json::from(self.rows_total)),
            ("rows_answered", Json::from(self.rows_answered)),
            (
                "failed_shards",
                Json::array(
                    self.failed_shards
                        .iter()
                        .map(|s| Json::from(s.as_str()))
                        .collect(),
                ),
            ),
            (
                "columns",
                Json::object(
                    self.columns
                        .iter()
                        .map(|(name, rows)| (name.clone(), Json::from(*rows)))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_retry_policy_is_the_historical_retry_once() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.max_attempts, 2);
        assert_eq!(policy.backoff(1, 0.5), Duration::ZERO);
    }

    #[test]
    fn backoff_grows_exponentially_and_jitters_deterministically() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(100),
            multiplier: 2.0,
            jitter: 0.0,
        };
        assert_eq!(policy.backoff(1, 0.9), Duration::from_millis(100));
        assert_eq!(policy.backoff(2, 0.1), Duration::from_millis(200));
        assert_eq!(policy.backoff(3, 0.5), Duration::from_millis(400));

        let jittered = RetryPolicy {
            jitter: 0.5,
            ..policy
        };
        // draw 0 → factor 0.5; draw 1 → factor 1.5; draw 0.5 → factor 1.
        assert_eq!(jittered.backoff(1, 0.0), Duration::from_millis(50));
        assert_eq!(jittered.backoff(1, 1.0), Duration::from_millis(150));
        assert_eq!(jittered.backoff(1, 0.5), Duration::from_millis(100));
        // Same draw, same backoff — determinism is the whole point.
        assert_eq!(jittered.backoff(2, 0.25), jittered.backoff(2, 0.25));
    }

    #[test]
    fn backoff_is_capped() {
        let policy = RetryPolicy {
            max_attempts: 64,
            base_backoff: Duration::from_secs(10),
            multiplier: 10.0,
            jitter: 0.0,
        };
        assert_eq!(policy.backoff(30, 0.5), MAX_BACKOFF);
    }

    #[test]
    fn deadlines_expire_and_report_budget() {
        let deadline = Deadline::after(Duration::from_secs(60));
        assert!(!deadline.expired());
        assert!(deadline.remaining().is_some());
        assert_eq!(deadline.budget_ms(), 60_000);

        let past = Deadline::anchored(
            Duration::from_millis(5),
            Instant::now() - Duration::from_millis(50),
        );
        assert!(past.expired());
        assert_eq!(past.remaining(), None);
        match past.error("working") {
            AtlasError::Deadline {
                budget_ms, phase, ..
            } => {
                assert_eq!(budget_ms, 5);
                assert_eq!(phase, "working");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cool_down() {
        let breaker = CircuitBreaker::new(CircuitConfig {
            failure_threshold: 2,
            cool_down: Duration::from_millis(20),
        });
        assert!(breaker.admit());
        assert_eq!(breaker.state(), CircuitState::Closed);
        breaker.record_failure();
        assert!(breaker.admit());
        assert!(!breaker.is_refusing());
        breaker.record_failure();
        assert_eq!(breaker.state(), CircuitState::Open);
        assert_eq!(breaker.opened_total(), 1);
        assert!(!breaker.admit());
        assert!(breaker.is_refusing());

        std::thread::sleep(Duration::from_millis(25));
        assert!(!breaker.is_refusing() || breaker.state() == CircuitState::Open);
        // Cooled down: the next caller is the probe.
        assert!(breaker.admit());
        assert_eq!(breaker.state(), CircuitState::HalfOpen);
        // Concurrent callers are refused while the probe is out.
        assert!(!breaker.admit());
        breaker.record_success();
        assert_eq!(breaker.state(), CircuitState::Closed);
        assert!(breaker.admit());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let breaker = CircuitBreaker::new(CircuitConfig {
            failure_threshold: 1,
            cool_down: Duration::from_millis(5),
        });
        breaker.record_failure();
        assert_eq!(breaker.state(), CircuitState::Open);
        std::thread::sleep(Duration::from_millis(10));
        assert!(breaker.admit());
        breaker.record_failure();
        assert_eq!(breaker.state(), CircuitState::Open);
        assert_eq!(breaker.opened_total(), 2);
    }

    #[test]
    fn disabled_breaker_always_admits() {
        let breaker = CircuitBreaker::new(CircuitConfig {
            failure_threshold: 0,
            cool_down: Duration::ZERO,
        });
        for _ in 0..10 {
            breaker.record_failure();
        }
        assert!(breaker.admit());
        assert!(!breaker.is_refusing());
        assert_eq!(breaker.opened_total(), 0);
    }

    #[test]
    fn coverage_reports_completeness_and_serializes() {
        let full = Coverage {
            segments_total: 4,
            segments_answered: 4,
            missing_segments: vec![],
            rows_total: 100,
            rows_answered: 100,
            failed_shards: vec![],
            columns: vec![("age".to_string(), 100)],
        };
        assert!(full.complete());
        let degraded = Coverage {
            segments_total: 4,
            segments_answered: 3,
            missing_segments: vec![2],
            rows_total: 100,
            rows_answered: 75,
            failed_shards: vec!["127.0.0.1:9".to_string()],
            columns: vec![("age".to_string(), 75)],
        };
        assert!(!degraded.complete());
        let json = degraded.to_json();
        assert_eq!(json.get("segments_answered").and_then(Json::index), Some(3));
        assert_eq!(json.get("rows_answered").and_then(Json::index), Some(75));
        assert_eq!(
            json.get("missing_segments")
                .and_then(Json::items)
                .map(|v| v.len()),
            Some(1)
        );
        assert_eq!(
            json.get("columns")
                .and_then(|c| c.get("age"))
                .and_then(Json::index),
            Some(75)
        );
    }
}
