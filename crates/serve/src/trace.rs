//! Span ↔ JSON conversion for the trace endpoints and shard propagation.
//!
//! Spans cross process boundaries in two places: a shard returns its local
//! spans in the `spans` field of a reply (flat records, remapped and
//! re-parented by the coordinator — [`crate::distributed`]), and the server
//! exposes assembled trees on `GET /debug/traces/:id` and inline under
//! `?trace=1`. All numbers are integers (ids and microseconds), so none of
//! this touches the float codecs or the bit-identity surface.

use crate::wire::Json;
use atlas_obs::{SpanNode, SpanRecord};

/// One flat span record as JSON (the shard → coordinator shape).
pub fn span_to_json(record: &SpanRecord) -> Json {
    Json::object(vec![
        ("trace_id", Json::from(record.trace_id)),
        ("span_id", Json::from(record.span_id)),
        ("parent_id", Json::from(record.parent_id)),
        ("name", Json::from(record.name.as_str())),
        ("start_us", Json::from(record.start_us)),
        ("duration_us", Json::from(record.duration_us)),
        (
            "attrs",
            Json::object(
                record
                    .attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                    .collect(),
            ),
        ),
    ])
}

/// Parse one flat span record back out of [`span_to_json`]'s shape. Returns
/// `None` on any missing or mistyped field (a malformed shard reply must not
/// take the coordinator down — the trace is best-effort metadata).
pub fn span_from_json(value: &Json) -> Option<SpanRecord> {
    let id = |key: &str| value.get(key).and_then(Json::num).map(|n| n as u64);
    let attrs = match value.get("attrs") {
        Some(Json::Obj(members)) => members
            .iter()
            .filter_map(|(k, v)| v.str().map(|s| (k.clone(), s.to_string())))
            .collect(),
        _ => Vec::new(),
    };
    Some(SpanRecord {
        trace_id: id("trace_id")?,
        span_id: id("span_id")?,
        parent_id: id("parent_id")?,
        name: value.get("name")?.str()?.to_string(),
        start_us: id("start_us")?,
        duration_us: id("duration_us")?,
        attrs,
    })
}

/// A list of flat span records (a shard reply's `spans` field).
pub fn spans_to_json(records: &[SpanRecord]) -> Json {
    Json::array(records.iter().map(span_to_json).collect())
}

/// Parse a shard reply's `spans` field; malformed entries are dropped.
pub fn spans_from_json(value: &Json) -> Vec<SpanRecord> {
    value
        .items()
        .map(|items| items.iter().filter_map(span_from_json).collect())
        .unwrap_or_default()
}

/// One assembled span tree as nested JSON: the flat record's fields plus a
/// `children` array in deterministic `(start_us, span_id)` order.
pub fn tree_to_json(node: &SpanNode) -> Json {
    let mut members = match span_to_json(&node.record) {
        Json::Obj(members) => members,
        // span_to_json always builds an object; an empty one is a safe
        // fallback that keeps this off the panic path.
        _ => Vec::new(),
    };
    members.push((
        "children".to_string(),
        Json::array(node.children.iter().map(tree_to_json).collect()),
    ));
    Json::Obj(members)
}

/// Assemble flat records into trees and render them as a JSON array.
pub fn forest_to_json(records: Vec<SpanRecord>) -> Json {
    Json::array(
        atlas_obs::assemble_forest(records)
            .iter()
            .map(tree_to_json)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(span_id: u64, parent_id: u64) -> SpanRecord {
        SpanRecord {
            trace_id: 7,
            span_id,
            parent_id,
            name: format!("span-{span_id}"),
            start_us: span_id * 10,
            duration_us: 5,
            attrs: vec![("shard".to_string(), "1".to_string())],
        }
    }

    #[test]
    fn spans_round_trip_through_json() {
        let records = vec![record(1, 0), record(2, 1)];
        let encoded = spans_to_json(&records).encode();
        let parsed = spans_from_json(&crate::wire::parse(&encoded).unwrap());
        assert_eq!(parsed, records);
    }

    #[test]
    fn malformed_entries_are_dropped_not_fatal() {
        let json = crate::wire::parse(r#"[{"trace_id": 1}, 4, "nope"]"#).unwrap();
        assert!(spans_from_json(&json).is_empty());
    }

    #[test]
    fn trees_nest_children_in_start_order() {
        let forest = forest_to_json(vec![record(1, 0), record(3, 1), record(2, 1)]);
        let root = &forest.items().unwrap()[0];
        let children = root.get("children").unwrap().items().unwrap();
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].get("name").unwrap().str(), Some("span-2"));
        assert_eq!(children[1].get("name").unwrap().str(), Some("span-3"));
    }
}
