//! The concurrent exploration server.
//!
//! A `std::net::TcpListener` accept loop feeds a bounded connection queue
//! drained by a fixed pool of worker threads (sized by
//! [`ServeConfig::threads`], overridable with `ATLAS_SERVE_THREADS` — the
//! serving analogue of `AtlasConfig::parallelism`). When the queue is full
//! the accept loop answers `503 Service Unavailable` immediately instead of
//! letting latency collapse — admission control, not buffering. Shutdown is
//! graceful: in-flight requests finish, idle keep-alive connections close,
//! worker threads drain and join.
//!
//! ## Endpoints
//!
//! | method & path | body | effect |
//! |---------------|------|--------|
//! | `POST /sessions` | `{"dataset": name}` | create an exploration session |
//! | `POST /sessions/:id/explore` | conjunctive SQL (or `{"sql": …}`) | ranked maps |
//! | `POST /sessions/:id/drill` | `{"map": i, "region": j}` | drill into a region |
//! | `POST /sessions/:id/back` | — | pop one exploration step |
//! | `GET /sessions/:id/history` | — | the exploration history |
//! | `DELETE /sessions/:id` | — | end the session |
//! | `GET /datasets` | — | served datasets + cache stats |
//! | `POST /datasets/:name/rows` | header-less CSV rows | incremental append |
//! | `GET /healthz` | — | liveness |
//! | `GET /metrics` | — | counters, latency percentiles + histogram |
//!
//! Errors use `{"error": message}` bodies; `atlas_core::AtlasError` maps to
//! `4xx` when [`atlas_core::AtlasError::is_user_error`] holds and `5xx`
//! otherwise.

use crate::distributed::{Coordinator, CoordinatorOptions};
use crate::http::{self, HttpError, Request, Response};
use crate::metrics::{Endpoint, ServerMetrics};
use crate::registry::{Dataset, Registry};
use crate::resilience::{CircuitConfig, Deadline, ExploreMode, HedgePolicy, RetryPolicy};
use crate::sessions::{SessionManager, WireSession};
use crate::wire::{self, Json};
use atlas_core::{AtlasError, MapResult};
use atlas_explorer::Session;
use atlas_query::{parse_query, to_compact, to_sql};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a blocking read waits before the connection loop re-checks the
/// shutdown flag and the keep-alive deadline.
const READ_SLICE: Duration = Duration::from_millis(150);

/// How long a slow client may take to deliver one complete request once its
/// first byte has arrived (socket read timeouts within this window are
/// ridden out, not treated as a dead connection).
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (tests, benchmarks).
    pub bind: String,
    /// Worker threads serving connections. Defaults to `ATLAS_SERVE_THREADS`
    /// when set, otherwise at least 2 and at most the hardware threads.
    pub threads: usize,
    /// Bound on connections waiting for a worker; beyond it the accept loop
    /// answers `503`.
    pub queue_depth: usize,
    /// How long an idle keep-alive connection is kept open.
    pub keep_alive: Duration,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Idle time after which a session is evicted.
    pub session_ttl: Duration,
    /// Most sessions alive at once (the least recently used one is evicted
    /// beyond this).
    pub max_sessions: usize,
    /// Most exploration steps a session's history retains (oldest steps are
    /// discarded beyond this, so one long-lived session cannot grow server
    /// memory without bound).
    pub max_history_depth: usize,
    /// Shard servers (`host:port`) this server coordinates over for
    /// `POST /distributed/explore`. Empty means the endpoint answers `400`.
    pub shards: Vec<String>,
    /// Per-shard request timeout for distributed exploration (the read/write
    /// budget of one attempt; retries are governed by [`ServeConfig::retry`]).
    pub shard_timeout: Duration,
    /// TCP connect budget towards a shard, split from [`ServeConfig::shard_timeout`]
    /// so an unreachable host fails fast instead of consuming the full
    /// request budget.
    pub shard_connect_timeout: Duration,
    /// Retry schedule of one shard call.
    pub retry: RetryPolicy,
    /// When the coordinator duplicates a straggling shard read.
    pub hedge: HedgePolicy,
    /// Per-shard circuit-breaker tuning.
    pub circuit: CircuitConfig,
    /// Degraded partial answers: `Some(k)` lets a request that opts in with
    /// `{"mode": "degraded"}` fold the surviving segments when at most `k`
    /// shards are down (the answer carries exact coverage); `None` answers
    /// such requests with `400`.
    pub degraded_max_failed: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_string(),
            threads: ServeConfig::default_threads(),
            queue_depth: 128,
            keep_alive: Duration::from_secs(5),
            max_body_bytes: 16 * 1024 * 1024,
            session_ttl: Duration::from_secs(15 * 60),
            max_sessions: 1024,
            max_history_depth: 256,
            shards: Vec::new(),
            shard_timeout: Duration::from_secs(10),
            shard_connect_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            hedge: HedgePolicy::Off,
            circuit: CircuitConfig::default(),
            degraded_max_failed: None,
        }
    }
}

impl ServeConfig {
    /// The default worker count: the `ATLAS_SERVE_THREADS` environment
    /// variable if set to a positive integer, otherwise the hardware
    /// threads, floored at 2 (workers block on sockets, so even a single
    /// core benefits from a second worker).
    pub fn default_threads() -> usize {
        match std::env::var("ATLAS_SERVE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => minirayon::available_threads().max(2),
        }
    }

    /// This configuration with the given worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The fault-policy knobs this configuration hands the distributed
    /// coordinator.
    pub fn coordinator_options(&self) -> CoordinatorOptions {
        CoordinatorOptions {
            shard_timeout: self.shard_timeout,
            connect_timeout: self.shard_connect_timeout,
            retry: self.retry,
            hedge: self.hedge,
            circuit: self.circuit,
            ..CoordinatorOptions::default()
        }
    }
}

/// Accepted connections waiting for a worker, each stamped with its
/// admission time so request deadlines can be anchored where queueing
/// started rather than where parsing did.
struct ConnectionQueue {
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    ready: Condvar,
}

struct Shared {
    registry: Registry,
    sessions: SessionManager,
    metrics: ServerMetrics,
    config: ServeConfig,
    shutdown: AtomicBool,
    connections: ConnectionQueue,
    in_flight: AtomicUsize,
    shard: crate::shard::ShardState,
    /// Per-dataset scatter-gather coordinators, connected lazily on the
    /// first `/distributed/explore` request and re-connected when the
    /// dataset generation moves (always empty when `config.shards` is).
    coordinators: Mutex<HashMap<String, (usize, Arc<Coordinator>)>>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// True if accepted connections are waiting for a free worker.
    fn has_queued_connections(&self) -> bool {
        let queue = match self.connections.queue.lock() {
            Ok(q) => q,
            Err(poisoned) => poisoned.into_inner(),
        };
        !queue.is_empty()
    }
}

/// The running server: its address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Bind, spawn the accept loop and the worker pool, and return a handle.
    /// The registry must serve at least one dataset.
    pub fn start(registry: Registry, config: ServeConfig) -> std::io::Result<ServerHandle> {
        if registry.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "the registry serves no dataset",
            ));
        }
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            sessions: SessionManager::new(config.session_ttl, config.max_sessions),
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            connections: ConnectionQueue {
                queue: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
            },
            in_flight: AtomicUsize::new(0),
            registry,
            config: config.clone(),
            shard: crate::shard::ShardState::default(),
            coordinators: Mutex::new(HashMap::new()),
        });

        let workers = (0..config.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("atlas-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("atlas-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics (live view).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// The served datasets.
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Requests currently being processed (in-flight, queue excluded).
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Block until the server stops (for the `atlas-serve` binary, which
    /// runs until killed).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn shutdown_in_place(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared.connections.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.shutdown_in_place();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
                // A persistent accept error (e.g. fd exhaustion) must not
                // become a busy-spin that starves the workers.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        if shared.shutting_down() {
            return;
        }
        let mut queue = match shared.connections.queue.lock() {
            Ok(q) => q,
            Err(poisoned) => poisoned.into_inner(),
        };
        if queue.len() >= shared.config.queue_depth {
            drop(queue);
            // Admission control: refuse now, cheaply, on the accept thread.
            shared.metrics.record_overload();
            refuse_overloaded(stream, retry_after_secs(shared));
            continue;
        }
        queue.push_back((stream, Instant::now()));
        drop(queue);
        shared.connections.ready.notify_one();
    }
}

/// Seconds a refused client should wait before retrying: the time to drain
/// a full connection queue at the recent median request latency across the
/// worker pool, clamped to 1..=30. Before any request has been served the
/// estimate falls back to one second.
fn retry_after_secs(shared: &Shared) -> u64 {
    let Some(p50_ms) = shared.metrics.p50_latency_ms() else {
        return 1;
    };
    let backlog = shared.config.queue_depth as f64;
    let workers = shared.config.threads.max(1) as f64;
    let secs = (backlog * p50_ms / workers / 1000.0).ceil();
    if secs.is_finite() && secs >= 1.0 {
        (secs as u64).min(30)
    } else {
        1
    }
}

/// Answer `503` on a connection whose request will never be read. The
/// response carries a `Retry-After` estimate derived from the queue depth
/// and the recent latency window. Dropping the socket with unread request
/// bytes pending would make the kernel send a reset that destroys the
/// response before the client reads it, so after writing we half-close and
/// briefly drain what the client already sent.
fn refuse_overloaded(stream: TcpStream, retry_after: u64) {
    let mut writer = BufWriter::new(&stream);
    if http::write_response(
        &mut writer,
        &Response::error(503, "server overloaded; retry later")
            .with_header("Retry-After", retry_after.to_string()),
        false,
    )
    .is_err()
    {
        return;
    }
    drop(writer);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut scratch = [0u8; 4096];
    let mut reader = &stream;
    // Bounded drain: a handful of reads covers any reasonable request head
    // without letting an overload turn the accept thread into a read loop.
    for _ in 0..16 {
        match std::io::Read::read(&mut reader, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (stream, admitted) = {
            let mut queue = match shared.connections.queue.lock() {
                Ok(q) => q,
                Err(poisoned) => poisoned.into_inner(),
            };
            loop {
                if let Some(entry) = queue.pop_front() {
                    break entry;
                }
                if shared.shutting_down() {
                    return;
                }
                queue = match shared
                    .connections
                    .ready
                    .wait_timeout(queue, Duration::from_millis(100))
                {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        handle_connection(shared, stream, admitted);
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Synthesize a child span of `parent` covering the already-elapsed interval
/// `[earlier, later]` — the admission-queue wait and the response write,
/// which cannot be measured by an open guard because they start before the
/// request span exists or end after the handler returns. No-op when the
/// parent is not recording.
fn record_past_interval(
    parent: &atlas_obs::SpanGuard,
    name: &str,
    earlier: Instant,
    later: Instant,
) {
    let Some(ctx) = parent.context() else {
        return;
    };
    let tracer = atlas_obs::tracer();
    let start_us = tracer
        .now_us()
        .saturating_sub(earlier.elapsed().as_micros() as u64);
    tracer.record(atlas_obs::SpanRecord {
        trace_id: ctx.trace_id,
        span_id: tracer.alloc_id(),
        parent_id: ctx.span_id,
        name: name.to_string(),
        start_us,
        duration_us: later.saturating_duration_since(earlier).as_micros() as u64,
        attrs: Vec::new(),
    });
}

fn handle_connection(shared: &Shared, stream: TcpStream, admitted: Instant) {
    let picked_up = Instant::now();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_SLICE));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut idle_deadline = Instant::now() + shared.config.keep_alive;
    // The deadline anchor of the first request is the connection's admission
    // time, so the budget covers time spent waiting for a worker; later
    // keep-alive requests re-anchor when their first byte arrives (idle time
    // between requests is the client's, not the server's).
    let mut anchor = admitted;
    let mut first_request = true;
    loop {
        // Wait for the next request without consuming anything, so idle
        // timeouts and shutdown are observed between requests, not inside
        // them.
        match http::wait_for_data(&mut reader) {
            Ok(()) => {
                if !first_request {
                    anchor = Instant::now();
                }
            }
            Err(HttpError::Idle) => {
                // Hang up on an idle keep-alive connection when shutdown or
                // the idle deadline says so — or when other connections are
                // queued while this one sends nothing: a worker pinned to a
                // silent connection must not starve waiting clients.
                if shared.shutting_down()
                    || Instant::now() >= idle_deadline
                    || shared.has_queued_connections()
                {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let parse_started = Instant::now();
        let request = match http::read_request(
            &mut reader,
            shared.config.max_body_bytes,
            Some(Instant::now() + REQUEST_READ_TIMEOUT),
        ) {
            Ok(request) => request,
            Err(HttpError::Closed | HttpError::Idle | HttpError::Io(_)) => return,
            Err(HttpError::Malformed(message)) => {
                let _ = http::write_response(&mut writer, &Response::error(400, message), false);
                return;
            }
            Err(HttpError::BodyTooLarge { limit }) => {
                let _ = http::write_response(
                    &mut writer,
                    &Response::error(413, format!("body exceeds the {limit}-byte limit")),
                    false,
                );
                return;
            }
        };
        let started = Instant::now();
        // The request's trace root: every span the handlers open below
        // (session locks, the engine's pipeline phases, kernel events on the
        // worker's context) nests under it, and the queue wait, parse time
        // and response write are synthesized as child intervals.
        let mut request_span = atlas_obs::span_root("request");
        request_span.attr("method", &request.method);
        request_span.attr("path", &request.path);
        if first_request {
            record_past_interval(&request_span, "queue.wait", admitted, picked_up);
        }
        record_past_interval(&request_span, "request.parse", parse_started, started);
        first_request = false;
        let keep_alive = request.wants_keep_alive() && !shared.shutting_down();
        // A non-numeric deadline header is ignored rather than rejected: the
        // header is advisory, and a client that mangles it still deserves an
        // answer.
        let deadline = request
            .header(http::DEADLINE_HEADER)
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(|ms| Deadline::anchored(Duration::from_millis(ms), anchor));
        if let Some(d) = deadline.as_ref().filter(|d| d.expired()) {
            // The budget burned out before any work started (most likely in
            // the admission queue): answer 504 with the work-done metadata
            // instead of starting work that cannot finish in time.
            let response = error_response(&d.error("admission queue"));
            shared.metrics.record(
                Endpoint::Other,
                response.status,
                started.elapsed().as_secs_f64() * 1000.0,
            );
            if http::write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
                return;
            }
            idle_deadline = Instant::now() + shared.config.keep_alive;
            continue;
        }
        let (endpoint, reply) = route(shared, &request, deadline);
        request_span.attr("endpoint", endpoint.label());
        let response = match reply {
            crate::shard::Reply::Normal(response) => response,
            // Injected raw outcomes (truncated/garbled answers) are written
            // verbatim and close the connection; a hangup writes nothing.
            // Neither reaches the metrics — they exist for the chaos suite.
            crate::shard::Reply::Raw(bytes) => {
                let _ = writer.write_all(&bytes);
                let _ = writer.flush();
                return;
            }
            crate::shard::Reply::Hangup => return,
        };
        request_span.attr("status", response.status);
        shared.metrics.record(
            endpoint,
            response.status,
            started.elapsed().as_secs_f64() * 1000.0,
        );
        let write_started = Instant::now();
        let write_result = http::write_response(&mut writer, &response, keep_alive);
        record_past_interval(
            &request_span,
            "response.write",
            write_started,
            Instant::now(),
        );
        drop(request_span);
        if write_result.is_err() || !keep_alive {
            return;
        }
        idle_deadline = Instant::now() + shared.config.keep_alive;
    }
}

/// Map an engine error onto the wire: `4xx` for the caller's mistakes, `5xx`
/// for the engine's.
pub(crate) fn error_response(error: &AtlasError) -> Response {
    let status = match error {
        AtlasError::Query(_) | AtlasError::InvalidConfig(_) => 400,
        AtlasError::EmptyWorkingSet | AtlasError::NoCuttableAttributes => 422,
        AtlasError::Columnar(_) | AtlasError::Distributed(_) => 500,
        AtlasError::Deadline { .. } => 504,
    };
    debug_assert_eq!(status < 500, error.is_user_error());
    if let AtlasError::Deadline {
        budget_ms,
        elapsed_ms,
        phase,
    } = error
    {
        // 504 answers carry work-done-so-far metadata instead of silently
        // overrunning: how much budget was spent and where it went.
        return Response::json(
            504,
            &Json::object(vec![
                ("error", Json::from(error.to_string())),
                (
                    "work_done",
                    Json::object(vec![
                        ("budget_ms", Json::from(*budget_ms)),
                        ("elapsed_ms", Json::from(*elapsed_ms)),
                        ("phase", Json::from(phase.as_str())),
                    ]),
                ),
            ]),
        );
    }
    Response::error(status, error.to_string())
}

fn route(
    shared: &Shared,
    request: &Request,
    deadline: Option<Deadline>,
) -> (Endpoint, crate::shard::Reply) {
    let segments = request.path_segments();
    let method = request.method.as_str();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => (Endpoint::Healthz, healthz(shared).into()),
        ("GET", ["metrics"]) => (Endpoint::Metrics, metrics(shared, request).into()),
        ("GET", ["debug", "traces"]) => (Endpoint::DebugTraces, debug_traces().into()),
        ("GET", ["debug", "traces", id]) => (Endpoint::DebugTrace, debug_trace(id).into()),
        ("GET", ["datasets"]) => (Endpoint::Datasets, datasets(shared).into()),
        ("POST", ["datasets", name, "rows"]) => (
            Endpoint::AppendRows,
            append_rows(shared, name, request).into(),
        ),
        ("POST", ["sessions"]) => (
            Endpoint::CreateSession,
            create_session(shared, request).into(),
        ),
        ("POST", ["sessions", token, "explore"]) => {
            (Endpoint::Explore, explore(shared, token, request).into())
        }
        ("POST", ["sessions", token, "drill"]) => {
            (Endpoint::Drill, drill(shared, token, request).into())
        }
        ("POST", ["sessions", token, "back"]) => (Endpoint::Back, back(shared, token).into()),
        ("GET", ["sessions", token, "history"]) => {
            (Endpoint::History, history(shared, token).into())
        }
        ("DELETE", ["sessions", token]) => (
            Endpoint::DeleteSession,
            delete_session(shared, token).into(),
        ),
        ("POST", ["shard", action]) => match crate::shard::endpoint_of(action) {
            Some(endpoint) => (
                endpoint,
                crate::shard::handle(&shared.registry, &shared.shard, endpoint, request),
            ),
            None => (
                Endpoint::Other,
                Response::error(404, format!("no shard endpoint '{action}'")).into(),
            ),
        },
        ("POST", ["distributed", "explore"]) => (
            Endpoint::DistExplore,
            distributed_explore(shared, request, deadline).into(),
        ),
        (_, ["healthz" | "metrics" | "datasets"])
        | (_, ["sessions", ..])
        | (_, ["debug", "traces", ..])
        | (_, ["shard", ..] | ["distributed", ..]) => (
            Endpoint::Other,
            Response::error(405, format!("method {method} not allowed here")).into(),
        ),
        _ => (
            Endpoint::Other,
            Response::error(404, format!("no route for {method} {}", request.path)).into(),
        ),
    }
}

fn healthz(shared: &Shared) -> Response {
    let (ring_spans, ring_capacity) = atlas_obs::tracer().occupancy();
    let mut members = vec![
        ("status".to_string(), Json::from("ok")),
        (
            "uptime_seconds".to_string(),
            Json::Num(shared.metrics.uptime_seconds()),
        ),
        (
            "build".to_string(),
            Json::object(vec![
                ("version", Json::from(env!("CARGO_PKG_VERSION"))),
                (
                    "profile",
                    Json::from(if cfg!(debug_assertions) {
                        "debug"
                    } else {
                        "release"
                    }),
                ),
            ]),
        ),
        (
            "trace".to_string(),
            Json::object(vec![
                ("enabled", Json::from(atlas_obs::enabled())),
                ("ring_spans", Json::from(ring_spans)),
                ("ring_capacity", Json::from(ring_capacity)),
            ]),
        ),
        (
            "datasets".to_string(),
            Json::array(
                shared
                    .registry
                    .datasets()
                    .iter()
                    .map(|d| Json::from(d.name()))
                    .collect(),
            ),
        ),
        ("threads".to_string(), Json::from(shared.config.threads)),
    ];
    let coordinators = match shared.coordinators.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if !coordinators.is_empty() {
        // Shard health at a glance: the circuit state of every shard this
        // server coordinates, per dataset.
        let mut entries: Vec<(String, Json)> = coordinators
            .iter() // lint: nondeterministic-ok (entries are sorted by dataset name below)
            .map(|(dataset, (_, coordinator))| {
                (
                    dataset.clone(),
                    Json::array(
                        coordinator
                            .circuit_states()
                            .into_iter()
                            .map(|(addr, state, opened_total)| {
                                Json::object(vec![
                                    ("shard", Json::from(addr)),
                                    ("state", Json::from(state.label())),
                                    ("opened_total", Json::from(opened_total)),
                                ])
                            })
                            .collect(),
                    ),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        members.push(("circuits".to_string(), Json::object(entries)));
    }
    drop(coordinators);
    Response::json(200, &Json::Obj(members))
}

/// The obs-layer additions shared by both `/metrics` formats, as JSON
/// members: per-dataset profile-cache hits/misses, the process-wide
/// `atlas_obs` counters (kernel dispatch paths, cache tallies), and the
/// tracer ring occupancy.
fn obs_extra_json(shared: &Shared) -> Vec<(String, Json)> {
    let (ring_spans, ring_capacity) = atlas_obs::tracer().occupancy();
    vec![
        (
            "profile_cache".to_string(),
            Json::object(
                shared
                    .registry
                    .datasets()
                    .iter()
                    .map(|d| {
                        let stats = d.snapshot().0.profile_stats();
                        (
                            d.name().to_string(),
                            Json::object(vec![
                                ("hits", Json::from(stats.hits)),
                                ("misses", Json::from(stats.misses)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "counters".to_string(),
            Json::object(
                atlas_obs::counters()
                    .into_iter()
                    .map(|(name, value)| (name.to_string(), Json::from(value)))
                    .collect(),
            ),
        ),
        (
            "trace".to_string(),
            Json::object(vec![
                ("enabled", Json::from(atlas_obs::enabled())),
                ("ring_spans", Json::from(ring_spans)),
                ("ring_capacity", Json::from(ring_capacity)),
            ]),
        ),
    ]
}

/// The same obs-layer additions as Prometheus samples. Counter names follow
/// the workspace convention `family.label.label`, which maps onto labelled
/// families here: `kernel.<op>.<path>` → `atlas_kernel_dispatch_total`,
/// `profile.cache.<outcome>` → `atlas_profile_cache_total`; anything else
/// falls back to a generic `atlas_counter_total{name=…}`.
fn obs_extra_prometheus(shared: &Shared) -> Vec<crate::metrics::PromSample> {
    use crate::metrics::PromSample;
    let mut samples = Vec::new();
    for dataset in shared.registry.datasets() {
        let stats = dataset.snapshot().0.profile_stats();
        for (outcome, value) in [("hit", stats.hits), ("miss", stats.misses)] {
            samples.push(PromSample::counter(
                "atlas_profile_cache_dataset_total",
                vec![
                    ("dataset", dataset.name().to_string()),
                    ("outcome", outcome.to_string()),
                ],
                value as u64,
            ));
        }
    }
    for (name, value) in atlas_obs::counters() {
        let parts: Vec<&str> = name.split('.').collect();
        let sample = match parts.as_slice() {
            ["kernel", op, path] => PromSample::counter(
                "atlas_kernel_dispatch_total",
                vec![("op", op.to_string()), ("path", path.to_string())],
                value,
            ),
            ["profile", "cache", outcome] => PromSample::counter(
                "atlas_profile_cache_total",
                vec![("outcome", outcome.to_string())],
                value,
            ),
            _ => PromSample::counter(
                "atlas_counter_total",
                vec![("name", name.to_string())],
                value,
            ),
        };
        samples.push(sample);
    }
    let (ring_spans, ring_capacity) = atlas_obs::tracer().occupancy();
    samples.push(PromSample::gauge(
        "atlas_trace_enabled",
        Vec::new(),
        if atlas_obs::enabled() { 1.0 } else { 0.0 },
    ));
    samples.push(PromSample::gauge(
        "atlas_trace_ring_spans",
        Vec::new(),
        ring_spans as f64,
    ));
    samples.push(PromSample::gauge(
        "atlas_trace_ring_capacity",
        Vec::new(),
        ring_capacity as f64,
    ));
    samples
}

fn metrics(shared: &Shared, request: &Request) -> Response {
    // Content negotiation: Prometheus scrapers ask for text; everything that
    // spoke the JSON report before keeps getting it (no `Accept`, `*/*`, or
    // an explicit `application/json`).
    let wants_text = request
        .header("accept")
        .is_some_and(|accept| accept.contains("text/plain") || accept.contains("openmetrics"));
    if wants_text {
        return Response::text(200, shared.metrics.prometheus(obs_extra_prometheus(shared)));
    }
    let sessions = shared.sessions.counters();
    let mut extra = vec![
        (
            "sessions".to_string(),
            Json::object(vec![
                ("live", Json::from(sessions.live)),
                ("created", Json::from(sessions.created)),
                ("evicted", Json::from(sessions.evicted)),
            ]),
        ),
        (
            "result_cache".to_string(),
            Json::object(
                shared
                    .registry
                    .datasets()
                    .iter()
                    .map(|d| {
                        let stats = d.cache_stats();
                        (
                            d.name().to_string(),
                            Json::object(vec![
                                ("hits", Json::from(stats.hits)),
                                ("misses", Json::from(stats.misses)),
                                ("evicted", Json::from(stats.evicted)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ];
    let coordinators = match shared.coordinators.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if !coordinators.is_empty() {
        let mut entries: Vec<(String, Json)> = coordinators
            .iter() // lint: nondeterministic-ok (entries are sorted by dataset name two lines down)
            .map(|(dataset, (_, coordinator))| (dataset.clone(), coordinator.metrics_snapshot()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        extra.push(("distributed".to_string(), Json::object(entries)));
    }
    drop(coordinators);
    extra.extend(obs_extra_json(shared));
    Response::json(200, &shared.metrics.snapshot(extra))
}

/// Cap on the roots listed by `GET /debug/traces` (newest first).
const DEBUG_TRACE_LIST_CAP: usize = 64;

/// `GET /debug/traces`: the trace roots currently in the ring, newest first —
/// id, root span name, timing, and span count, enough to pick an id for
/// `GET /debug/traces/:id`.
fn debug_traces() -> Response {
    let records = atlas_obs::tracer().snapshot();
    let mut roots: Vec<Json> = atlas_obs::assemble_forest(records)
        .iter()
        .map(|tree| {
            Json::object(vec![
                ("trace_id", Json::from(tree.record.trace_id)),
                ("root", Json::from(tree.record.name.as_str())),
                ("start_us", Json::from(tree.record.start_us)),
                ("duration_us", Json::from(tree.record.duration_us)),
                ("spans", Json::from(tree.size())),
            ])
        })
        .collect();
    roots.reverse(); // snapshot order is oldest-first by construction
    roots.truncate(DEBUG_TRACE_LIST_CAP);
    Response::json(
        200,
        &Json::object(vec![
            ("enabled", Json::from(atlas_obs::enabled())),
            ("count", Json::from(roots.len())),
            ("traces", Json::array(roots)),
        ]),
    )
}

/// `GET /debug/traces/:id`: every span of one trace, assembled into trees.
fn debug_trace(id: &str) -> Response {
    let Ok(trace_id) = id.parse::<u64>() else {
        return Response::error(400, format!("trace id '{id}' is not an integer"));
    };
    let records = atlas_obs::tracer().trace(trace_id);
    if records.is_empty() {
        return Response::error(
            404,
            format!("no spans for trace {trace_id} (expired from the ring or never recorded)"),
        );
    }
    Response::json(
        200,
        &Json::object(vec![
            ("trace_id", Json::from(trace_id)),
            ("spans", Json::from(records.len())),
            ("tree", crate::trace::forest_to_json(records)),
        ]),
    )
}

fn datasets(shared: &Shared) -> Response {
    Response::json(
        200,
        &Json::object(vec![(
            "datasets",
            Json::array(
                shared
                    .registry
                    .datasets()
                    .iter()
                    .map(Dataset::summary)
                    .collect(),
            ),
        )]),
    )
}

fn append_rows(shared: &Shared, name: &str, request: &Request) -> Response {
    let Some(dataset) = shared.registry.get(name) else {
        return Response::error(404, format!("no dataset named '{name}'"));
    };
    if request.body.is_empty() {
        return Response::error(400, "empty body; send header-less CSV rows");
    }
    match dataset.append_csv(&request.body) {
        // Append failures stem from the request body (malformed CSV, schema
        // mismatch), so they map to 400 regardless of the error variant.
        Err(error) => Response::error(400, error.to_string()),
        Ok(outcome) => Response::json(
            200,
            &Json::object(vec![
                ("dataset", Json::from(name)),
                ("appended_rows", Json::from(outcome.appended_rows)),
                ("appended_segments", Json::from(outcome.appended_segments)),
                ("total_rows", Json::from(outcome.total_rows)),
                ("generation", Json::from(outcome.generation)),
            ]),
        ),
    }
}

/// `POST /distributed/explore`: run one scatter-gather exploration over the
/// configured shard servers. The body is conjunctive SQL, or a JSON envelope
/// `{"sql": …, "dataset": …, "mode": "strict"|"degraded"}`; the local
/// dataset entry supplies the engine configuration (the shards hold the
/// rows). Degraded mode must be enabled server-side
/// ([`ServeConfig::degraded_max_failed`]); the answer then carries a
/// `coverage` member stating exactly which segments and rows it folds.
/// Coordinators are cached per dataset and re-connected when the dataset
/// generation moves. A request deadline is forwarded to the shards.
fn distributed_explore(shared: &Shared, request: &Request, deadline: Option<Deadline>) -> Response {
    if shared.config.shards.is_empty() {
        return Response::error(
            400,
            "this server coordinates no shards; start it with --shards host:port,…",
        );
    }
    let Some(body) = request.body_text() else {
        return Response::error(400, "body must be UTF-8 text");
    };
    let (sql, requested, mode_name) = match wire::parse(body) {
        Ok(json) => match json.get("sql").and_then(|s| s.str()) {
            Some(sql) => (
                sql.to_string(),
                json.get("dataset").and_then(|d| d.str()).map(String::from),
                json.get("mode").and_then(|m| m.str()).map(String::from),
            ),
            None => return Response::error(400, "JSON body must carry a \"sql\" member"),
        },
        Err(_) => (body.to_string(), None, None),
    };
    if sql.trim().is_empty() {
        return Response::error(400, "empty query; send conjunctive SQL");
    }
    let mode = match mode_name.as_deref() {
        None | Some("strict") => ExploreMode::Strict,
        Some("degraded") => match shared.config.degraded_max_failed {
            Some(max_failed_shards) => ExploreMode::Degraded { max_failed_shards },
            None => {
                return Response::error(
                    400,
                    "degraded mode is disabled on this server; \
                     start it with --degraded-max-failed K",
                );
            }
        },
        Some(other) => {
            return Response::error(
                400,
                format!("unknown mode '{other}' (use \"strict\" or \"degraded\")"),
            );
        }
    };
    let dataset = match &requested {
        Some(name) => match shared.registry.get(name) {
            Some(dataset) => dataset,
            None => return Response::error(404, format!("no dataset named '{name}'")),
        },
        None => match shared.registry.datasets() {
            [only] => only,
            _ => {
                return Response::error(
                    400,
                    "several datasets are served; pass {\"dataset\": name}",
                );
            }
        },
    };
    let (engine, generation) = dataset.snapshot();
    let coordinator = {
        let mut coordinators = match shared.coordinators.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        match coordinators.get(dataset.name()) {
            Some((cached_generation, coordinator)) if *cached_generation == generation => {
                Arc::clone(coordinator)
            }
            _ => {
                let connected = Coordinator::connect_with(
                    &shared.config.shards,
                    dataset.name(),
                    engine.config().clone(),
                    shared.config.coordinator_options(),
                );
                match connected {
                    Ok(coordinator) => {
                        let coordinator = Arc::new(coordinator);
                        coordinators.insert(
                            dataset.name().to_string(),
                            (generation, Arc::clone(&coordinator)),
                        );
                        coordinator
                    }
                    Err(error) => return error_response(&error),
                }
            }
        }
    };
    let mut query = match parse_query(&sql) {
        Ok(query) => query,
        Err(error) => return Response::error(400, format!("query error: {error}")),
    };
    if query.table.is_empty() {
        query.table = dataset.name().to_string();
    }
    match coordinator.explore_resilient(&query, mode, deadline) {
        Ok(answer) => {
            let mut body = map_result_json(dataset.name(), &answer.result, false, 1);
            if let Json::Obj(members) = &mut body {
                members.push(("coverage".to_string(), answer.coverage.to_json()));
            }
            if wants_trace(request) {
                attach_trace(&mut body);
            }
            Response::json(200, &body)
        }
        Err(error) => error_response(&error),
    }
}

fn create_session(shared: &Shared, request: &Request) -> Response {
    let body = request.body_text().unwrap_or("");
    let requested = if body.trim().is_empty() {
        None
    } else {
        match wire::parse(body) {
            Ok(json) => json.get("dataset").and_then(|d| d.str()).map(String::from),
            Err(e) => return Response::error(400, e.to_string()),
        }
    };
    let dataset = match &requested {
        Some(name) => match shared.registry.get(name) {
            Some(dataset) => dataset,
            None => return Response::error(404, format!("no dataset named '{name}'")),
        },
        None => match shared.registry.datasets() {
            [only] => only,
            _ => {
                return Response::error(
                    400,
                    "several datasets are served; pass {\"dataset\": name}",
                );
            }
        },
    };
    let (engine, generation) = dataset.snapshot();
    let session = Session::with_engine((*engine).clone());
    let table = engine.table();
    let (rows, columns) = (table.num_rows(), table.num_columns());
    let token = shared
        .sessions
        .create(dataset.name().to_string(), session, generation);
    Response::json(
        201,
        &Json::object(vec![
            ("token", Json::from(token)),
            ("dataset", Json::from(dataset.name())),
            ("rows", Json::from(rows)),
            ("columns", Json::from(columns)),
            ("generation", Json::from(generation)),
        ]),
    )
}

/// Catch a session up with segments appended since its last request: adopt
/// the dataset's current engine — already re-prepared incrementally, once,
/// by the append endpoint — and refresh the step on screen
/// ([`Session::adopt_engine`]). Sessions never re-profile segments the
/// dataset has profiled.
fn catch_up(wire_session: &mut WireSession, dataset: &Dataset) -> Result<(), AtlasError> {
    let (engine, generation) = dataset.snapshot();
    if wire_session.applied_generation < generation {
        wire_session.session.adopt_engine((*engine).clone())?;
        wire_session.applied_generation = generation;
    }
    Ok(())
}

/// Shared preamble of the session endpoints: resolve the token, lock the
/// session, find its dataset, and catch up on appended segments; then run
/// the action.
fn with_session(
    shared: &Shared,
    token: &str,
    action: impl FnOnce(&mut WireSession, &Dataset) -> Response,
) -> Response {
    let Some(slot) = shared.sessions.get(token) else {
        return Response::error(
            404,
            format!("no session '{token}' (expired or never created)"),
        );
    };
    // The lock span covers contention on the session (another request of the
    // same token in flight), one of the request-lifecycle stations.
    let lock_span = atlas_obs::span("session.lock");
    let mut wire_session = match slot.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    drop(lock_span);
    let Some(dataset) = shared.registry.get(&wire_session.dataset) else {
        return Response::error(500, "session references an unknown dataset");
    };
    if let Err(error) = catch_up(&mut wire_session, dataset) {
        return error_response(&error);
    }
    action(&mut wire_session, dataset)
}

/// Whether the request opted into an inline span tree (`?trace=1`).
fn wants_trace(request: &Request) -> bool {
    matches!(request.query_param("trace"), Some(v) if !v.is_empty() && v != "0")
}

/// Inline the current request's span tree (so far) into a response body,
/// plus the trace id for a later `GET /debug/traces/:id`. The request root
/// span is still open at this point, so the inline tree roots at the spans
/// already closed under it — the engine's `explore` span and its phases.
/// Purely additive: every pre-existing member (`maps` above all) is
/// untouched, which is what keeps `?trace=1` off the bit-identity surface.
fn attach_trace(body: &mut Json) {
    let Json::Obj(members) = body else {
        return;
    };
    match atlas_obs::current() {
        Some(ctx) => {
            let records = atlas_obs::tracer().trace(ctx.trace_id);
            members.push(("trace_id".to_string(), Json::from(ctx.trace_id)));
            members.push(("trace".to_string(), crate::trace::forest_to_json(records)));
        }
        None => {
            // Tracing disabled: the flag still answers, with an empty tree.
            members.push(("trace_id".to_string(), Json::Null));
            members.push(("trace".to_string(), Json::array(Vec::new())));
        }
    }
}

fn explore(shared: &Shared, token: &str, request: &Request) -> Response {
    let Some(body) = request.body_text() else {
        return Response::error(400, "body must be UTF-8 text");
    };
    // The body is the conjunctive SQL itself; a JSON envelope {"sql": …} is
    // also accepted for clients that prefer uniform bodies.
    let sql = match wire::parse(body) {
        Ok(json) => match json.get("sql").and_then(|s| s.str()) {
            Some(sql) => sql.to_string(),
            None => return Response::error(400, "JSON body must carry a \"sql\" member"),
        },
        Err(_) => body.to_string(),
    };
    if sql.trim().is_empty() {
        return Response::error(400, "empty query; send conjunctive SQL");
    }
    let trace_requested = wants_trace(request);
    with_session(shared, token, |wire_session, dataset| {
        let mut query = match parse_query(&sql) {
            Ok(query) => query,
            Err(error) => return Response::error(400, format!("query error: {error}")),
        };
        if query.table.is_empty() {
            query.table = dataset.name().to_string();
        }
        let (result, cache_hit) = dataset.explore(&query);
        match result {
            Err(error) => error_response(&error),
            Ok(result) => {
                let mut response = map_result_json(dataset.name(), &result, cache_hit, {
                    wire_session.session.depth() + 1
                });
                wire_session.session.record(query, result);
                wire_session
                    .session
                    .trim_history(shared.config.max_history_depth);
                if trace_requested {
                    attach_trace(&mut response);
                }
                Response::json(200, &response)
            }
        }
    })
}

fn drill(shared: &Shared, token: &str, request: &Request) -> Response {
    let body = request.body_text().unwrap_or("").trim().to_string();
    let (map_idx, region_idx) = if body.is_empty() {
        (0, 0)
    } else {
        match wire::parse(&body) {
            Err(e) => return Response::error(400, e.to_string()),
            Ok(json) => {
                let index_of = |key: &str| match json.get(key) {
                    None => Ok(0),
                    Some(v) => v
                        .index()
                        .ok_or_else(|| format!("\"{key}\" must be a non-negative integer")),
                };
                match (index_of("map"), index_of("region")) {
                    (Ok(m), Ok(r)) => (m, r),
                    (Err(e), _) | (_, Err(e)) => return Response::error(400, e),
                }
            }
        }
    };
    with_session(shared, token, |wire_session, dataset| {
        let query = match wire_session.session.drill_query(map_idx, region_idx) {
            Ok(query) => query,
            Err(error) => return Response::error(400, error.to_string()),
        };
        let (result, cache_hit) = dataset.explore(&query);
        match result {
            Err(error) => error_response(&error),
            Ok(result) => {
                let response = map_result_json(dataset.name(), &result, cache_hit, {
                    wire_session.session.depth() + 1
                });
                wire_session.session.record(query, result);
                wire_session
                    .session
                    .trim_history(shared.config.max_history_depth);
                Response::json(200, &response)
            }
        }
    })
}

fn back(shared: &Shared, token: &str) -> Response {
    with_session(shared, token, |wire_session, _| {
        let popped = wire_session.session.back();
        let current = wire_session
            .session
            .current()
            .map(|step| Json::from(to_sql(&step.query)))
            .unwrap_or(Json::Null);
        Response::json(
            200,
            &Json::object(vec![
                ("popped", Json::from(popped.is_some())),
                ("depth", Json::from(wire_session.session.depth())),
                ("current", current),
            ]),
        )
    })
}

fn history(shared: &Shared, token: &str) -> Response {
    with_session(shared, token, |wire_session, dataset| {
        let steps: Vec<Json> = wire_session
            .session
            .history()
            .iter()
            .map(|step| {
                Json::object(vec![
                    ("sql", Json::from(to_sql(&step.query))),
                    ("working_set_size", Json::from(step.working_set_size())),
                    ("num_maps", Json::from(step.result.num_maps())),
                    (
                        "best_score",
                        step.result
                            .best()
                            .map(|m| Json::Num(m.score))
                            .unwrap_or(Json::Null),
                    ),
                ])
            })
            .collect();
        Response::json(
            200,
            &Json::object(vec![
                ("dataset", Json::from(dataset.name())),
                ("depth", Json::from(wire_session.session.depth())),
                ("steps", Json::array(steps)),
            ]),
        )
    })
}

fn delete_session(shared: &Shared, token: &str) -> Response {
    if shared.sessions.remove(token) {
        Response::json(200, &Json::object(vec![("deleted", Json::from(true))]))
    } else {
        Response::error(404, format!("no session '{token}'"))
    }
}

/// Render one exploration result for the wire. Scores are encoded with
/// shortest-round-trip formatting, so a client parsing the JSON recovers the
/// exact `f64` the engine ranked with; region predicates are rendered by the
/// query printer, whose print/parse round-trip is property-tested.
fn map_result_json(dataset: &str, result: &MapResult, cache_hit: bool, depth: usize) -> Json {
    let maps: Vec<Json> = result
        .maps
        .iter()
        .map(|ranked| {
            let regions: Vec<Json> = ranked
                .map
                .regions
                .iter()
                .map(|region| {
                    Json::object(vec![
                        ("sql", Json::from(to_sql(&region.query))),
                        ("compact", Json::from(to_compact(&region.query))),
                        ("count", Json::from(region.count())),
                        ("cover", Json::Num(region.cover(result.working_set_size))),
                    ])
                })
                .collect();
            Json::object(vec![
                ("score", Json::Num(ranked.score)),
                (
                    "source_attributes",
                    Json::array(
                        ranked
                            .map
                            .source_attributes
                            .iter()
                            .map(|a| Json::from(a.as_str()))
                            .collect(),
                    ),
                ),
                ("regions", Json::array(regions)),
            ])
        })
        .collect();
    Json::object(vec![
        ("dataset", Json::from(dataset)),
        ("depth", Json::from(depth)),
        ("working_set_size", Json::from(result.working_set_size)),
        ("num_maps", Json::from(result.num_maps())),
        ("cache_hit", Json::from(cache_hit)),
        (
            "skipped_attributes",
            Json::array(
                result
                    .skipped_attributes
                    .iter()
                    .map(|a| Json::from(a.as_str()))
                    .collect(),
            ),
        ),
        (
            "timings_ms",
            Json::object(vec![
                ("query", Json::Num(result.timings.query_ms)),
                ("candidates", Json::Num(result.timings.candidates_ms)),
                ("clustering", Json::Num(result.timings.clustering_ms)),
                ("merge", Json::Num(result.timings.merge_ms)),
                ("rank", Json::Num(result.timings.rank_ms)),
                ("total", Json::Num(result.timings.total_ms)),
            ]),
        ),
        ("maps", Json::array(maps)),
    ])
}
