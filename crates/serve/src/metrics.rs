//! Server observability: request counters and a latency histogram.
//!
//! Counters are lock-free atomics bumped on every response; latencies go
//! into a bounded ring of recent samples from which `/metrics` derives
//! p50/p95/p99 (via `atlas_stats::quantile`) and an equi-width histogram
//! (via [`atlas_stats::histogram::EquiWidthHistogram`]) on demand. Keeping
//! raw samples instead of fixed buckets means the histogram's range always
//! matches the workload actually observed.

use crate::wire::Json;
use atlas_stats::histogram::EquiWidthHistogram;
use atlas_stats::quantile::quantile;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many recent latency samples the ring keeps.
const LATENCY_WINDOW: usize = 4096;
/// Histogram resolution of the `/metrics` latency report.
const HISTOGRAM_BINS: usize = 12;

/// The endpoints the server distinguishes in its counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /sessions`
    CreateSession,
    /// `POST /sessions/:id/explore`
    Explore,
    /// `POST /sessions/:id/drill`
    Drill,
    /// `POST /sessions/:id/back`
    Back,
    /// `GET /sessions/:id/history`
    History,
    /// `DELETE /sessions/:id`
    DeleteSession,
    /// `GET /datasets`
    Datasets,
    /// `POST /datasets/:name/rows`
    AppendRows,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /shard/meta`
    ShardMeta,
    /// `POST /shard/working`
    ShardWorking,
    /// `POST /shard/summaries`
    ShardSummaries,
    /// `POST /shard/sketches`
    ShardSketches,
    /// `POST /shard/values`
    ShardValues,
    /// `POST /shard/categories`
    ShardCategories,
    /// `POST /shard/select`
    ShardSelect,
    /// `POST /shard/contingency`
    ShardContingency,
    /// `POST /shard/inject`
    ShardInject,
    /// `POST /distributed/explore`
    DistExplore,
    /// `GET /debug/traces`
    DebugTraces,
    /// `GET /debug/traces/:id`
    DebugTrace,
    /// Anything else (404s, bad paths).
    Other,
}

/// All endpoints, in reporting order.
pub const ENDPOINTS: [Endpoint; 23] = [
    Endpoint::CreateSession,
    Endpoint::Explore,
    Endpoint::Drill,
    Endpoint::Back,
    Endpoint::History,
    Endpoint::DeleteSession,
    Endpoint::Datasets,
    Endpoint::AppendRows,
    Endpoint::Healthz,
    Endpoint::Metrics,
    Endpoint::ShardMeta,
    Endpoint::ShardWorking,
    Endpoint::ShardSummaries,
    Endpoint::ShardSketches,
    Endpoint::ShardValues,
    Endpoint::ShardCategories,
    Endpoint::ShardSelect,
    Endpoint::ShardContingency,
    Endpoint::ShardInject,
    Endpoint::DistExplore,
    Endpoint::DebugTraces,
    Endpoint::DebugTrace,
    Endpoint::Other,
];

impl Endpoint {
    /// The label under which the endpoint reports.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::CreateSession => "create_session",
            Endpoint::Explore => "explore",
            Endpoint::Drill => "drill",
            Endpoint::Back => "back",
            Endpoint::History => "history",
            Endpoint::DeleteSession => "delete_session",
            Endpoint::Datasets => "datasets",
            Endpoint::AppendRows => "append_rows",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::ShardMeta => "shard_meta",
            Endpoint::ShardWorking => "shard_working",
            Endpoint::ShardSummaries => "shard_summaries",
            Endpoint::ShardSketches => "shard_sketches",
            Endpoint::ShardValues => "shard_values",
            Endpoint::ShardCategories => "shard_categories",
            Endpoint::ShardSelect => "shard_select",
            Endpoint::ShardContingency => "shard_contingency",
            Endpoint::ShardInject => "shard_inject",
            Endpoint::DistExplore => "dist_explore",
            Endpoint::DebugTraces => "debug_traces",
            Endpoint::DebugTrace => "debug_trace",
            Endpoint::Other => "other",
        }
    }

    /// Position in [`ENDPOINTS`]. A total match instead of a scan-and-
    /// `expect`: forgetting to list a new variant is a compile error here,
    /// not a panic at record time (the round trip is pinned by a test).
    fn index(self) -> usize {
        match self {
            Endpoint::CreateSession => 0,
            Endpoint::Explore => 1,
            Endpoint::Drill => 2,
            Endpoint::Back => 3,
            Endpoint::History => 4,
            Endpoint::DeleteSession => 5,
            Endpoint::Datasets => 6,
            Endpoint::AppendRows => 7,
            Endpoint::Healthz => 8,
            Endpoint::Metrics => 9,
            Endpoint::ShardMeta => 10,
            Endpoint::ShardWorking => 11,
            Endpoint::ShardSummaries => 12,
            Endpoint::ShardSketches => 13,
            Endpoint::ShardValues => 14,
            Endpoint::ShardCategories => 15,
            Endpoint::ShardSelect => 16,
            Endpoint::ShardContingency => 17,
            Endpoint::ShardInject => 18,
            Endpoint::DistExplore => 19,
            Endpoint::DebugTraces => 20,
            Endpoint::DebugTrace => 21,
            Endpoint::Other => 22,
        }
    }
}

#[derive(Default)]
struct LatencyRing {
    samples: Vec<f64>,
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, latency_ms: f64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(latency_ms);
        } else {
            // lint: slice-index-ok (next < LATENCY_WINDOW == samples.len() in this branch)
            self.samples[self.next] = latency_ms;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }
}

/// Request counters plus the recent-latency window.
pub struct ServerMetrics {
    started: Instant,
    by_endpoint: [AtomicU64; ENDPOINTS.len()],
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    /// Connections refused with `503` by admission control.
    rejected_overload: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Fresh counters; `started` is now (drives the uptime report).
    pub fn new() -> ServerMetrics {
        ServerMetrics {
            started: Instant::now(),
            by_endpoint: std::array::from_fn(|_| AtomicU64::new(0)),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing::default()),
        }
    }

    /// Record one served request.
    pub fn record(&self, endpoint: Endpoint, status: u16, latency_ms: f64) {
        // lint: slice-index-ok (Endpoint::index is a total match onto 0..ENDPOINTS.len())
        self.by_endpoint[endpoint.index()].fetch_add(1, Ordering::Relaxed);
        let bucket = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        bucket.fetch_add(1, Ordering::Relaxed);
        match self.latencies.lock() {
            Ok(mut ring) => ring.push(latency_ms),
            Err(poisoned) => poisoned.into_inner().push(latency_ms),
        }
    }

    /// Seconds since the server started (drives `/healthz` and `/metrics`).
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Record one connection refused by admission control.
    pub fn record_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests served (all endpoints).
    pub fn total_requests(&self) -> u64 {
        self.by_endpoint
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Connections refused with `503` so far.
    pub fn rejected(&self) -> u64 {
        self.rejected_overload.load(Ordering::Relaxed)
    }

    /// The median of the recent-latency window, in milliseconds — `None`
    /// until a first request has been served. Drives the `Retry-After`
    /// estimate on overload refusals.
    pub fn p50_latency_ms(&self) -> Option<f64> {
        let ring = match self.latencies.lock() {
            Ok(ring) => ring,
            Err(poisoned) => poisoned.into_inner(),
        };
        quantile(&ring.samples, 0.5)
    }

    /// The `/metrics` report. `extra` members (cache stats, session
    /// counters) are appended by the server so this module stays ignorant of
    /// the registry.
    pub fn snapshot(&self, extra: Vec<(String, Json)>) -> Json {
        let samples: Vec<f64> = match self.latencies.lock() {
            Ok(ring) => ring.samples.clone(),
            Err(poisoned) => poisoned.into_inner().samples.clone(),
        };
        let latency = if samples.is_empty() {
            Json::Null
        } else {
            let p = |q: f64| {
                quantile(&samples, q)
                    .map(|x| Json::Num(round3(x)))
                    .unwrap_or(Json::Null)
            };
            let histogram = EquiWidthHistogram::build(&samples, HISTOGRAM_BINS)
                .map(|h| {
                    Json::object(vec![
                        (
                            "edges_ms",
                            Json::array(h.edges.iter().map(|&e| Json::Num(round3(e))).collect()),
                        ),
                        (
                            "counts",
                            Json::array(h.counts.iter().map(|&c| Json::from(c)).collect()),
                        ),
                    ])
                })
                .unwrap_or(Json::Null);
            Json::object(vec![
                ("window", Json::from(samples.len())),
                ("p50_ms", p(0.5)),
                ("p95_ms", p(0.95)),
                ("p99_ms", p(0.99)),
                (
                    "max_ms",
                    Json::Num(round3(samples.iter().cloned().fold(0.0, f64::max))),
                ),
                ("histogram", histogram),
            ])
        };
        let mut members = vec![
            (
                "uptime_s".to_string(),
                Json::Num(round3(self.started.elapsed().as_secs_f64())),
            ),
            (
                "requests_total".to_string(),
                Json::from(self.total_requests()),
            ),
            (
                "requests_by_endpoint".to_string(),
                Json::object(
                    ENDPOINTS
                        .iter()
                        .map(|e| {
                            (
                                e.label(),
                                // lint: slice-index-ok (Endpoint::index is a total match onto 0..ENDPOINTS.len())
                                Json::from(self.by_endpoint[e.index()].load(Ordering::Relaxed)),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "responses".to_string(),
                Json::object(vec![
                    (
                        "ok_2xx",
                        Json::from(self.responses_2xx.load(Ordering::Relaxed)),
                    ),
                    (
                        "client_error_4xx",
                        Json::from(self.responses_4xx.load(Ordering::Relaxed)),
                    ),
                    (
                        "server_error_5xx",
                        Json::from(self.responses_5xx.load(Ordering::Relaxed)),
                    ),
                    ("rejected_overload_503", Json::from(self.rejected())),
                ]),
            ),
            ("latency".to_string(), latency),
        ];
        members.extend(extra);
        Json::Obj(members)
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// One sample appended to the Prometheus exposition by the server (cache
/// stats, kernel-path counters, tracer occupancy): `name{labels} value`.
#[derive(Debug, Clone)]
pub struct PromSample {
    /// Metric family name (`atlas_...`).
    pub name: &'static str,
    /// `counter` or `gauge` — emitted once per family as a `# TYPE` line.
    pub kind: &'static str,
    /// `key="value"` label pairs, already in exposition order.
    pub labels: Vec<(&'static str, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// A counter sample.
    pub fn counter(name: &'static str, labels: Vec<(&'static str, String)>, value: u64) -> Self {
        PromSample {
            name,
            kind: "counter",
            labels,
            value: value as f64,
        }
    }

    /// A gauge sample.
    pub fn gauge(name: &'static str, labels: Vec<(&'static str, String)>, value: f64) -> Self {
        PromSample {
            name,
            kind: "gauge",
            labels,
            value,
        }
    }
}

/// Escape a label value per the Prometheus text format (`\\`, `\"`, `\n`).
fn escape_label(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn push_sample(out: &mut String, seen: &mut Vec<&'static str>, sample: &PromSample) {
    if !seen.contains(&sample.name) {
        seen.push(sample.name);
        out.push_str("# TYPE ");
        out.push_str(sample.name);
        out.push(' ');
        out.push_str(sample.kind);
        out.push('\n');
    }
    out.push_str(sample.name);
    if !sample.labels.is_empty() {
        out.push('{');
        for (i, (key, value)) in sample.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(key);
            out.push_str("=\"");
            escape_label(value, out);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    // `{}` on f64 is the shortest round-trip rendering, the same contract the
    // wire codecs guarantee; integral values print with no fraction.
    let value = sample.value;
    out.push_str(&format!("{value}\n"));
}

impl ServerMetrics {
    /// The `/metrics` report in the Prometheus text exposition format
    /// (version 0.0.4): the same counters as [`ServerMetrics::snapshot`] as
    /// `atlas_*` families — requests labelled by endpoint, response classes,
    /// latency quantiles over the recent window — followed by the server's
    /// `extra` samples (dataset caches, kernel paths, tracer ring).
    pub fn prometheus(&self, extra: Vec<PromSample>) -> String {
        let mut samples: Vec<PromSample> = vec![PromSample::gauge(
            "atlas_uptime_seconds",
            Vec::new(),
            round3(self.started.elapsed().as_secs_f64()),
        )];
        for endpoint in ENDPOINTS.iter() {
            samples.push(PromSample::counter(
                "atlas_requests_total",
                vec![("endpoint", endpoint.label().to_string())],
                // lint: slice-index-ok (Endpoint::index is a total match onto 0..ENDPOINTS.len())
                self.by_endpoint[endpoint.index()].load(Ordering::Relaxed),
            ));
        }
        for (class, counter) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            samples.push(PromSample::counter(
                "atlas_responses_total",
                vec![("class", class.to_string())],
                counter.load(Ordering::Relaxed),
            ));
        }
        samples.push(PromSample::counter(
            "atlas_rejected_overload_total",
            Vec::new(),
            self.rejected(),
        ));
        let window: Vec<f64> = match self.latencies.lock() {
            Ok(ring) => ring.samples.clone(),
            Err(poisoned) => poisoned.into_inner().samples.clone(),
        };
        samples.push(PromSample::gauge(
            "atlas_request_latency_window",
            Vec::new(),
            window.len() as f64,
        ));
        for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
            if let Some(value) = quantile(&window, q) {
                samples.push(PromSample::gauge(
                    "atlas_request_latency_ms",
                    vec![("quantile", label.to_string())],
                    round3(value),
                ));
            }
        }
        samples.extend(extra);

        let mut out = String::new();
        let mut seen: Vec<&'static str> = Vec::new();
        for sample in &samples {
            push_sample(&mut out, &mut seen, sample);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_index_round_trips_through_endpoints() {
        // `index()` is a hand-maintained match; this pins it to the
        // reporting order so the two can never drift apart.
        for (i, e) in ENDPOINTS.iter().enumerate() {
            assert_eq!(e.index(), i, "{:?}", e);
            assert_eq!(ENDPOINTS[e.index()], *e);
        }
    }

    #[test]
    fn counters_and_latency_percentiles_report() {
        let metrics = ServerMetrics::new();
        for i in 0..100 {
            metrics.record(Endpoint::Explore, 200, 1.0 + i as f64);
        }
        metrics.record(Endpoint::Drill, 400, 0.5);
        metrics.record(Endpoint::Other, 500, 2.0);
        metrics.record_overload();
        assert_eq!(metrics.total_requests(), 102);
        assert_eq!(metrics.rejected(), 1);

        let snapshot = metrics.snapshot(vec![("extra".to_string(), Json::from(7u64))]);
        let by = snapshot.get("requests_by_endpoint").unwrap();
        assert_eq!(by.get("explore").unwrap().num(), Some(100.0));
        assert_eq!(by.get("drill").unwrap().num(), Some(1.0));
        let responses = snapshot.get("responses").unwrap();
        assert_eq!(responses.get("ok_2xx").unwrap().num(), Some(100.0));
        assert_eq!(responses.get("client_error_4xx").unwrap().num(), Some(1.0));
        assert_eq!(responses.get("server_error_5xx").unwrap().num(), Some(1.0));
        assert_eq!(
            responses.get("rejected_overload_503").unwrap().num(),
            Some(1.0)
        );
        let latency = snapshot.get("latency").unwrap();
        let p50 = latency.get("p50_ms").unwrap().num().unwrap();
        let p99 = latency.get("p99_ms").unwrap().num().unwrap();
        assert!(p50 > 40.0 && p50 < 60.0, "{p50}");
        assert!(p99 > p50);
        let histogram = latency.get("histogram").unwrap();
        let counts = histogram.get("counts").unwrap().items().unwrap();
        let total: f64 = counts.iter().map(|c| c.num().unwrap()).sum();
        assert_eq!(total as usize, 102);
        assert_eq!(snapshot.get("extra").unwrap().num(), Some(7.0));
    }

    #[test]
    fn empty_latency_window_reports_null() {
        let metrics = ServerMetrics::new();
        let snapshot = metrics.snapshot(Vec::new());
        assert_eq!(snapshot.get("latency"), Some(&Json::Null));
        assert_eq!(snapshot.get("requests_total").unwrap().num(), Some(0.0));
    }

    #[test]
    fn prometheus_exposition_renders_each_family_once() {
        let metrics = ServerMetrics::new();
        metrics.record(Endpoint::Explore, 200, 1.5);
        metrics.record(Endpoint::Explore, 200, 2.5);
        let text = metrics.prometheus(vec![PromSample::counter(
            "atlas_profile_cache_total",
            vec![
                ("dataset", "census".to_string()),
                ("outcome", "hit".to_string()),
            ],
            42,
        )]);
        assert_eq!(
            text.matches("# TYPE atlas_requests_total counter").count(),
            1,
            "{text}"
        );
        assert!(text.contains("atlas_requests_total{endpoint=\"explore\"} 2\n"));
        assert!(text.contains("atlas_responses_total{class=\"2xx\"} 2\n"));
        assert!(text.contains("atlas_profile_cache_total{dataset=\"census\",outcome=\"hit\"} 42\n"));
        assert!(text.contains("atlas_request_latency_ms{quantile=\"0.5\"}"));
        assert!(text.contains("# TYPE atlas_uptime_seconds gauge"));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let metrics = ServerMetrics::new();
        let text = metrics.prometheus(vec![PromSample::gauge(
            "atlas_test_gauge",
            vec![("dataset", "we\"ird\\name\n".to_string())],
            1.0,
        )]);
        assert!(text.contains("dataset=\"we\\\"ird\\\\name\\n\""), "{text}");
    }

    #[test]
    fn the_ring_is_bounded() {
        let metrics = ServerMetrics::new();
        for i in 0..(LATENCY_WINDOW + 500) {
            metrics.record(Endpoint::Explore, 200, i as f64);
        }
        let snapshot = metrics.snapshot(Vec::new());
        let window = snapshot
            .get("latency")
            .unwrap()
            .get("window")
            .unwrap()
            .num()
            .unwrap() as usize;
        assert_eq!(window, LATENCY_WINDOW);
    }
}
