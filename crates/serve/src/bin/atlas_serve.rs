//! The `atlas-serve` binary: boot the exploration server from the command
//! line.
//!
//! ```text
//! cargo run --release -p atlas-serve -- --port 7171 --dataset census:100000
//! ```
//!
//! Options:
//!
//! * `--port N` — TCP port (default 7171; 0 picks an ephemeral port)
//! * `--bind ADDR` — bind address (default 127.0.0.1)
//! * `--dataset SPEC` — repeatable; `census:ROWS[:SEED]`,
//!   `sdss:ROWS[:SEED]`, `orders:ROWS[:SEED]` or `csv:NAME=PATH`
//!   (default `census:20000`)
//! * `--threads N` — worker threads (default: `ATLAS_SERVE_THREADS` or the
//!   hardware threads)
//! * `--cache N` — shared result-cache capacity per dataset, 0 disables
//!   (default 64)
//! * `--fast` / `--quality` — engine preset (default: the paper's config)
//! * `--merge product|composition` — cluster-merge operator (distributed
//!   coordinators require `product`)
//! * `--shards HOST:PORT,…` — coordinate `POST /distributed/explore` over
//!   these shard servers (they must serve the same dataset specs)
//! * `--shard-timeout-ms N` — per-shard request timeout (default 10000);
//!   a failed request is retried once before the explore fails

use atlas_core::{AtlasConfig, MergeStrategy};
use atlas_serve::{DatasetOptions, Registry, ServeConfig, Server};
use std::process::exit;

fn fail(message: &str) -> ! {
    eprintln!("atlas-serve: {message}");
    exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut port: u16 = 7171;
    let mut bind = "127.0.0.1".to_string();
    let mut specs: Vec<String> = Vec::new();
    let mut serve_config = ServeConfig::default();
    let mut engine_config = AtlasConfig::default();
    let mut cache_capacity = 64usize;

    let value_of = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => {
                port = value_of(&mut args, "--port")
                    .parse()
                    .unwrap_or_else(|_| fail("--port needs a number"));
            }
            "--bind" => bind = value_of(&mut args, "--bind"),
            "--dataset" => specs.push(value_of(&mut args, "--dataset")),
            "--threads" => {
                serve_config.threads = value_of(&mut args, "--threads")
                    .parse()
                    .unwrap_or_else(|_| fail("--threads needs a number"));
            }
            "--cache" => {
                cache_capacity = value_of(&mut args, "--cache")
                    .parse()
                    .unwrap_or_else(|_| fail("--cache needs a number"));
            }
            "--fast" => engine_config = AtlasConfig::fast(),
            "--quality" => engine_config = AtlasConfig::quality(),
            "--merge" => {
                engine_config.merge = match value_of(&mut args, "--merge").as_str() {
                    "product" => MergeStrategy::Product,
                    "composition" => MergeStrategy::Composition,
                    other => fail(&format!("unknown merge strategy '{other}'")),
                };
            }
            "--shards" => {
                serve_config.shards = value_of(&mut args, "--shards")
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--shard-timeout-ms" => {
                let ms: u64 = value_of(&mut args, "--shard-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--shard-timeout-ms needs a number"));
                serve_config.shard_timeout = std::time::Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                println!(
                    "usage: atlas-serve [--port N] [--bind ADDR] [--dataset SPEC]... \
                     [--threads N] [--cache N] [--fast|--quality] \
                     [--merge product|composition] [--shards HOST:PORT,...] \
                     [--shard-timeout-ms N]"
                );
                return;
            }
            other => fail(&format!("unknown option '{other}' (try --help)")),
        }
    }
    if specs.is_empty() {
        specs.push("census:20000".to_string());
    }
    serve_config.bind = format!("{bind}:{port}");

    let mut registry = Registry::new();
    for spec in &specs {
        let options = DatasetOptions {
            config: engine_config.clone(),
            cache_capacity,
        };
        if let Err(error) = registry.add_spec(spec, options) {
            fail(&format!("loading '{spec}' failed: {error}"));
        }
        match registry.datasets().last() {
            Some(dataset) => eprintln!("loaded dataset '{}' from '{spec}'", dataset.name()),
            None => fail(&format!("loading '{spec}' registered no dataset")),
        }
    }

    let handle = match Server::start(registry, serve_config.clone()) {
        Ok(handle) => handle,
        Err(error) => fail(&format!("binding {} failed: {error}", serve_config.bind)),
    };
    let addr = handle.addr();
    eprintln!(
        "atlas-serve listening on http://{addr} ({} workers)",
        serve_config.threads
    );
    eprintln!("try:");
    eprintln!("  curl -s http://{addr}/healthz");
    eprintln!("  curl -s -X POST http://{addr}/sessions -d '{{}}'");
    eprintln!("  curl -s -X POST http://{addr}/sessions/<token>/explore -d 'SELECT * FROM census'");
    handle.join();
}
