//! The `atlas-serve` binary: boot the exploration server from the command
//! line.
//!
//! ```text
//! cargo run --release -p atlas-serve -- --port 7171 --dataset census:100000
//! ```
//!
//! Options:
//!
//! * `--port N` — TCP port (default 7171; 0 picks an ephemeral port)
//! * `--bind ADDR` — bind address (default 127.0.0.1)
//! * `--dataset SPEC` — repeatable; `census:ROWS[:SEED]`,
//!   `sdss:ROWS[:SEED]`, `orders:ROWS[:SEED]` or `csv:NAME=PATH`
//!   (default `census:20000`)
//! * `--threads N` — worker threads (default: `ATLAS_SERVE_THREADS` or the
//!   hardware threads)
//! * `--cache N` — shared result-cache capacity per dataset, 0 disables
//!   (default 64)
//! * `--fast` / `--quality` — engine preset (default: the paper's config)
//! * `--merge product|composition` — cluster-merge operator (distributed
//!   coordinators require `product`)
//! * `--shards HOST:PORT,…` — coordinate `POST /distributed/explore` over
//!   these shard servers (they must serve the same dataset specs)
//! * `--shard-timeout-ms N` — per-shard request timeout (default 10000)
//! * `--shard-connect-timeout-ms N` — TCP connect budget towards a shard,
//!   split from the request timeout so an unreachable host fails fast
//!   (default 2000)
//! * `--retry-attempts N` — total attempts per shard call (default 2)
//! * `--retry-backoff-ms N` — backoff before the first retry, growing
//!   exponentially with seeded jitter (default 0: retry immediately)
//! * `--hedge-after-ms N` — duplicate a shard read still unanswered after
//!   N ms; first success wins (default: no hedging)
//! * `--circuit-threshold N` — consecutive shard failures that open its
//!   circuit breaker; 0 disables the breaker (default 5)
//! * `--circuit-cooldown-ms N` — how long an open circuit refuses calls
//!   before letting one probe through (default 5000)
//! * `--degraded-max-failed K` — let a distributed explore that opts in
//!   with `{"mode": "degraded"}` answer from the surviving shards when at
//!   most K shards are down (default: degraded mode disabled)

use atlas_core::{AtlasConfig, MergeStrategy};
use atlas_serve::{DatasetOptions, HedgePolicy, Registry, ServeConfig, Server};
use std::process::exit;

fn fail(message: &str) -> ! {
    eprintln!("atlas-serve: {message}");
    exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut port: u16 = 7171;
    let mut bind = "127.0.0.1".to_string();
    let mut specs: Vec<String> = Vec::new();
    let mut serve_config = ServeConfig::default();
    let mut engine_config = AtlasConfig::default();
    let mut cache_capacity = 64usize;

    let value_of = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => {
                port = value_of(&mut args, "--port")
                    .parse()
                    .unwrap_or_else(|_| fail("--port needs a number"));
            }
            "--bind" => bind = value_of(&mut args, "--bind"),
            "--dataset" => specs.push(value_of(&mut args, "--dataset")),
            "--threads" => {
                serve_config.threads = value_of(&mut args, "--threads")
                    .parse()
                    .unwrap_or_else(|_| fail("--threads needs a number"));
            }
            "--cache" => {
                cache_capacity = value_of(&mut args, "--cache")
                    .parse()
                    .unwrap_or_else(|_| fail("--cache needs a number"));
            }
            "--fast" => engine_config = AtlasConfig::fast(),
            "--quality" => engine_config = AtlasConfig::quality(),
            "--merge" => {
                engine_config.merge = match value_of(&mut args, "--merge").as_str() {
                    "product" => MergeStrategy::Product,
                    "composition" => MergeStrategy::Composition,
                    other => fail(&format!("unknown merge strategy '{other}'")),
                };
            }
            "--shards" => {
                serve_config.shards = value_of(&mut args, "--shards")
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--shard-timeout-ms" => {
                let ms: u64 = value_of(&mut args, "--shard-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--shard-timeout-ms needs a number"));
                serve_config.shard_timeout = std::time::Duration::from_millis(ms);
            }
            "--shard-connect-timeout-ms" => {
                let ms: u64 = value_of(&mut args, "--shard-connect-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--shard-connect-timeout-ms needs a number"));
                serve_config.shard_connect_timeout = std::time::Duration::from_millis(ms);
            }
            "--retry-attempts" => {
                let n: u32 = value_of(&mut args, "--retry-attempts")
                    .parse()
                    .unwrap_or_else(|_| fail("--retry-attempts needs a number"));
                serve_config.retry = serve_config.retry.with_max_attempts(n);
            }
            "--retry-backoff-ms" => {
                let ms: u64 = value_of(&mut args, "--retry-backoff-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--retry-backoff-ms needs a number"));
                serve_config.retry = serve_config
                    .retry
                    .with_base_backoff(std::time::Duration::from_millis(ms));
            }
            "--hedge-after-ms" => {
                let ms: u64 = value_of(&mut args, "--hedge-after-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--hedge-after-ms needs a number"));
                serve_config.hedge = HedgePolicy::After(std::time::Duration::from_millis(ms));
            }
            "--circuit-threshold" => {
                serve_config.circuit.failure_threshold = value_of(&mut args, "--circuit-threshold")
                    .parse()
                    .unwrap_or_else(|_| fail("--circuit-threshold needs a number"));
            }
            "--circuit-cooldown-ms" => {
                let ms: u64 = value_of(&mut args, "--circuit-cooldown-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--circuit-cooldown-ms needs a number"));
                serve_config.circuit.cool_down = std::time::Duration::from_millis(ms);
            }
            "--degraded-max-failed" => {
                let k: usize = value_of(&mut args, "--degraded-max-failed")
                    .parse()
                    .unwrap_or_else(|_| fail("--degraded-max-failed needs a number"));
                serve_config.degraded_max_failed = Some(k);
            }
            "--help" | "-h" => {
                println!(
                    "usage: atlas-serve [--port N] [--bind ADDR] [--dataset SPEC]... \
                     [--threads N] [--cache N] [--fast|--quality] \
                     [--merge product|composition] [--shards HOST:PORT,...] \
                     [--shard-timeout-ms N] [--shard-connect-timeout-ms N] \
                     [--retry-attempts N] [--retry-backoff-ms N] \
                     [--hedge-after-ms N] [--circuit-threshold N] \
                     [--circuit-cooldown-ms N] [--degraded-max-failed K]"
                );
                return;
            }
            other => fail(&format!("unknown option '{other}' (try --help)")),
        }
    }
    if specs.is_empty() {
        specs.push("census:20000".to_string());
    }
    serve_config.bind = format!("{bind}:{port}");

    let mut registry = Registry::new();
    for spec in &specs {
        let options = DatasetOptions {
            config: engine_config.clone(),
            cache_capacity,
        };
        if let Err(error) = registry.add_spec(spec, options) {
            fail(&format!("loading '{spec}' failed: {error}"));
        }
        match registry.datasets().last() {
            Some(dataset) => eprintln!("loaded dataset '{}' from '{spec}'", dataset.name()),
            None => fail(&format!("loading '{spec}' registered no dataset")),
        }
    }

    let handle = match Server::start(registry, serve_config.clone()) {
        Ok(handle) => handle,
        Err(error) => fail(&format!("binding {} failed: {error}", serve_config.bind)),
    };
    let addr = handle.addr();
    eprintln!(
        "atlas-serve listening on http://{addr} ({} workers)",
        serve_config.threads
    );
    eprintln!("try:");
    eprintln!("  curl -s http://{addr}/healthz");
    eprintln!("  curl -s -X POST http://{addr}/sessions -d '{{}}'");
    eprintln!("  curl -s -X POST http://{addr}/sessions/<token>/explore -d 'SELECT * FROM census'");
    handle.join();
}
