//! The scatter-gather frames of distributed exploration.
//!
//! Everything the coordinator and the shard servers exchange beyond plain
//! counts rides the codecs here. The design constraint is **bit-exactness**:
//! a distributed explore must produce the same ranked maps — score bits,
//! region SQL, tuple counts — as the in-process engine, so every
//! floating-point value that participates in a fold (summary moments,
//! sketch entries, split bounds) travels as its IEEE-754 **bit pattern** in
//! fixed-width hex, never as a decimal rendering. Bulk payloads (bitmap
//! words, numeric value runs, contingency counts) are single concatenated
//! hex strings: dense, allocation-friendly, and immune to JSON number
//! precision limits (`u64` counts above 2⁵³ survive).
//!
//! Decoding is defensive — these frames cross sockets. Every accessor
//! returns `Result<_, String>` with a field-naming message; truncated hex
//! runs, wrong-width chunks, unknown type names, and non-finite values in
//! fields that must be finite (a sketch ε, a region bound) are rejected, not
//! propagated.

use crate::wire::Json;
use atlas_columnar::{Bitmap, DataType, DistinctValues, SummaryParts};
use atlas_stats::GkSketch;

/// Encode an `f64` as its 16-hex-digit IEEE-754 bit pattern.
pub fn hex_f64(x: f64) -> String {
    // lint: wire-float-ok (this IS the hex-bit codec; it formats the u64 bit pattern, not the float)
    format!("{:016x}", x.to_bits())
}

/// Decode a 16-hex-digit bit pattern back into the exact `f64`.
pub fn parse_hex_f64(text: &str) -> Result<f64, String> {
    if text.len() != 16 {
        return Err(format!(
            "expected 16 hex digits for an f64 bit pattern, got {}",
            text.len()
        ));
    }
    u64::from_str_radix(text, 16)
        .map(f64::from_bits)
        .map_err(|_| "invalid hex in f64 bit pattern".to_string())
}

/// Encode a slice of `u64`s as one concatenated hex run (16 digits each).
pub fn hex_u64s(values: &[u64]) -> String {
    let mut out = String::with_capacity(values.len() * 16);
    for v in values {
        out.push_str(&format!("{v:016x}"));
    }
    out
}

/// Decode a concatenated hex run back into `u64`s. The run length must be a
/// multiple of 16 — a truncated body is an error, never a silent short read.
pub fn parse_hex_u64s(text: &str) -> Result<Vec<u64>, String> {
    if !text.len().is_multiple_of(16) {
        return Err(format!(
            "hex run of {} digits is not a multiple of 16 (truncated body?)",
            text.len()
        ));
    }
    if !text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err("hex run contains a non-hex character".to_string());
    }
    (0..text.len() / 16)
        .map(|i| {
            // lint: slice-index-ok (len is a multiple of 16 and all-ASCII, checked above)
            u64::from_str_radix(&text[i * 16..(i + 1) * 16], 16)
                .map_err(|_| "invalid hex chunk".to_string())
        })
        .collect()
}

/// Encode a slice of `f64`s as one concatenated bit-pattern hex run.
pub fn hex_f64s(values: &[f64]) -> String {
    let mut out = String::with_capacity(values.len() * 16);
    for v in values {
        out.push_str(&hex_f64(*v));
    }
    out
}

/// Decode a concatenated bit-pattern hex run back into the exact `f64`s.
pub fn parse_hex_f64s(text: &str) -> Result<Vec<f64>, String> {
    Ok(parse_hex_u64s(text)?
        .into_iter()
        .map(f64::from_bits)
        .collect())
}

/// Parse a [`DataType`] from its [`DataType::name`] rendering.
pub fn dtype_from_name(name: &str) -> Result<DataType, String> {
    match name {
        "int" => Ok(DataType::Int),
        "float" => Ok(DataType::Float),
        "str" => Ok(DataType::Str),
        "bool" => Ok(DataType::Bool),
        other => Err(format!("unknown data type '{other}'")),
    }
}

/// The string member `key` of `value`.
pub fn get_str<'a>(value: &'a Json, key: &str) -> Result<&'a str, String> {
    value
        .get(key)
        .and_then(Json::str)
        .ok_or_else(|| format!("missing or non-string member \"{key}\""))
}

/// The numeric member `key` of `value`, as a `usize`.
pub fn get_index(value: &Json, key: &str) -> Result<usize, String> {
    value
        .get(key)
        .and_then(Json::index)
        .ok_or_else(|| format!("missing or non-integral member \"{key}\""))
}

/// The array member `key` of `value`.
pub fn get_items<'a>(value: &'a Json, key: &str) -> Result<&'a [Json], String> {
    value
        .get(key)
        .and_then(Json::items)
        .ok_or_else(|| format!("missing or non-array member \"{key}\""))
}

/// Encode a selection bitmap: its length plus its backing words as hex.
pub fn bitmap_to_json(bitmap: &Bitmap) -> Json {
    Json::object(vec![
        ("len", Json::from(bitmap.len())),
        ("words", Json::from(hex_u64s(bitmap.words()))),
    ])
}

/// Decode a selection bitmap. The word run must be exactly the length the
/// declared bit count needs.
pub fn bitmap_from_json(value: &Json) -> Result<Bitmap, String> {
    let len = get_index(value, "len")?;
    let words = parse_hex_u64s(get_str(value, "words")?)?;
    if words.len() != len.div_ceil(64) {
        return Err(format!(
            "bitmap of {len} bits needs {} words, got {}",
            len.div_ceil(64),
            words.len()
        ));
    }
    Ok(Bitmap::from_words(len, words))
}

/// Encode the mergeable parts of a column summary. Moments, min and max
/// travel as bit patterns; distinct values by kind (`i64`s and float bit
/// patterns as hex runs, strings and booleans natively).
pub fn summary_to_json(parts: &SummaryParts) -> Json {
    let distinct = match &parts.distinct {
        DistinctValues::Ints(values) => {
            let bits: Vec<u64> = values.iter().map(|&v| v as u64).collect();
            Json::object(vec![
                ("kind", Json::from("ints")),
                ("values", Json::from(hex_u64s(&bits))),
            ])
        }
        DistinctValues::Floats(bits) => Json::object(vec![
            ("kind", Json::from("floats")),
            ("values", Json::from(hex_u64s(bits))),
        ]),
        DistinctValues::Strs(values) => Json::object(vec![
            ("kind", Json::from("strs")),
            (
                "values",
                Json::array(values.iter().map(|s| Json::from(s.as_str())).collect()),
            ),
        ]),
        DistinctValues::Bools { t, f } => Json::object(vec![
            ("kind", Json::from("bools")),
            ("t", Json::from(*t)),
            ("f", Json::from(*f)),
        ]),
    };
    Json::object(vec![
        ("dtype", Json::from(parts.dtype.name())),
        ("non_null", Json::from(parts.non_null)),
        ("nulls", Json::from(parts.nulls)),
        ("mean", Json::from(hex_f64(parts.mean))),
        ("m2", Json::from(hex_f64(parts.m2))),
        (
            "min",
            parts
                .min
                .map(|x| Json::from(hex_f64(x)))
                .unwrap_or(Json::Null),
        ),
        (
            "max",
            parts
                .max
                .map(|x| Json::from(hex_f64(x)))
                .unwrap_or(Json::Null),
        ),
        ("distinct", distinct),
    ])
}

fn optional_hex_f64(value: &Json, key: &str) -> Result<Option<f64>, String> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(text)) => parse_hex_f64(text).map(Some),
        Some(_) => Err(format!("member \"{key}\" must be a hex string or null")),
    }
}

/// Decode column-summary parts produced by [`summary_to_json`].
pub fn summary_from_json(value: &Json) -> Result<SummaryParts, String> {
    let dtype = dtype_from_name(get_str(value, "dtype")?)?;
    let distinct_json = value
        .get("distinct")
        .ok_or_else(|| "missing member \"distinct\"".to_string())?;
    let distinct = match get_str(distinct_json, "kind")? {
        "ints" => DistinctValues::Ints(
            parse_hex_u64s(get_str(distinct_json, "values")?)?
                .into_iter()
                .map(|bits| bits as i64)
                .collect(),
        ),
        "floats" => DistinctValues::Floats(parse_hex_u64s(get_str(distinct_json, "values")?)?),
        "strs" => DistinctValues::Strs(
            get_items(distinct_json, "values")?
                .iter()
                .map(|v| {
                    v.str()
                        .map(String::from)
                        .ok_or_else(|| "non-string distinct value".to_string())
                })
                .collect::<Result<_, _>>()?,
        ),
        "bools" => DistinctValues::Bools {
            t: distinct_json
                .get("t")
                .and_then(Json::bool)
                .ok_or_else(|| "missing boolean member \"t\"".to_string())?,
            f: distinct_json
                .get("f")
                .and_then(Json::bool)
                .ok_or_else(|| "missing boolean member \"f\"".to_string())?,
        },
        other => return Err(format!("unknown distinct kind '{other}'")),
    };
    Ok(SummaryParts {
        dtype,
        non_null: get_index(value, "non_null")?,
        nulls: get_index(value, "nulls")?,
        mean: parse_hex_f64(get_str(value, "mean")?)?,
        m2: parse_hex_f64(get_str(value, "m2")?)?,
        min: optional_hex_f64(value, "min")?,
        max: optional_hex_f64(value, "max")?,
        distinct,
    })
}

/// Encode a quantile sketch: ε as a bit pattern, counters as plain numbers,
/// entries as one hex run of 48-digit `(value bits, g, delta)` triples.
pub fn sketch_to_json(sketch: &GkSketch) -> Json {
    let (epsilon, count, since_compress, entries) = sketch.to_parts();
    let mut run = String::with_capacity(entries.len() * 48);
    for (value, g, delta) in &entries {
        run.push_str(&hex_f64(*value));
        run.push_str(&format!("{g:016x}{delta:016x}"));
    }
    Json::object(vec![
        ("epsilon", Json::from(hex_f64(epsilon))),
        ("count", Json::from(count)),
        ("since_compress", Json::from(since_compress)),
        ("entries", Json::from(run)),
    ])
}

/// Decode a quantile sketch produced by [`sketch_to_json`]. A non-finite or
/// out-of-range ε is rejected here: it would silently change every later
/// compression decision.
pub fn sketch_from_json(value: &Json) -> Result<GkSketch, String> {
    let epsilon = parse_hex_f64(get_str(value, "epsilon")?)?;
    if !(epsilon > 0.0 && epsilon < 0.5 && epsilon.is_finite()) {
        return Err(format!(
            "sketch epsilon must be a finite value in (0, 0.5), got {epsilon}"
        ));
    }
    let count = get_index(value, "count")? as u64;
    let since_compress = get_index(value, "since_compress")? as u64;
    let words = parse_hex_u64s(get_str(value, "entries")?)?;
    if !words.len().is_multiple_of(3) {
        return Err("sketch entry run is not a multiple of 48 hex digits".to_string());
    }
    let entries = words
        .chunks_exact(3)
        // lint: slice-index-ok (chunks_exact(3) yields exactly three elements per chunk)
        .map(|chunk| (f64::from_bits(chunk[0]), chunk[1], chunk[2]))
        .collect();
    Ok(GkSketch::from_parts(
        epsilon,
        count,
        since_compress,
        entries,
    ))
}

/// Encode one partial contingency table: dimensions plus the `u64` count
/// matrix as a hex run (counts above 2⁵³ survive JSON intact this way).
pub fn contingency_to_json(rows: usize, cols: usize, counts: &[u64]) -> Json {
    Json::object(vec![
        ("rows", Json::from(rows)),
        ("cols", Json::from(cols)),
        ("counts", Json::from(hex_u64s(counts))),
    ])
}

/// Decode a partial contingency table; the count run must be exactly
/// `rows × cols` entries.
pub fn contingency_from_json(value: &Json) -> Result<(usize, usize, Vec<u64>), String> {
    let rows = get_index(value, "rows")?;
    let cols = get_index(value, "cols")?;
    let counts = parse_hex_u64s(get_str(value, "counts")?)?;
    if counts.len() != rows * cols {
        return Err(format!(
            "contingency payload of {rows}×{cols} needs {} counts, got {}",
            rows * cols,
            counts.len()
        ));
    }
    Ok((rows, cols, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    #[test]
    fn f64_bit_patterns_round_trip_exactly() {
        for x in [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.1 + 0.2,
        ] {
            let back = parse_hex_f64(&hex_f64(x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn truncated_and_corrupt_hex_runs_are_rejected() {
        assert!(parse_hex_f64("abc").is_err());
        assert!(parse_hex_f64("zzzzzzzzzzzzzzzz").is_err());
        assert!(parse_hex_u64s("0123456789abcdef0").is_err()); // 17 digits
        assert!(parse_hex_u64s("0123456789abcdeg").is_err()); // non-hex
        assert!(parse_hex_f64s("00").is_err());
        assert_eq!(parse_hex_u64s("").unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn bulk_values_round_trip_through_encoded_json() {
        let values = vec![-1.25, 0.0, f64::from_bits(0x7ff8_0000_dead_beef), 3e300];
        let frame = Json::object(vec![("values", Json::from(hex_f64s(&values)))]);
        let parsed = wire::parse(&frame.encode()).unwrap();
        let back = parse_hex_f64s(get_str(&parsed, "values").unwrap()).unwrap();
        let bits: Vec<u64> = back.iter().map(|x| x.to_bits()).collect();
        let expected: Vec<u64> = values.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, expected);
    }

    #[test]
    fn bitmaps_round_trip_and_validate_word_counts() {
        let bitmap = Bitmap::from_indices(130, [0usize, 63, 64, 129]);
        let back = bitmap_from_json(&bitmap_to_json(&bitmap)).unwrap();
        assert_eq!(back, bitmap);
        // A word run that does not match the declared length is rejected.
        let bad = Json::object(vec![
            ("len", Json::from(130usize)),
            ("words", Json::from(hex_u64s(&[1u64]))),
        ]);
        assert!(bitmap_from_json(&bad).is_err());
    }

    #[test]
    fn summaries_round_trip_bit_for_bit_including_nan_distincts() {
        let parts = SummaryParts {
            dtype: DataType::Float,
            non_null: 7,
            nulls: 2,
            mean: 0.1 + 0.2,
            m2: 1e-300,
            min: Some(-0.0),
            max: Some(f64::MAX),
            distinct: DistinctValues::Floats(vec![0, (-0.0f64).to_bits(), f64::NAN.to_bits()]),
        };
        let encoded = summary_to_json(&parts).encode();
        let back = summary_from_json(&wire::parse(&encoded).unwrap()).unwrap();
        assert_eq!(back, parts);

        for distinct in [
            DistinctValues::Ints(vec![i64::MIN, -1, 0, i64::MAX]),
            DistinctValues::Strs(vec!["a\"b".into(), "π".into()]),
            DistinctValues::Bools { t: true, f: false },
        ] {
            let dtype = match &distinct {
                DistinctValues::Ints(_) => DataType::Int,
                DistinctValues::Strs(_) => DataType::Str,
                _ => DataType::Bool,
            };
            let parts = SummaryParts {
                dtype,
                non_null: 4,
                nulls: 0,
                mean: 0.0,
                m2: 0.0,
                min: None,
                max: None,
                distinct,
            };
            let encoded = summary_to_json(&parts).encode();
            let back = summary_from_json(&wire::parse(&encoded).unwrap()).unwrap();
            assert_eq!(back, parts);
        }
    }

    #[test]
    fn summary_decoding_rejects_malformed_frames() {
        let good = summary_to_json(&SummaryParts {
            dtype: DataType::Int,
            non_null: 1,
            nulls: 0,
            mean: 1.0,
            m2: 0.0,
            min: Some(1.0),
            max: Some(1.0),
            distinct: DistinctValues::Ints(vec![1]),
        });
        // Drop or corrupt one member at a time.
        for (key, replacement) in [
            ("dtype", Json::from("decimal")),
            ("mean", Json::from("123")),
            ("non_null", Json::from(-1i64)),
            ("distinct", Json::object(vec![("kind", Json::from("sets"))])),
        ] {
            let Json::Obj(mut members) = good.clone() else {
                unreachable!()
            };
            for (k, v) in &mut members {
                if k == key {
                    *v = replacement.clone();
                }
            }
            assert!(
                summary_from_json(&Json::Obj(members)).is_err(),
                "corrupt {key} must be rejected"
            );
        }
        assert!(summary_from_json(&Json::Null).is_err());
    }

    #[test]
    fn sketches_round_trip_and_reject_bad_epsilon() {
        let mut sketch = GkSketch::new(0.01);
        sketch.extend(&(0..500).map(f64::from).collect::<Vec<_>>());
        let encoded = sketch_to_json(&sketch).encode();
        let back = sketch_from_json(&wire::parse(&encoded).unwrap()).unwrap();
        assert_eq!(back.to_parts(), sketch.to_parts());
        assert_eq!(back.query(0.5), sketch.query(0.5));

        for bad_eps in [f64::NAN, f64::INFINITY, 0.0, -0.1, 0.5] {
            let mut frame = sketch_to_json(&sketch);
            if let Json::Obj(members) = &mut frame {
                members[0].1 = Json::from(hex_f64(bad_eps));
            }
            assert!(
                sketch_from_json(&frame).is_err(),
                "epsilon {bad_eps} must be rejected"
            );
        }
        // A truncated entry run (not a multiple of 3 words) is rejected.
        let mut frame = sketch_to_json(&sketch);
        if let Json::Obj(members) = &mut frame {
            members[3].1 = Json::from(hex_u64s(&[1, 2]));
        }
        assert!(sketch_from_json(&frame).is_err());
    }

    #[test]
    fn contingency_payloads_round_trip_above_the_f64_integer_range() {
        // 2^53 + 1 is not representable as an f64 — a JSON number would
        // silently round it; the hex run must not.
        let counts = vec![(1u64 << 53) + 1, 0, u64::MAX, 7];
        let encoded = contingency_to_json(2, 2, &counts).encode();
        let (rows, cols, back) = contingency_from_json(&wire::parse(&encoded).unwrap()).unwrap();
        assert_eq!((rows, cols), (2, 2));
        assert_eq!(back, counts);

        // Count runs with the wrong cardinality are rejected.
        let short = contingency_to_json(2, 2, &counts[..3]);
        assert!(contingency_from_json(&short).is_err());
    }

    #[test]
    fn deeply_nested_frame_bodies_hit_the_json_depth_limit() {
        let deep = "{\"a\":".repeat(200) + "1" + &"}".repeat(200);
        let err = wire::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
    }
}
