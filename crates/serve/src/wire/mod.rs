//! The wire formats of the exploration server.
//!
//! Everything that crosses the socket is JSON ([`json`]) or plain text; the
//! query language itself travels as the restricted SQL the paper's front-end
//! speaks, rendered by `atlas_query::to_sql` and re-parsed by
//! `atlas_query::parse_query` — the printer/parser round-trip guarantee
//! (pinned by property tests in `atlas-query`) is what makes region
//! predicates safe to ship as strings.

pub mod frames;
pub mod json;

pub use json::{parse, Json, JsonError};
