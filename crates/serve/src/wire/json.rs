//! A small, dependency-free JSON value: encoder plus a recursive-descent
//! decoder.
//!
//! The server cannot pull serde (the build environment vendors every
//! dependency), and the JSON it speaks is simple: finite numbers, strings,
//! booleans, nulls, arrays and objects. Two properties matter here:
//!
//! * **numbers round-trip bit-for-bit** — values are encoded with Rust's
//!   shortest-round-trip `f64` formatting, so a ranking score printed into a
//!   response and parsed back by a client compares bit-identical to the
//!   in-process value (the acceptance criterion of the wire protocol);
//! * **objects preserve insertion order** — an object is a `Vec` of pairs,
//!   so encoded reports (benchmarks, metrics) stay diff-friendly.
//!
//! Decoding guards against hostile input with a nesting-depth limit and
//! full string-escape handling (`\uXXXX` included, surrogate pairs too).

use std::fmt;

/// Maximum nesting depth the decoder accepts (the server parses untrusted
/// request bodies, so deeply nested input must fail, not overflow the stack).
const MAX_DEPTH: usize = 96;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values cannot be represented in JSON and encode
    /// as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when encoding.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn array(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// The value of an object member, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a `usize`, if this is a non-negative integral
    /// number that fits.
    pub fn index(&self) -> Option<usize> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Encode compactly (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Encode with two-space indentation, for reports meant to be read and
    /// diffed by humans (benchmark files, metrics dumps).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                // lint: slice-index-ok (write_seq calls back with i < the len it was given)
                items[i].write(out, indent, level + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, level, '{', '}', pairs.len(), |out, i| {
                // lint: slice-index-ok (write_seq calls back with i < the len it was given)
                let (key, value) = &pairs[i];
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                value.write(out, indent, level + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (level + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Shortest-round-trip number formatting; integral values print without the
/// trailing `.0` (Rust's `Display` already does both), non-finite values
/// print as `null` because JSON has no representation for them.
fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        // lint: wire-float-ok (this IS the shortest-round-trip codec; Rust's Display is grisu/ryū-exact)
        out.push_str(&format!("{x}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u16> for Json {
    fn from(x: u16) -> Json {
        Json::Num(f64::from(x))
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// A decoding error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document. Exactly one value is accepted; trailing non-space
/// input is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{literal}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined = 0x10000
                                        + ((unit as u32 - 0xD800) << 10)
                                        + (low as u32 - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                char::from_u32(unit as u32)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the bytes
                    // are valid UTF-8; find the char boundary).
                    let start = self.pos;
                    let mut end = start + 1;
                    // lint: slice-index-ok (end < bytes.len() is checked in the same condition)
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    // lint: slice-index-ok (start < len because a byte was peeked; end <= len by the loop bound)
                    let slice = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(slice);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        // After this check the indexing below cannot go out of bounds.
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        // lint: slice-index-ok (pos + 4 <= bytes.len() was just checked)
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u16::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected a digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected a digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected a digit in the exponent"));
            }
        }
        // lint: slice-index-ok (pos only advances past peeked bytes, so start <= pos <= len)
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let x: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1", "3.25", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.encode(), text);
        }
    }

    #[test]
    fn numbers_round_trip_bit_for_bit() {
        for &x in &[
            0.0,
            -0.0,
            1.5,
            -2.25,
            1e-300,
            123_456_789.125,
            f64::MIN_POSITIVE,
            f64::MAX,
            0.1 + 0.2,
            4.400000000000001,
        ] {
            let encoded = Json::Num(x).encode();
            let back = parse(&encoded).unwrap().num().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {encoded} -> {back}");
        }
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line1\nline2\t\"quoted\" \\slash\\ 🦀 \u{1} ok";
        let encoded = Json::Str(original.to_string()).encode();
        assert_eq!(parse(&encoded).unwrap().str().unwrap(), original);
        // Standard escapes parse too.
        let v = parse(r#""aAé🦀b\/""#).unwrap();
        assert_eq!(v.str().unwrap(), "aAé🦀b/");
    }

    #[test]
    fn objects_preserve_order_and_support_get() {
        let v = Json::object(vec![
            ("zeta", Json::from(1.0)),
            ("alpha", Json::from("x")),
            ("flag", Json::from(true)),
        ]);
        assert_eq!(v.encode(), r#"{"zeta":1,"alpha":"x","flag":true}"#);
        let back = parse(&v.encode()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("alpha").unwrap().str(), Some("x"));
        assert_eq!(back.get("zeta").unwrap().num(), Some(1.0));
        assert_eq!(back.get("missing"), None);
        assert_eq!(back.get("flag").unwrap().bool(), Some(true));
    }

    #[test]
    fn arrays_and_nesting() {
        let text = r#" { "a" : [ 1 , [ 2, {"b": [] } ] , null ] } "#;
        let v = parse(text).unwrap();
        let items = v.get("a").unwrap().items().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2], Json::Null);
    }

    #[test]
    fn pretty_output_is_reparsable_and_indented() {
        let v = Json::object(vec![
            ("name", Json::from("atlas")),
            (
                "points",
                Json::array(vec![Json::from(1.0), Json::from(2.0)]),
            ),
            ("empty", Json::object::<String>(vec![])),
        ]);
        let pretty = v.pretty();
        assert!(pretty.contains("\n  \"name\""));
        assert!(pretty.contains("\"empty\": {}"));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_input_is_rejected_with_positions() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1 2",
            "{\"a\":1} extra",
            "\"\\ud800 unpaired\"",
            "- 1",
            "01x",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_prevents_stack_overflow() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        // A comfortably nested document still parses.
        let ok = "[".repeat(50) + "1" + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn index_accessor_validates() {
        assert_eq!(Json::Num(3.0).index(), Some(3));
        assert_eq!(Json::Num(3.5).index(), None);
        assert_eq!(Json::Num(-1.0).index(), None);
        assert_eq!(Json::Str("3".into()).index(), None);
    }
}
