//! A minimal blocking HTTP client for the exploration server.
//!
//! One connection per request (`Connection: close`) keeps the client fair
//! under a single-worker server and trivially correct; it is what the
//! integration tests, the quickstart example, and the `load-smoke` closed-
//! loop generator in `atlas-bench` drive the server with.

use crate::http::{self, ClientResponse, HttpError};
use crate::wire::Json;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Largest response body the client accepts.
const MAX_RESPONSE_BYTES: usize = 64 * 1024 * 1024;

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    /// Read/write budget of one request once connected.
    timeout: Duration,
    /// TCP connect budget, tracked separately so a slow connect cannot eat
    /// the whole request budget. `None` falls back to `timeout`.
    connect_timeout: Option<Duration>,
    /// Extra headers sent with every request (deadline propagation).
    headers: Vec<(String, String)>,
}

impl Client {
    /// A client for the server at `addr` with a 30 s per-request timeout.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(30),
            connect_timeout: None,
            headers: Vec::new(),
        }
    }

    /// This client with the given per-request read/write socket timeout.
    /// The connect timeout stays whatever [`Client::with_connect_timeout`]
    /// set (defaulting to this same value when it never was).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// This client with a TCP connect timeout independent of the
    /// read/write timeout, so an unreachable host fails fast without
    /// shrinking the budget of the request proper.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Client {
        self.connect_timeout = Some(timeout);
        self
    }

    /// This client with an extra header sent on every request (replacing
    /// any earlier value for the same name).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Client {
        let name = name.into();
        self.headers.retain(|(n, _)| *n != name);
        self.headers.push((name, value.into()));
        self
    }

    /// The read/write timeout of one request.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// The TCP connect timeout ([`Client::timeout`] unless split).
    pub fn connect_timeout(&self) -> Duration {
        self.connect_timeout.unwrap_or(self.timeout)
    }

    /// Issue one request. `body` is sent verbatim with the given content
    /// type when present.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<(&str, &[u8])>,
    ) -> io::Result<ClientResponse> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout())?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: atlas\r\nConnection: close\r\n");
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some((content_type, bytes)) = body {
            head.push_str(&format!(
                "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
                bytes.len()
            ));
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        if let Some((_, bytes)) = body {
            writer.write_all(bytes)?;
        }
        writer.flush()?;

        let mut reader = BufReader::new(stream);
        let deadline = std::time::Instant::now() + self.timeout;
        http::read_response(&mut reader, MAX_RESPONSE_BYTES, Some(deadline)).map_err(|e| match e {
            HttpError::Io(io) => io,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })
    }

    /// `GET path`.
    pub fn get(&self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&self, path: &str, body: &Json) -> io::Result<ClientResponse> {
        self.request(
            "POST",
            path,
            Some(("application/json", body.encode().as_bytes())),
        )
    }

    /// `POST path` with a plain-text body (conjunctive SQL).
    pub fn post_text(&self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request(
            "POST",
            path,
            Some(("text/plain; charset=utf-8", body.as_bytes())),
        )
    }

    /// `DELETE path`.
    pub fn delete(&self, path: &str) -> io::Result<ClientResponse> {
        self.request("DELETE", path, None)
    }

    /// Create a session over `dataset` and return its token.
    pub fn create_session(&self, dataset: &str) -> io::Result<String> {
        let response = self.post_json(
            "/sessions",
            &Json::object(vec![("dataset", Json::from(dataset))]),
        )?;
        let json = response
            .json()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "non-JSON reply"))?;
        if response.status != 201 {
            return Err(io::Error::other(format!(
                "session creation failed ({}): {}",
                response.status,
                json.get("error").and_then(Json::str).unwrap_or("?")
            )));
        }
        json.get("token")
            .and_then(Json::str)
            .map(String::from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "reply without a token"))
    }
}
