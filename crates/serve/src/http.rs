//! A minimal HTTP/1.1 layer over blocking streams.
//!
//! Just enough of the protocol for the exploration server and its clients:
//! request/response lines, headers, `Content-Length`-bounded bodies (chunked
//! transfer encoding is deliberately rejected — bodies stay bounded and the
//! parser stays simple), and keep-alive. Everything is parsed defensively:
//! line-length and header-count caps, a body-size cap, and explicit error
//! variants so the connection loop can answer `400`/`413` instead of dying.

use crate::wire::Json;
use std::io::{self, BufRead, Write};
use std::time::Instant;

/// The request header carrying the caller's total time budget in
/// milliseconds. The server anchors it at admission time; the coordinator
/// forwards the remaining budget to the shards under the same name.
/// Header-name comparison is case-insensitive, as HTTP requires.
pub const DEADLINE_HEADER: &str = "x-atlas-deadline-ms";

/// Distributed-trace propagation header: the coordinator's trace id, sent on
/// every shard call so a shard can label its own spans with the originating
/// trace and return them for reassembly into one tree.
pub const TRACE_HEADER: &str = "x-atlas-trace-id";

/// Upper bound on one request/status/header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of headers per message.
const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method, upper-cased (`GET`, `POST`, …).
    pub method: String,
    /// The path, query string included if one was sent.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// defaults to keep-alive unless `Connection: close` is sent).
    pub fn wants_keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }

    /// The path split on `/`, empty segments dropped, query string stripped:
    /// `/sessions/abc/explore?x=1` → `["sessions", "abc", "explore"]`.
    pub fn path_segments(&self) -> Vec<&str> {
        let path = self.path.split('?').next().unwrap_or("");
        path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// The body as UTF-8 text, if it is valid UTF-8.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// The value of a query-string parameter:
    /// `/explore?trace=1` → `query_param("trace") == Some("1")`.
    /// A bare flag (`?trace`) yields `Some("")`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let query = self.path.split_once('?')?.1;
        query.split('&').find_map(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            (key == name).then_some(value)
        })
    }
}

/// Why reading a request (or response) failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending anything.
    Closed,
    /// The read timed out with no bytes available (an idle keep-alive
    /// connection; the caller decides whether to wait more or hang up).
    Idle,
    /// The message violates the protocol (answer 400 and close).
    Malformed(String),
    /// The declared body exceeds the configured cap (answer 413 and close).
    BodyTooLarge {
        /// The configured body cap in bytes.
        limit: usize,
    },
    /// An underlying I/O error mid-message.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => f.write_str("connection closed"),
            HttpError::Idle => f.write_str("connection idle"),
            HttpError::Malformed(m) => write!(f, "malformed message: {m}"),
            HttpError::BodyTooLarge { limit } => {
                write!(f, "body exceeds the {limit}-byte limit")
            }
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn io_error(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Idle,
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => HttpError::Closed,
        _ => HttpError::Io(e),
    }
}

/// Block until at least one byte is buffered, without consuming it.
///
/// Distinguishes the three states the keep-alive loop cares about: data ready
/// (`Ok`), peer gone ([`HttpError::Closed`]), or read timeout with nothing
/// buffered ([`HttpError::Idle`] — the caller can poll its shutdown flag and
/// try again).
pub fn wait_for_data<R: BufRead>(reader: &mut R) -> Result<(), HttpError> {
    match reader.fill_buf() {
        Ok([]) => Err(HttpError::Closed),
        Ok(_) => Ok(()),
        Err(e) => Err(io_error(e)),
    }
}

/// Fill `buf` completely, riding out socket read timeouts until `deadline`
/// (slow peers legitimately deliver a message across many timeout slices;
/// only the overall deadline hangs up on them). EOF before the first byte of
/// a message is a clean [`HttpError::Closed`]; EOF or an expired deadline
/// mid-message is malformed.
fn read_full<R: BufRead>(
    reader: &mut R,
    buf: &mut [u8],
    deadline: Option<Instant>,
    at_message_start: bool,
) -> Result<(), HttpError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        // lint: slice-index-ok (filled < buf.len() is the loop condition; [n..] at n <= len is valid)
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && at_message_start {
                    HttpError::Closed
                } else {
                    HttpError::Malformed("connection closed mid-message".to_string())
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return Err(HttpError::Malformed(
                        "timed out reading the message".to_string(),
                    ));
                }
            }
            Err(e) => return Err(io_error(e)),
        }
    }
    Ok(())
}

fn read_line<R: BufRead>(
    reader: &mut R,
    deadline: Option<Instant>,
    at_message_start: bool,
) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        read_full(
            reader,
            &mut byte,
            deadline,
            at_message_start && line.is_empty(),
        )?;
        // lint: slice-index-ok (byte is a [u8; 1]; index 0 always exists)
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| HttpError::Malformed("non-UTF-8 header line".to_string()));
        }
        line.push(byte[0]); // lint: slice-index-ok (byte is a [u8; 1]; index 0 always exists)
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::Malformed("header line too long".to_string()));
        }
    }
}

fn read_headers<R: BufRead>(
    reader: &mut R,
    deadline: Option<Instant>,
) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, deadline, false)?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers".to_string()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

fn read_body<R: BufRead>(
    reader: &mut R,
    headers: &[(String, String)],
    max_body: usize,
    deadline: Option<Instant>,
) -> Result<Vec<u8>, HttpError> {
    let header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed(
            "chunked transfer encoding is not supported; send Content-Length".to_string(),
        ));
    }
    let length = match header("content-length") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("invalid Content-Length: {v}")))?,
    };
    if length > max_body {
        return Err(HttpError::BodyTooLarge { limit: max_body });
    }
    let mut body = vec![0u8; length];
    read_full(reader, &mut body, deadline, false)?;
    Ok(body)
}

/// Read one request from the stream. `max_body` bounds the accepted
/// `Content-Length`; `deadline` bounds how long a slow peer may take to
/// deliver the whole message (socket read timeouts within it are ridden
/// out, not treated as errors).
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body: usize,
    deadline: Option<Instant>,
) -> Result<Request, HttpError> {
    let line = read_line(reader, deadline, true)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".to_string()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line without a path".to_string()))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => {
            return Err(HttpError::Malformed(format!(
                "unsupported protocol version: {other:?}"
            )))
        }
    }
    let headers = read_headers(reader, deadline)?;
    let body = read_body(reader, &headers, max_body, deadline)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// A response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the fixed set [`write_response`] emits
    /// (`Retry-After` on overload answers, for instance).
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: value.encode().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// The standard error envelope: `{"error": message}`.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response::json(
            status,
            &Json::object(vec![("error", Json::from(message.into()))]),
        )
    }

    /// This response with an extra header appended.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// The reason phrase of a status code (the subset the server uses).
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a response; `keep_alive` controls the `Connection` header.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

/// A parsed HTTP response (client side).
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Option<Json> {
        crate::wire::parse(self.body_text()?).ok()
    }
}

/// Read one response from the stream. `max_body` bounds the accepted
/// `Content-Length`; `deadline` bounds the whole read as in
/// [`read_request`].
pub fn read_response<R: BufRead>(
    reader: &mut R,
    max_body: usize,
    deadline: Option<Instant>,
) -> Result<ClientResponse, HttpError> {
    let line = read_line(reader, deadline, true)?;
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => {
            return Err(HttpError::Malformed(format!(
                "unsupported protocol version: {other:?}"
            )))
        }
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| HttpError::Malformed("status line without a code".to_string()))?;
    let headers = read_headers(reader, deadline)?;
    let body = read_body(reader, &headers, max_body, deadline)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_bytes(bytes: &[u8]) -> Result<Request, HttpError> {
        let mut reader = BufReader::new(bytes);
        read_request(&mut reader, 1024, None)
    }

    #[test]
    fn requests_parse_with_headers_and_body() {
        let raw = b"POST /sessions/x/explore?q=1 HTTP/1.1\r\nHost: localhost\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse_bytes(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path_segments(), vec!["sessions", "x", "explore"]);
        assert_eq!(req.header("HOST"), Some("localhost"));
        assert_eq!(req.body_text(), Some("hello"));
        assert!(req.wants_keep_alive());
        assert_eq!(req.query_param("q"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn query_params_parse_flags_and_pairs() {
        let raw = b"GET /x?trace=1&flag&empty= HTTP/1.1\r\n\r\n";
        let req = parse_bytes(raw).unwrap();
        assert_eq!(req.query_param("trace"), Some("1"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("empty"), Some(""));
        assert_eq!(req.query_param("nope"), None);
    }

    #[test]
    fn connection_close_is_honoured() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = parse_bytes(raw).unwrap();
        assert!(!req.wants_keep_alive());
        assert!(req.body.is_empty());
        assert!(req.path_segments().is_empty());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(parse_bytes(b""), Err(HttpError::Closed)));
        assert!(matches!(
            parse_bytes(b"GET /\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_bytes(b"GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_bytes(b"GET / HTTP/1.1\r\nbad header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_bytes(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_refused_up_front() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10000\r\n\r\n";
        assert!(matches!(
            parse_bytes(raw),
            Err(HttpError::BodyTooLarge { limit: 1024 })
        ));
    }

    /// Delivers its message one byte per `read` call, answering `WouldBlock`
    /// between bytes the way a socket read timeout does. After the message
    /// is exhausted it either reports EOF or stalls with `WouldBlock`
    /// forever, depending on `stall_at_end`.
    struct Slowloris {
        bytes: Vec<u8>,
        position: usize,
        parched: bool,
        stall_at_end: bool,
    }

    impl Slowloris {
        fn new(bytes: &[u8], stall_at_end: bool) -> BufReader<Slowloris> {
            BufReader::new(Slowloris {
                bytes: bytes.to_vec(),
                position: 0,
                parched: false,
                stall_at_end,
            })
        }
    }

    impl io::Read for Slowloris {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.parched {
                self.parched = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "drip"));
            }
            self.parched = true;
            match self.bytes.get(self.position) {
                Some(&byte) if !buf.is_empty() => {
                    buf[0] = byte;
                    self.position += 1;
                    Ok(1)
                }
                _ if self.stall_at_end => Err(io::Error::new(io::ErrorKind::WouldBlock, "stall")),
                _ => Ok(0),
            }
        }
    }

    #[test]
    fn a_slow_but_steady_peer_is_ridden_out_within_the_deadline() {
        let raw = b"POST /explore HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let deadline = Some(Instant::now() + std::time::Duration::from_secs(30));
        let mut reader = Slowloris::new(raw, false);
        let request = read_request(&mut reader, 1024, deadline).unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.body_text(), Some("hello"));
    }

    #[test]
    fn a_peer_that_stalls_mid_message_is_a_typed_error_not_a_hang() {
        // Stall after the request line: the headers never arrive, the socket
        // keeps timing out, and the parser must give up at the deadline.
        let raw = b"POST /explore HTTP/1.1\r\nContent-";
        let budget = std::time::Duration::from_millis(100);
        let started = Instant::now();
        let mut reader = Slowloris::new(raw, true);
        let result = read_request(&mut reader, 1024, Some(started + budget));
        assert!(
            matches!(&result, Err(HttpError::Malformed(m)) if m.contains("timed out")),
            "expected a timeout, got {result:?}"
        );
        assert!(
            started.elapsed() < budget + std::time::Duration::from_secs(2),
            "the parser overstayed its deadline: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn a_stalled_body_is_a_typed_error_not_a_hang() {
        // The headers arrive whole but the promised body never does.
        let raw = b"POST /explore HTTP/1.1\r\nContent-Length: 64\r\n\r\nonly a few bytes";
        let budget = std::time::Duration::from_millis(100);
        let started = Instant::now();
        let mut reader = Slowloris::new(raw, true);
        let result = read_request(&mut reader, 1024, Some(started + budget));
        assert!(
            matches!(&result, Err(HttpError::Malformed(m)) if m.contains("timed out")),
            "expected a timeout, got {result:?}"
        );
        assert!(
            started.elapsed() < budget + std::time::Duration::from_secs(2),
            "the parser overstayed its deadline: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn a_response_truncated_at_every_boundary_byte_is_an_error_never_a_hang() {
        let response = Response::json(200, &Json::object(vec![("answer", Json::from(42.0_f64))]))
            .with_header("Retry-After", "3");
        let mut wire = Vec::new();
        write_response(&mut wire, &response, true).unwrap();

        // The full message parses.
        let mut reader = BufReader::new(wire.as_slice());
        let parsed = read_response(&mut reader, 1024, None).unwrap();
        assert_eq!(parsed.status, 200);

        // Every proper prefix is a typed error: `Closed` when the peer
        // vanished before a single byte, `Malformed` anywhere mid-message.
        for cut in 0..wire.len() {
            // lint: slice-index-ok (cut < wire.len() by the loop bound)
            let truncated = &wire[..cut];
            let mut reader = BufReader::new(truncated);
            let result = read_response(&mut reader, 1024, None);
            match (cut, result) {
                (0, Err(HttpError::Closed)) => {}
                (_, Err(HttpError::Closed | HttpError::Malformed(_))) => {}
                (_, other) => panic!("truncation at byte {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn a_request_truncated_at_every_boundary_byte_is_an_error_never_a_hang() {
        let raw: &[u8] = b"POST /sessions/x/explore HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        assert!(parse_bytes(raw).is_ok());
        for cut in 0..raw.len() {
            // lint: slice-index-ok (cut < raw.len() by the loop bound)
            let result = parse_bytes(&raw[..cut]);
            match (cut, result) {
                (0, Err(HttpError::Closed)) => {}
                (_, Err(HttpError::Closed | HttpError::Malformed(_))) => {}
                (_, other) => panic!("truncation at byte {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn responses_round_trip() {
        let response = Response::json(201, &Json::object(vec![("token", Json::from("abc"))]));
        let mut wire = Vec::new();
        write_response(&mut wire, &response, true).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"));
        assert!(text.contains("Connection: keep-alive"));

        let mut reader = BufReader::new(wire.as_slice());
        let parsed = read_response(&mut reader, 1024, None).unwrap();
        assert_eq!(parsed.status, 201);
        assert_eq!(
            parsed.json().unwrap().get("token").unwrap().str(),
            Some("abc")
        );
    }

    #[test]
    fn error_envelope_and_status_text() {
        let response = Response::error(404, "no such dataset");
        assert_eq!(response.status, 404);
        assert!(String::from_utf8(response.body)
            .unwrap()
            .contains("no such dataset"));
        assert_eq!(status_text(503), "Service Unavailable");
        assert_eq!(status_text(599), "Unknown");
    }
}
