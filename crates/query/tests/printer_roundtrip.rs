//! Property tests pinning the printer/parser round-trip:
//! `parse_query(to_sql(q)) == q` for random conjunctive queries.
//!
//! This is the guarantee the wire protocol of `atlas-serve` leans on: region
//! predicates travel as SQL strings, so printing and re-parsing must
//! reconstruct the predicate **exactly** — bounds bit-for-bit (the printer
//! uses shortest-round-trip float formatting), value sets verbatim
//! (quote-escaping included), open ends (`>=`, `<=`, `IS NOT NULL`)
//! preserved.

use atlas_query::{parse_query, to_sql, ConjunctiveQuery, Predicate, PredicateSet};
use proptest::prelude::*;

/// Build one predicate from the generated raw material. Attribute names are
/// `c{i}` so they are distinct per query and never collide with keywords.
fn build_predicate(
    attr_idx: usize,
    kind: usize,
    numbers: &[f64],
    ints: &[i64],
    strings: &[String],
    value_count: usize,
) -> Predicate {
    let attribute = format!("c{attr_idx}");
    let num = |i: usize| numbers[i % numbers.len()];
    match kind {
        // A bounded float range (the two bounds in either order — inverted
        // ranges print and must re-parse unchanged too).
        0 => Predicate::range(attribute, num(attr_idx), num(attr_idx + 1)),
        // A bounded integer range (exercises the integral fast path of the
        // printer's number formatting).
        1 => {
            let a = ints[attr_idx % ints.len()] as f64;
            let b = ints[(attr_idx + 1) % ints.len()] as f64;
            Predicate::range(attribute, a.min(b), a.max(b))
        }
        // Half-open ranges print as comparisons.
        2 => Predicate::range(attribute, num(attr_idx), f64::INFINITY),
        3 => Predicate::range(attribute, f64::NEG_INFINITY, num(attr_idx)),
        // The fully unbounded range prints as IS NOT NULL.
        4 => Predicate::range(attribute, f64::NEG_INFINITY, f64::INFINITY),
        // A categorical value set (quotes and arbitrary printable ASCII).
        _ => {
            let values: Vec<&str> = (0..value_count)
                .map(|i| strings[(attr_idx + i) % strings.len()].as_str())
                .collect();
            Predicate::values(attribute, values)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn printed_queries_reparse_to_themselves(
        table in "t_[a-z0-9_]{0,8}",
        kinds in proptest::collection::vec(0usize..6, 1..5),
        numbers in proptest::collection::vec(-1.0e15..1.0e15f64, 8),
        ints in proptest::collection::vec(-1_000_000i64..1_000_000, 8),
        strings in proptest::collection::vec("[ -~]{0,12}", 8),
        value_count in 1usize..4,
    ) {
        let query = ConjunctiveQuery {
            table: table.clone(),
            predicates: kinds
                .iter()
                .enumerate()
                .map(|(i, &kind)| {
                    build_predicate(i, kind, &numbers, &ints, &strings, value_count)
                })
                .collect(),
        };
        let sql = to_sql(&query);
        let reparsed = parse_query(&sql).expect("printed SQL parses");
        prop_assert_eq!(&reparsed, &query, "{} did not round-trip", sql);
        // Printing is a fixed point: the reparsed query prints identically.
        prop_assert_eq!(to_sql(&reparsed), sql);
    }

    #[test]
    fn extreme_float_bounds_survive_bit_for_bit(
        bits in proptest::collection::vec(0u64..u64::MAX, 2),
        offset in 0usize..3,
    ) {
        // Drive the bounds from raw bit patterns: subnormals, huge
        // magnitudes, one-ULP-apart neighbours — everything finite must
        // survive print + parse exactly.
        let sanitize = |b: u64| {
            let x = f64::from_bits(b);
            if x.is_finite() { x } else { 0.5 }
        };
        let lo = sanitize(bits[0]);
        let hi = sanitize(bits[1]);
        let query = ConjunctiveQuery {
            table: "t".to_string(),
            predicates: vec![
                Predicate::range("c0", lo.min(hi), lo.max(hi)),
                Predicate::range("c1", sanitize(bits[offset % 2]), f64::INFINITY),
            ],
        };
        let reparsed = parse_query(&to_sql(&query)).expect("printed SQL parses");
        for (a, b) in reparsed.predicates.iter().zip(query.predicates.iter()) {
            let (PredicateSet::Range { lo: alo, hi: ahi }, PredicateSet::Range { lo: blo, hi: bhi }) =
                (&a.set, &b.set)
            else {
                panic!("ranges stay ranges");
            };
            prop_assert_eq!(alo.to_bits(), blo.to_bits());
            prop_assert_eq!(ahi.to_bits(), bhi.to_bits());
        }
    }

    #[test]
    fn value_sets_with_hostile_strings_round_trip(
        values in proptest::collection::vec("[ -~]{0,16}", 1..5),
    ) {
        // Single quotes, doubled quotes, backslashes, spaces — the printer
        // escapes, the lexer unescapes, nothing is lost or gained.
        let query = ConjunctiveQuery {
            table: "t".to_string(),
            predicates: vec![Predicate::values("c0", values.clone())],
        };
        let sql = to_sql(&query);
        let reparsed = parse_query(&sql).expect("printed SQL parses");
        prop_assert_eq!(&reparsed, &query, "{} did not round-trip", sql);
    }
}
