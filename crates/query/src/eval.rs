//! Evaluation of conjunctive queries against the columnar engine.

use crate::ast::{ConjunctiveQuery, Predicate, PredicateSet};
use crate::error::{QueryError, Result};
use atlas_columnar::{Bitmap, DataType, Table};

/// Evaluate a single predicate over a table, restricted to `base`.
pub fn evaluate_predicate(predicate: &Predicate, table: &Table, base: &Bitmap) -> Result<Bitmap> {
    let column = table.column(&predicate.attribute)?;
    match &predicate.set {
        PredicateSet::Range { lo, hi } => {
            if !column.data_type().is_ordinal() {
                return Err(QueryError::IncompatiblePredicate {
                    attribute: predicate.attribute.clone(),
                    message: format!("range predicate on a {} column", column.data_type()),
                });
            }
            Ok(column.select_range(base, *lo, *hi))
        }
        PredicateSet::Values(values) => {
            // Value-set predicates are primarily for categorical columns, but
            // integers are accepted through their decimal rendering so that
            // low-cardinality integer codes behave like categories.
            if column.data_type() == DataType::Float {
                return Err(QueryError::IncompatiblePredicate {
                    attribute: predicate.attribute.clone(),
                    message: "value-set predicate on a float column".to_string(),
                });
            }
            // Borrow the value set straight out of the predicate: no
            // per-evaluation `Vec<String>` clone on the region-query path.
            Ok(column.select_in_iter(base, values.iter().map(String::as_str)))
        }
    }
}

/// Evaluate a query over a table, restricted to the rows selected by `base`.
///
/// This is the primitive Atlas uses while drilling down: the "user query"
/// defines the working set, and every region query is evaluated *within* it.
pub fn evaluate_within(query: &ConjunctiveQuery, table: &Table, base: &Bitmap) -> Result<Bitmap> {
    let mut selection = base.clone();
    for predicate in &query.predicates {
        if selection.is_all_clear() {
            break;
        }
        selection = evaluate_predicate(predicate, table, &selection)?;
    }
    Ok(selection)
}

/// Evaluate a query over the whole table.
pub fn evaluate(query: &ConjunctiveQuery, table: &Table) -> Result<Bitmap> {
    evaluate_within(query, table, &table.full_selection())
}

/// The cover `C(Q)` of a query: the fraction of the *table's* rows it selects
/// (Section 3 of the paper).
pub fn cover(query: &ConjunctiveQuery, table: &Table) -> Result<f64> {
    Ok(evaluate(query, table)?.cover())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Predicate;
    use atlas_columnar::{Field, Schema, TableBuilder, Value};

    fn survey() -> Table {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("sex", DataType::Str),
            Field::new("salary", DataType::Str),
            Field::new("score", DataType::Float),
            Field::new("member", DataType::Bool),
        ])
        .unwrap();
        let mut b = TableBuilder::new("survey", schema);
        let rows: Vec<(i64, &str, &str, f64, bool)> = vec![
            (22, "M", "<50k", 1.0, true),
            (28, "F", "<50k", 2.0, false),
            (35, "F", ">50k", 3.0, true),
            (41, "M", ">50k", 4.0, true),
            (55, "F", ">50k", 5.0, false),
            (67, "M", "<50k", 6.0, false),
        ];
        for (age, sex, salary, score, member) in rows {
            b.push_row(&[
                Value::Int(age),
                Value::Str(sex.into()),
                Value::Str(salary.into()),
                Value::Float(score),
                Value::Bool(member),
            ])
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn range_and_set_predicates() {
        let t = survey();
        let q = ConjunctiveQuery::all("survey")
            .and(Predicate::range("age", 25.0, 60.0))
            .and(Predicate::values("sex", ["F"]));
        let sel = evaluate(&q, &t).unwrap();
        assert_eq!(sel.to_indices(), vec![1, 2, 4]);
        assert!((cover(&q, &t).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_query_selects_everything() {
        let t = survey();
        let q = ConjunctiveQuery::all("survey");
        assert_eq!(evaluate(&q, &t).unwrap().count(), 6);
        assert_eq!(cover(&q, &t).unwrap(), 1.0);
    }

    #[test]
    fn evaluation_within_a_base_selection() {
        let t = survey();
        let base = Bitmap::from_indices(6, [0, 1, 2]);
        let q = ConjunctiveQuery::all("survey").and(Predicate::values("sex", ["F"]));
        let sel = evaluate_within(&q, &t, &base).unwrap();
        assert_eq!(sel.to_indices(), vec![1, 2]);
    }

    #[test]
    fn cover_is_relative_to_the_whole_table() {
        let t = survey();
        let q = ConjunctiveQuery::all("survey").and(Predicate::values("salary", [">50k"]));
        assert!((cover(&q, &t).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let t = survey();
        let q = ConjunctiveQuery::all("survey").and(Predicate::range("height", 0.0, 1.0));
        assert!(matches!(
            evaluate(&q, &t),
            Err(QueryError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn incompatible_predicates_are_rejected() {
        let t = survey();
        let range_on_string =
            ConjunctiveQuery::all("survey").and(Predicate::range("sex", 0.0, 1.0));
        assert!(matches!(
            evaluate(&range_on_string, &t),
            Err(QueryError::IncompatiblePredicate { .. })
        ));
        let set_on_float = ConjunctiveQuery::all("survey").and(Predicate::values("score", ["1.0"]));
        assert!(matches!(
            evaluate(&set_on_float, &t),
            Err(QueryError::IncompatiblePredicate { .. })
        ));
    }

    #[test]
    fn bool_and_int_set_predicates() {
        let t = survey();
        let q = ConjunctiveQuery::all("survey").and(Predicate::values("member", ["true"]));
        assert_eq!(evaluate(&q, &t).unwrap().count(), 3);
        let q = ConjunctiveQuery::all("survey").and(Predicate::values("age", ["22", "67"]));
        assert_eq!(evaluate(&q, &t).unwrap().to_indices(), vec![0, 5]);
    }

    #[test]
    fn contradictory_query_selects_nothing() {
        let t = survey();
        let q = ConjunctiveQuery::all("survey")
            .and(Predicate::range("age", 0.0, 10.0))
            .and(Predicate::values("sex", ["M"]));
        let sel = evaluate(&q, &t).unwrap();
        assert!(sel.is_all_clear());
        assert_eq!(cover(&q, &t).unwrap(), 0.0);
    }

    #[test]
    fn float_range_predicate() {
        let t = survey();
        let q = ConjunctiveQuery::all("survey").and(Predicate::range("score", 2.5, 4.5));
        assert_eq!(evaluate(&q, &t).unwrap().to_indices(), vec![2, 3]);
    }

    #[test]
    fn parsed_query_evaluates_like_built_query() {
        let t = survey();
        let parsed = crate::parser::parse_query(
            "SELECT * FROM survey WHERE age BETWEEN 25 AND 60 AND sex IN ('F')",
        )
        .unwrap();
        let built = ConjunctiveQuery::all("survey")
            .and(Predicate::range("age", 25.0, 60.0))
            .and(Predicate::values("sex", ["F"]));
        assert_eq!(
            evaluate(&parsed, &t).unwrap().to_indices(),
            evaluate(&built, &t).unwrap().to_indices()
        );
    }
}
