//! Tokeniser for the restricted SQL surface syntax.

use crate::error::{QueryError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A bare identifier or keyword (keywords are recognised by the parser,
    /// case-insensitively).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Token {
    /// True if the token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenise a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' as escaped quote.
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(QueryError::Lex {
                            position: i,
                            message: "unterminated string literal".to_string(),
                        });
                    }
                    let cj = bytes[j] as char;
                    if cj == '\'' {
                        if j + 1 < bytes.len() && bytes[j + 1] as char == '\'' {
                            s.push('\'');
                            j += 2;
                        } else {
                            j += 1;
                            break;
                        }
                    } else {
                        s.push(cj);
                        j += 1;
                    }
                }
                tokens.push(Token::StringLit(s));
                i = j;
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    let sign_in_exponent = (cj == '-' || cj == '+')
                        && (bytes[j - 1] as char == 'e' || bytes[j - 1] as char == 'E');
                    if cj.is_ascii_digit()
                        || cj == '.'
                        || cj == 'e'
                        || cj == 'E'
                        || sign_in_exponent
                    {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                let value = text.parse::<f64>().map_err(|_| QueryError::Lex {
                    position: start,
                    message: format!("invalid number: {text}"),
                })?;
                tokens.push(Token::Number(value));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_alphanumeric() || cj == '_' || cj == '.' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(QueryError::Lex {
                    position: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_full_query() {
        let toks = tokenize(
            "SELECT * FROM survey WHERE age BETWEEN 17 AND 90 AND education IN ('BSc', 'MSc')",
        )
        .unwrap();
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Number(17.0)));
        assert!(toks.contains(&Token::StringLit("BSc".to_string())));
        assert!(toks.iter().any(|t| t.is_keyword("select")));
        assert!(toks.iter().any(|t| t.is_keyword("between")));
    }

    #[test]
    fn numbers_including_negative_and_float() {
        let toks = tokenize("-3.5 42 1e3 2.5e-2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number(-3.5),
                Token::Number(42.0),
                Token::Number(1000.0),
                Token::Number(0.025)
            ]
        );
    }

    #[test]
    fn string_escape() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::StringLit("it's".to_string())]);
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a >= 1 AND b < 2 AND c <= 3 AND d > 4 AND e = 'x'").unwrap();
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::Eq));
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("age ? 5").unwrap_err();
        assert!(matches!(err, QueryError::Lex { position: 4, .. }));
        let err = tokenize("'unterminated").unwrap_err();
        assert!(matches!(err, QueryError::Lex { .. }));
        let err = tokenize("age = 1.2.3.4e").unwrap_err();
        assert!(matches!(err, QueryError::Lex { .. }));
    }

    #[test]
    fn identifiers_with_underscores_and_dots() {
        let toks = tokenize("hours_per_week t1.col").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("hours_per_week".to_string()),
                Token::Ident("t1.col".to_string())
            ]
        );
    }

    #[test]
    fn empty_input_is_ok() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n\t ").unwrap().is_empty());
    }
}
