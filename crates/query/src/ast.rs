//! Abstract syntax of conjunctive queries.
//!
//! Following Section 3 of the paper, a query `Q = P1 ∧ … ∧ PN` is a
//! conjunction of predicates `Pk : att_k ∈ S_k`, where `S_k` is either a
//! closed numeric interval or a finite set of categorical values. A query
//! describes a region of the data; a *map* is a set of such queries.

use std::collections::BTreeSet;
use std::fmt;

/// The set `S` of a predicate `attribute ∈ S`.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateSet {
    /// A closed numeric interval `[lo, hi]` (both ends inclusive).
    Range {
        /// Lower bound (inclusive). May be `-inf`.
        lo: f64,
        /// Upper bound (inclusive). May be `+inf`.
        hi: f64,
    },
    /// A finite set of categorical values.
    Values(BTreeSet<String>),
}

impl PredicateSet {
    /// A numeric range set.
    pub fn range(lo: f64, hi: f64) -> Self {
        PredicateSet::Range { lo, hi }
    }

    /// A categorical value set.
    pub fn values<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PredicateSet::Values(values.into_iter().map(Into::into).collect())
    }

    /// True if the set is empty (an empty value set or an inverted range).
    pub fn is_empty(&self) -> bool {
        match self {
            PredicateSet::Range { lo, hi } => lo > hi,
            PredicateSet::Values(v) => v.is_empty(),
        }
    }

    /// Intersect two predicate sets over the same attribute.
    ///
    /// Returns `None` when the two sets have incompatible kinds (range vs
    /// values); the result may be empty.
    pub fn intersect(&self, other: &PredicateSet) -> Option<PredicateSet> {
        match (self, other) {
            (PredicateSet::Range { lo: a, hi: b }, PredicateSet::Range { lo: c, hi: d }) => {
                Some(PredicateSet::Range {
                    lo: a.max(*c),
                    hi: b.min(*d),
                })
            }
            (PredicateSet::Values(a), PredicateSet::Values(b)) => {
                Some(PredicateSet::Values(a.intersection(b).cloned().collect()))
            }
            _ => None,
        }
    }

    /// True if a numeric value belongs to this set (always false for value sets).
    pub fn contains_number(&self, x: f64) -> bool {
        match self {
            PredicateSet::Range { lo, hi } => x >= *lo && x <= *hi,
            PredicateSet::Values(_) => false,
        }
    }

    /// True if a categorical value belongs to this set (always false for ranges).
    pub fn contains_value(&self, v: &str) -> bool {
        match self {
            PredicateSet::Range { .. } => false,
            PredicateSet::Values(set) => set.contains(v),
        }
    }
}

impl fmt::Display for PredicateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredicateSet::Range { lo, hi } => write!(f, "[{lo}, {hi}]"),
            PredicateSet::Values(vs) => {
                f.write_str("{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "'{v}'")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A single predicate `attribute ∈ set`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The attribute (column) name.
    pub attribute: String,
    /// The set of admissible values.
    pub set: PredicateSet,
}

impl Predicate {
    /// A range predicate `attribute ∈ [lo, hi]`.
    pub fn range(attribute: impl Into<String>, lo: f64, hi: f64) -> Self {
        Predicate {
            attribute: attribute.into(),
            set: PredicateSet::range(lo, hi),
        }
    }

    /// A value-set predicate `attribute ∈ {v1, …}`.
    pub fn values<I, S>(attribute: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Predicate {
            attribute: attribute.into(),
            set: PredicateSet::values(values),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ∈ {}", self.attribute, self.set)
    }
}

/// A conjunctive query `Q = P1 ∧ … ∧ PN` over a named table.
///
/// The predicate list may be empty, in which case the query selects the whole
/// table (this is how a "give me a first map of everything" exploration
/// starts).
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctiveQuery {
    /// The table the query ranges over.
    pub table: String,
    /// The conjunction of predicates.
    pub predicates: Vec<Predicate>,
}

impl ConjunctiveQuery {
    /// A query over the whole table (no predicates).
    pub fn all(table: impl Into<String>) -> Self {
        ConjunctiveQuery {
            table: table.into(),
            predicates: Vec::new(),
        }
    }

    /// Builder-style: add a predicate. If a predicate on the same attribute
    /// already exists, the two are intersected (when compatible) so the query
    /// stays a conjunction with at most one predicate per attribute.
    pub fn and(mut self, predicate: Predicate) -> Self {
        self.add_predicate(predicate);
        self
    }

    /// Add a predicate in place (see [`ConjunctiveQuery::and`]).
    pub fn add_predicate(&mut self, predicate: Predicate) {
        if let Some(existing) = self
            .predicates
            .iter_mut()
            .find(|p| p.attribute == predicate.attribute)
        {
            if let Some(intersection) = existing.set.intersect(&predicate.set) {
                existing.set = intersection;
                return;
            }
        }
        self.predicates.push(predicate);
    }

    /// The number of predicates (the paper's readability constraint caps this
    /// at ~3 per region).
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// The predicate on a given attribute, if any.
    pub fn predicate_on(&self, attribute: &str) -> Option<&Predicate> {
        self.predicates.iter().find(|p| p.attribute == attribute)
    }

    /// The attributes mentioned by the query, in predicate order.
    pub fn attributes(&self) -> Vec<&str> {
        self.predicates
            .iter()
            .map(|p| p.attribute.as_str())
            .collect()
    }

    /// The conjunction of two queries over the same table.
    ///
    /// Predicates on common attributes are intersected; incompatible
    /// predicates (range vs set on the same attribute) are kept side by side,
    /// which yields an unsatisfiable query — the caller detects that through
    /// an empty cover.
    pub fn conjoin(&self, other: &ConjunctiveQuery) -> ConjunctiveQuery {
        let mut out = self.clone();
        for p in &other.predicates {
            out.add_predicate(p.clone());
        }
        out
    }

    /// True if any predicate set is trivially empty (the region cannot match
    /// anything).
    pub fn is_trivially_empty(&self) -> bool {
        self.predicates.iter().any(|p| p.set.is_empty())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return write!(f, "{}: all", self.table);
        }
        write!(f, "{}: ", self.table)?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_set_membership() {
        let r = PredicateSet::range(1.0, 5.0);
        assert!(r.contains_number(1.0));
        assert!(r.contains_number(5.0));
        assert!(!r.contains_number(5.1));
        assert!(!r.contains_value("x"));
        assert!(!r.is_empty());
        assert!(PredicateSet::range(5.0, 1.0).is_empty());

        let v = PredicateSet::values(["a", "b"]);
        assert!(v.contains_value("a"));
        assert!(!v.contains_value("c"));
        assert!(!v.contains_number(1.0));
        assert!(!v.is_empty());
        assert!(PredicateSet::values(Vec::<String>::new()).is_empty());
    }

    #[test]
    fn predicate_set_intersection() {
        let a = PredicateSet::range(0.0, 10.0);
        let b = PredicateSet::range(5.0, 20.0);
        assert_eq!(a.intersect(&b), Some(PredicateSet::range(5.0, 10.0)));
        let v1 = PredicateSet::values(["a", "b", "c"]);
        let v2 = PredicateSet::values(["b", "c", "d"]);
        assert_eq!(v1.intersect(&v2), Some(PredicateSet::values(["b", "c"])));
        assert_eq!(a.intersect(&v1), None);
        // Disjoint ranges intersect to an empty range.
        let empty = PredicateSet::range(0.0, 1.0)
            .intersect(&PredicateSet::range(2.0, 3.0))
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn query_builder_merges_same_attribute() {
        let q = ConjunctiveQuery::all("survey")
            .and(Predicate::range("age", 17.0, 90.0))
            .and(Predicate::range("age", 40.0, 120.0))
            .and(Predicate::values("education", ["BSc", "MSc"]));
        assert_eq!(q.num_predicates(), 2);
        let age = q.predicate_on("age").unwrap();
        assert_eq!(age.set, PredicateSet::range(40.0, 90.0));
        assert_eq!(q.attributes(), vec!["age", "education"]);
        assert!(q.predicate_on("salary").is_none());
        assert!(!q.is_trivially_empty());
    }

    #[test]
    fn conjoin_combines_queries() {
        let q1 = ConjunctiveQuery::all("t").and(Predicate::range("x", 0.0, 10.0));
        let q2 = ConjunctiveQuery::all("t")
            .and(Predicate::range("x", 5.0, 20.0))
            .and(Predicate::values("c", ["red"]));
        let q = q1.conjoin(&q2);
        assert_eq!(q.num_predicates(), 2);
        assert_eq!(
            q.predicate_on("x").unwrap().set,
            PredicateSet::range(5.0, 10.0)
        );
        assert!(q.predicate_on("c").is_some());
    }

    #[test]
    fn conjoin_disjoint_ranges_is_trivially_empty() {
        let q1 = ConjunctiveQuery::all("t").and(Predicate::range("x", 0.0, 1.0));
        let q2 = ConjunctiveQuery::all("t").and(Predicate::range("x", 5.0, 9.0));
        assert!(q1.conjoin(&q2).is_trivially_empty());
    }

    #[test]
    fn display_matches_paper_notation() {
        let q = ConjunctiveQuery::all("survey")
            .and(Predicate::range("age", 17.0, 37.0))
            .and(Predicate::values("sex", ["Male"]));
        let s = q.to_string();
        assert!(s.contains("age ∈ [17, 37]"));
        assert!(s.contains("sex ∈ {'Male'}"));
        assert_eq!(ConjunctiveQuery::all("t").to_string(), "t: all");
    }
}
