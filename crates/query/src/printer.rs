//! Rendering queries back to SQL and to compact notation.

use crate::ast::{ConjunctiveQuery, Predicate, PredicateSet};

fn format_number(x: f64) -> String {
    if x == f64::INFINITY {
        "inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-inf".to_string()
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        // Rust's shortest round-trip formatting: printing and re-parsing a
        // region query must give back exactly the same region, so bounds that
        // sit one ULP above a split point are preserved bit-for-bit.
        format!("{x}")
    }
}

fn escape(s: &str) -> String {
    s.replace('\'', "''")
}

fn predicate_to_sql(p: &Predicate) -> String {
    match &p.set {
        PredicateSet::Range { lo, hi } => {
            if lo.is_infinite() && hi.is_infinite() {
                format!("{} IS NOT NULL", p.attribute)
            } else if lo.is_infinite() {
                format!("{} <= {}", p.attribute, format_number(*hi))
            } else if hi.is_infinite() {
                format!("{} >= {}", p.attribute, format_number(*lo))
            } else {
                format!(
                    "{} BETWEEN {} AND {}",
                    p.attribute,
                    format_number(*lo),
                    format_number(*hi)
                )
            }
        }
        PredicateSet::Values(values) => {
            let items: Vec<String> = values.iter().map(|v| format!("'{}'", escape(v))).collect();
            format!("{} IN ({})", p.attribute, items.join(", "))
        }
    }
}

/// Render a query as executable (restricted) SQL.
pub fn to_sql(query: &ConjunctiveQuery) -> String {
    let table = if query.table.is_empty() {
        "?"
    } else {
        query.table.as_str()
    };
    if query.predicates.is_empty() {
        return format!("SELECT * FROM {table}");
    }
    let preds: Vec<String> = query.predicates.iter().map(predicate_to_sql).collect();
    format!("SELECT * FROM {table} WHERE {}", preds.join(" AND "))
}

/// Render a query in the compact notation of the paper's figures, one
/// predicate per line (e.g. `Age: [17, 37]` / `Sex: {'Male'}`).
pub fn to_compact(query: &ConjunctiveQuery) -> String {
    if query.predicates.is_empty() {
        return "all".to_string();
    }
    let mut lines = Vec::with_capacity(query.predicates.len());
    for p in &query.predicates {
        let set = match &p.set {
            PredicateSet::Range { lo, hi } => {
                format!("[{}, {}]", format_number(*lo), format_number(*hi))
            }
            PredicateSet::Values(values) => {
                let items: Vec<String> = values.iter().map(|v| format!("'{v}'")).collect();
                format!("{{{}}}", items.join(", "))
            }
        };
        lines.push(format!("{}: {}", p.attribute, set));
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn sql_round_trips_through_the_parser() {
        let q = ConjunctiveQuery::all("survey")
            .and(Predicate::range("age", 17.0, 90.0))
            .and(Predicate::values("education", ["BSc", "MSc"]));
        let sql = to_sql(&q);
        assert_eq!(
            sql,
            "SELECT * FROM survey WHERE age BETWEEN 17 AND 90 AND education IN ('BSc', 'MSc')"
        );
        let reparsed = parse_query(&sql).unwrap();
        assert_eq!(reparsed, q);
    }

    #[test]
    fn open_ended_ranges_use_comparisons() {
        let q = ConjunctiveQuery::all("t")
            .and(Predicate::range("a", 5.0, f64::INFINITY))
            .and(Predicate::range("b", f64::NEG_INFINITY, 9.0));
        let sql = to_sql(&q);
        assert!(sql.contains("a >= 5"));
        assert!(sql.contains("b <= 9"));
        let reparsed = parse_query(&sql).unwrap();
        assert_eq!(reparsed.num_predicates(), 2);
    }

    #[test]
    fn empty_query_and_empty_table() {
        assert_eq!(to_sql(&ConjunctiveQuery::all("t")), "SELECT * FROM t");
        assert_eq!(to_sql(&ConjunctiveQuery::all("")), "SELECT * FROM ?");
        assert_eq!(to_compact(&ConjunctiveQuery::all("t")), "all");
    }

    #[test]
    fn quotes_are_escaped() {
        let q = ConjunctiveQuery::all("t").and(Predicate::values("name", ["o'brien"]));
        let sql = to_sql(&q);
        assert!(sql.contains("'o''brien'"));
        let reparsed = parse_query(&sql).unwrap();
        assert!(reparsed
            .predicate_on("name")
            .unwrap()
            .set
            .contains_value("o'brien"));
    }

    #[test]
    fn compact_form_matches_figure_style() {
        let q = ConjunctiveQuery::all("survey")
            .and(Predicate::range("Age", 17.0, 37.0))
            .and(Predicate::values("Sex", ["Male"]));
        let compact = to_compact(&q);
        assert_eq!(compact, "Age: [17, 37]\nSex: {'Male'}");
    }

    #[test]
    fn unbounded_range_renders_as_not_null_and_round_trips() {
        let q =
            ConjunctiveQuery::all("t").and(Predicate::range("x", f64::NEG_INFINITY, f64::INFINITY));
        let sql = to_sql(&q);
        assert!(sql.contains("x IS NOT NULL"));
        assert_eq!(parse_query(&sql).unwrap(), q);
        // Malformed variants of the clause are rejected, not misparsed.
        assert!(parse_query("x IS NULL").is_err());
        assert!(parse_query("x IS NOT").is_err());
    }

    #[test]
    fn float_formatting_is_trimmed() {
        let q = ConjunctiveQuery::all("t").and(Predicate::range("x", 0.5, 2.25));
        let sql = to_sql(&q);
        assert!(sql.contains("0.5") && sql.contains("2.25"));
        assert!(!sql.contains("0.5000"));
    }
}
