//! # atlas-query
//!
//! The conjunctive query language of Atlas.
//!
//! The original prototype exposes a "proprietary query language … a
//! restriction of SQL which can only express conjunction of predicates"
//! (Section 4 of "Fast Cartography for Data Explorers"). This crate provides:
//!
//! * the **AST**: a [`ConjunctiveQuery`] is a conjunction of [`Predicate`]s,
//!   each of the form `attribute ∈ S` where `S` is either a numeric range or a
//!   set of categorical values ([`ast`]);
//! * a **lexer + recursive-descent parser** for the SQL-restricted surface
//!   syntax (`SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN ('x','y')`)
//!   ([`lexer`], [`parser`]);
//! * a **printer** back to SQL and to the compact mathematical notation used
//!   in the paper's figures ([`printer`]);
//! * **evaluation** of a query against the columnar engine, producing a
//!   selection [`atlas_columnar::Bitmap`] and the cover `C(Q)` ([`eval`]).

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{ConjunctiveQuery, Predicate, PredicateSet};
pub use error::{QueryError, Result};
pub use eval::{cover, evaluate, evaluate_within};
pub use parser::parse_query;
pub use printer::{to_compact, to_sql};
