//! Errors raised by the query layer.

use std::fmt;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, QueryError>;

/// Errors raised while parsing or evaluating conjunctive queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query text could not be tokenised.
    Lex {
        /// Byte offset of the offending character.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// The token stream did not match the grammar.
    Parse {
        /// Index of the offending token.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// The query references a column that the table does not have.
    UnknownAttribute(String),
    /// A predicate is not applicable to the column's type (e.g. a range
    /// predicate on a string column).
    IncompatiblePredicate {
        /// The attribute the predicate refers to.
        attribute: String,
        /// Description of the mismatch.
        message: String,
    },
    /// An error bubbled up from the storage layer.
    Storage(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            QueryError::Parse { position, message } => {
                write!(f, "parse error at token {position}: {message}")
            }
            QueryError::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
            QueryError::IncompatiblePredicate { attribute, message } => {
                write!(f, "incompatible predicate on {attribute}: {message}")
            }
            QueryError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<atlas_columnar::ColumnarError> for QueryError {
    fn from(err: atlas_columnar::ColumnarError) -> Self {
        match err {
            atlas_columnar::ColumnarError::UnknownColumn(name) => {
                QueryError::UnknownAttribute(name)
            }
            other => QueryError::Storage(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        let e = QueryError::Parse {
            position: 3,
            message: "expected AND".into(),
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains("expected AND"));
        let e = QueryError::UnknownAttribute("ageee".into());
        assert!(e.to_string().contains("ageee"));
    }

    #[test]
    fn columnar_error_converts() {
        let e: QueryError = atlas_columnar::ColumnarError::UnknownColumn("x".into()).into();
        assert_eq!(e, QueryError::UnknownAttribute("x".into()));
        let e: QueryError = atlas_columnar::ColumnarError::EmptySchema.into();
        assert!(matches!(e, QueryError::Storage(_)));
    }
}
