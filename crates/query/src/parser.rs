//! Recursive-descent parser for the restricted SQL syntax.
//!
//! Grammar (keywords are case-insensitive):
//!
//! ```text
//! query      := SELECT '*' FROM ident [ WHERE conjunction ]
//!             | conjunction                      (bare predicate list, table = "")
//! conjunction:= predicate ( AND predicate )*
//! predicate  := ident BETWEEN number AND number
//!             | ident IN '(' literal ( ',' literal )* ')'
//!             | ident '=' literal
//!             | ident ( '<' | '<=' | '>' | '>=' ) number
//!             | ident IS NOT NULL
//! literal    := number | string
//! ```
//!
//! `IS NOT NULL` is the parse of the unbounded range `[-inf, inf]` the
//! printer emits for it, so every predicate the engine can produce — region
//! queries shipped over the wire included — round-trips through print + parse.
//!
//! Only conjunctions are accepted — that is the whole point of the language
//! ("a restriction of SQL which can only express conjunction of predicates").

use crate::ast::{ConjunctiveQuery, Predicate, PredicateSet};
use crate::error::{QueryError, Result};
use crate::lexer::{tokenize, Token};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            position: self.pos,
            message: message.into(),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(t) if t.is_keyword(kw) => Ok(()),
            Some(t) => Err(self.error(format!("expected {kw}, found {t:?}"))),
            None => Err(self.error(format!("expected {kw}, found end of input"))),
        }
    }

    fn expect_token(&mut self, token: &Token, what: &str) -> Result<()> {
        match self.next() {
            Some(ref t) if t == token => Ok(()),
            Some(t) => Err(self.error(format!("expected {what}, found {t:?}"))),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(self.error(format!("expected identifier, found {t:?}"))),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next() {
            Some(Token::Number(x)) => Ok(x),
            Some(t) => Err(self.error(format!("expected number, found {t:?}"))),
            None => Err(self.error("expected number, found end of input")),
        }
    }

    /// literal := number | string ; returned as (string form, is_number)
    fn literal(&mut self) -> Result<(String, Option<f64>)> {
        match self.next() {
            Some(Token::Number(x)) => Ok((format_number(x), Some(x))),
            Some(Token::StringLit(s)) => Ok((s, None)),
            Some(t) => Err(self.error(format!("expected literal, found {t:?}"))),
            None => Err(self.error("expected literal, found end of input")),
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let attribute = self.ident()?;
        match self.peek().cloned() {
            Some(t) if t.is_keyword("between") => {
                self.next();
                let lo = self.number()?;
                self.expect_keyword("and")?;
                let hi = self.number()?;
                Ok(Predicate::range(attribute, lo, hi))
            }
            Some(t) if t.is_keyword("in") => {
                self.next();
                self.expect_token(&Token::LParen, "'('")?;
                let mut values = Vec::new();
                loop {
                    let (v, _) = self.literal()?;
                    values.push(v);
                    match self.next() {
                        Some(Token::Comma) => continue,
                        Some(Token::RParen) => break,
                        Some(t) => {
                            return Err(self.error(format!("expected ',' or ')', found {t:?}")))
                        }
                        None => return Err(self.error("expected ',' or ')', found end of input")),
                    }
                }
                Ok(Predicate::values(attribute, values))
            }
            Some(Token::Eq) => {
                self.next();
                let (value, number) = self.literal()?;
                match number {
                    Some(x) => Ok(Predicate::range(attribute, x, x)),
                    None => Ok(Predicate::values(attribute, [value])),
                }
            }
            Some(Token::Lt) => {
                self.next();
                let x = self.number()?;
                Ok(Predicate {
                    attribute,
                    set: PredicateSet::range(f64::NEG_INFINITY, prev_float(x)),
                })
            }
            Some(Token::Le) => {
                self.next();
                let x = self.number()?;
                Ok(Predicate::range(attribute, f64::NEG_INFINITY, x))
            }
            Some(Token::Gt) => {
                self.next();
                let x = self.number()?;
                Ok(Predicate {
                    attribute,
                    set: PredicateSet::range(next_float(x), f64::INFINITY),
                })
            }
            Some(Token::Ge) => {
                self.next();
                let x = self.number()?;
                Ok(Predicate::range(attribute, x, f64::INFINITY))
            }
            Some(t) if t.is_keyword("is") => {
                // `attr IS NOT NULL`: the fully unbounded range — exactly what
                // the printer renders a `[-inf, inf]` predicate as.
                self.next();
                self.expect_keyword("not")?;
                self.expect_keyword("null")?;
                Ok(Predicate::range(
                    attribute,
                    f64::NEG_INFINITY,
                    f64::INFINITY,
                ))
            }
            Some(t) => Err(self.error(format!("expected a predicate operator, found {t:?}"))),
            None => Err(self.error("expected a predicate operator, found end of input")),
        }
    }

    fn conjunction(&mut self) -> Result<Vec<Predicate>> {
        let mut predicates = vec![self.predicate()?];
        while let Some(t) = self.peek() {
            if t.is_keyword("and") {
                self.next();
                predicates.push(self.predicate()?);
            } else if t.is_keyword("or") {
                return Err(self
                    .error("OR is not part of the language: Atlas queries are conjunctions only"));
            } else {
                break;
            }
        }
        Ok(predicates)
    }

    fn query(&mut self) -> Result<ConjunctiveQuery> {
        let starts_with_select = matches!(self.peek(), Some(t) if t.is_keyword("select"));
        let mut query;
        if starts_with_select {
            self.expect_keyword("select")?;
            self.expect_token(&Token::Star, "'*'")?;
            self.expect_keyword("from")?;
            let table = self.ident()?;
            query = ConjunctiveQuery::all(table);
            if let Some(t) = self.peek() {
                if t.is_keyword("where") {
                    self.next();
                    for p in self.conjunction()? {
                        query.add_predicate(p);
                    }
                }
            }
        } else {
            query = ConjunctiveQuery::all("");
            for p in self.conjunction()? {
                query.add_predicate(p);
            }
        }
        if self.pos != self.tokens.len() {
            return Err(self.error("unexpected trailing tokens"));
        }
        Ok(query)
    }
}

fn format_number(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn next_float(x: f64) -> f64 {
    // Smallest representable value strictly greater than x (good enough for
    // translating `>` into a closed range on continuous data).
    if x.is_finite() {
        f64::from_bits(if x >= 0.0 {
            x.to_bits() + 1
        } else {
            x.to_bits() - 1
        })
    } else {
        x
    }
}

fn prev_float(x: f64) -> f64 {
    if x.is_finite() {
        f64::from_bits(if x > 0.0 {
            x.to_bits() - 1
        } else if x == 0.0 {
            (-f64::MIN_POSITIVE).to_bits()
        } else {
            x.to_bits() + 1
        })
    } else {
        x
    }
}

/// Parse a query in the restricted SQL syntax.
///
/// Both the full form (`SELECT * FROM t WHERE …`) and the bare predicate form
/// (`age BETWEEN 17 AND 90 AND sex IN ('M')`) are accepted; the latter leaves
/// the table name empty for the caller to fill in.
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err(QueryError::Parse {
            position: 0,
            message: "empty query".to_string(),
        });
    }
    let mut parser = Parser { tokens, pos: 0 };
    parser.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        let q = parse_query(
            "SELECT * FROM survey WHERE age BETWEEN 17 AND 90 \
             AND eye_color IN ('Blue','Green','Brown') AND education IN ('BSc','MSc')",
        )
        .unwrap();
        assert_eq!(q.table, "survey");
        assert_eq!(q.num_predicates(), 3);
        assert_eq!(
            q.predicate_on("age").unwrap().set,
            PredicateSet::range(17.0, 90.0)
        );
        assert!(q
            .predicate_on("education")
            .unwrap()
            .set
            .contains_value("MSc"));
    }

    #[test]
    fn parses_bare_conjunction() {
        let q = parse_query("age BETWEEN 20 AND 55 AND sex IN ('M','F')").unwrap();
        assert_eq!(q.table, "");
        assert_eq!(q.num_predicates(), 2);
    }

    #[test]
    fn parses_select_without_where() {
        let q = parse_query("SELECT * FROM adult").unwrap();
        assert_eq!(q.table, "adult");
        assert_eq!(q.num_predicates(), 0);
    }

    #[test]
    fn equality_predicates() {
        let q = parse_query("salary = '>50k' AND age = 30").unwrap();
        assert!(q.predicate_on("salary").unwrap().set.contains_value(">50k"));
        assert_eq!(
            q.predicate_on("age").unwrap().set,
            PredicateSet::range(30.0, 30.0)
        );
    }

    #[test]
    fn comparison_predicates() {
        let q = parse_query("a >= 10 AND b <= 20 AND c > 0 AND d < 5").unwrap();
        match q.predicate_on("a").unwrap().set {
            PredicateSet::Range { lo, hi } => {
                assert_eq!(lo, 10.0);
                assert!(hi.is_infinite() && hi > 0.0);
            }
            _ => panic!("expected range"),
        }
        match q.predicate_on("c").unwrap().set {
            PredicateSet::Range { lo, .. } => assert!(lo > 0.0),
            _ => panic!("expected range"),
        }
        match q.predicate_on("d").unwrap().set {
            PredicateSet::Range { hi, .. } => assert!(hi < 5.0),
            _ => panic!("expected range"),
        }
    }

    #[test]
    fn duplicate_attribute_predicates_are_intersected() {
        let q = parse_query("age >= 10 AND age <= 20").unwrap();
        assert_eq!(q.num_predicates(), 1);
        match q.predicate_on("age").unwrap().set {
            PredicateSet::Range { lo, hi } => {
                assert_eq!(lo, 10.0);
                assert_eq!(hi, 20.0);
            }
            _ => panic!("expected range"),
        }
    }

    #[test]
    fn rejects_or_and_garbage() {
        assert!(matches!(
            parse_query("a = 1 OR b = 2"),
            Err(QueryError::Parse { .. })
        ));
        assert!(parse_query("").is_err());
        assert!(parse_query("SELECT age FROM t").is_err());
        assert!(parse_query("SELECT * FROM t WHERE").is_err());
        assert!(parse_query("a BETWEEN 1").is_err());
        assert!(parse_query("a IN (1,").is_err());
        assert!(parse_query("a = 1 extra").is_err());
        assert!(parse_query("a LIKE 'x'").is_err());
    }

    #[test]
    fn in_list_with_numbers() {
        let q = parse_query("code IN (1, 2, 3)").unwrap();
        let set = &q.predicate_on("code").unwrap().set;
        assert!(set.contains_value("1"));
        assert!(set.contains_value("3"));
    }
}
