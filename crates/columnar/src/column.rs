//! Typed columns with null masks and dictionary encoding for strings.

use crate::bitmap::Bitmap;
use crate::error::{ColumnarError, Result};
use crate::kernels;
use crate::value::{DataType, Value};
use std::collections::HashMap;

/// Sentinel code used for NULL entries in dictionary-encoded columns.
pub const NULL_CODE: u32 = u32::MAX;

/// A primitive column: a dense value vector plus a packed validity bitmap.
///
/// NULL rows hold `T::default()` in the value vector and a zero bit in the
/// validity mask. Splitting values from nullness is what lets the partition
/// kernels run word-parallel: 64 validity bits load in one shift-and-or
/// ([`Bitmap::word_at`]) and the value lanes are a plain `&[T]` slice that
/// classification loops read without per-row `Option` unwrapping.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimitiveColumn<T> {
    values: Vec<T>,
    validity: Bitmap,
}

impl<T: Copy + Default> PrimitiveColumn<T> {
    /// Create an empty column.
    pub fn new() -> Self {
        PrimitiveColumn {
            values: Vec::new(),
            validity: Bitmap::new_empty(0),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Append a value (`None` = NULL).
    pub fn push(&mut self, value: Option<T>) {
        self.values.push(value.unwrap_or_default());
        self.validity.push(value.is_some());
    }

    /// The value at `row`, `None` for NULL.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn get(&self, row: usize) -> Option<T> {
        let x = self.values[row];
        self.validity.get(row).then_some(x)
    }

    /// The dense value lanes (NULL rows hold `T::default()`; consult
    /// [`PrimitiveColumn::validity`] before trusting a lane).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// The validity mask: bit `i` set ⇔ row `i` is non-NULL.
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Number of NULL entries.
    pub fn null_count(&self) -> usize {
        self.values.len() - self.validity.count()
    }

    /// Iterate the rows as `Option<T>`.
    pub fn iter(&self) -> impl Iterator<Item = Option<T>> + '_ {
        (0..self.len()).map(|row| self.get(row))
    }

    /// Copy the rows `start..end` into a new column.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> Self {
        let values = self.values[start..end].to_vec();
        let len = end - start;
        let words = (0..len.div_ceil(64))
            .map(|k| self.validity.word_at(start + k * 64))
            .collect();
        PrimitiveColumn {
            values,
            validity: Bitmap::from_words(len, words),
        }
    }
}

impl<T: Copy + Default> Default for PrimitiveColumn<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default> From<Vec<Option<T>>> for PrimitiveColumn<T> {
    fn from(values: Vec<Option<T>>) -> Self {
        let mut out = PrimitiveColumn::new();
        for v in values {
            out.push(v);
        }
        out
    }
}

/// A dictionary-encoded categorical column.
///
/// Values are stored as `u32` codes into `dict`; NULLs are stored as
/// [`NULL_CODE`]. The dictionary preserves first-appearance order, which the
/// query layer uses for the "order in which the user gives them" cutting
/// heuristic of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DictColumn {
    dict: Vec<String>,
    codes: Vec<u32>,
    index: HashMap<String, u32>,
}

impl DictColumn {
    /// Create an empty dictionary column.
    pub fn new() -> Self {
        DictColumn {
            dict: Vec::new(),
            codes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Append a value, interning it in the dictionary.
    pub fn push(&mut self, value: Option<&str>) {
        match value {
            None => self.codes.push(NULL_CODE),
            Some(s) => {
                let code = self.intern(s);
                self.codes.push(code);
            }
        }
    }

    /// Intern a string, returning its code (without appending a row).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = self.dict.len() as u32;
        self.dict.push(s.to_string());
        self.index.insert(s.to_string(), code);
        code
    }

    /// The code stored at `row` ([`NULL_CODE`] for NULL).
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// The string at `row`, or `None` for NULL.
    pub fn get(&self, row: usize) -> Option<&str> {
        let c = self.codes[row];
        if c == NULL_CODE {
            None
        } else {
            Some(self.dict[c as usize].as_str())
        }
    }

    /// Look up the code of a string, if it is present in the dictionary.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The distinct values in first-appearance order.
    pub fn dictionary(&self) -> &[String] {
        &self.dict
    }

    /// The raw code vector.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The number of distinct non-NULL values.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }
}

impl Default for DictColumn {
    fn default() -> Self {
        Self::new()
    }
}

/// A typed column of values with NULL support.
///
/// Numeric and boolean columns store dense value lanes plus a validity
/// bitmap ([`PrimitiveColumn`]); string columns are dictionary encoded
/// (see [`DictColumn`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integer column.
    Int(PrimitiveColumn<i64>),
    /// 64-bit float column.
    Float(PrimitiveColumn<f64>),
    /// Dictionary-encoded string column.
    Str(DictColumn),
    /// Boolean column.
    Bool(PrimitiveColumn<bool>),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn new_empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(PrimitiveColumn::new()),
            DataType::Float => Column::Float(PrimitiveColumn::new()),
            DataType::Str => Column::Str(DictColumn::new()),
            DataType::Bool => Column::Bool(PrimitiveColumn::new()),
        }
    }

    /// The data type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(d) => d.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a dynamically-typed value.
    ///
    /// Returns a type-mismatch error if the value does not match the column
    /// type (NULL is accepted by every column).
    pub fn push(&mut self, value: &Value) -> Result<()> {
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(Some(*x)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(x)) => v.push(Some(*x)),
            (Column::Float(v), Value::Int(x)) => v.push(Some(*x as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Str(d), Value::Str(s)) => d.push(Some(s)),
            (Column::Str(d), Value::Null) => d.push(None),
            (Column::Bool(v), Value::Bool(b)) => v.push(Some(*b)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (col, value) => {
                return Err(ColumnarError::TypeMismatch {
                    expected: col.data_type().name().to_string(),
                    found: value
                        .data_type()
                        .map(|t| t.name().to_string())
                        .unwrap_or_else(|| "null".to_string()),
                })
            }
        }
        Ok(())
    }

    /// The value at `row` as a dynamically-typed [`Value`].
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => v.get(row).map(Value::Int).unwrap_or(Value::Null),
            Column::Float(v) => v.get(row).map(Value::Float).unwrap_or(Value::Null),
            Column::Str(d) => d
                .get(row)
                .map(|s| Value::Str(s.to_string()))
                .unwrap_or(Value::Null),
            Column::Bool(v) => v.get(row).map(Value::Bool).unwrap_or(Value::Null),
        }
    }

    /// Checked version of [`Column::value`].
    pub fn try_value(&self, row: usize) -> Result<Value> {
        if row >= self.len() {
            return Err(ColumnarError::RowOutOfBounds {
                row,
                len: self.len(),
            });
        }
        Ok(self.value(row))
    }

    /// True if the value at `row` is NULL.
    pub fn is_null(&self, row: usize) -> bool {
        match self {
            Column::Int(v) => v.get(row).is_none(),
            Column::Float(v) => v.get(row).is_none(),
            Column::Str(d) => d.get(row).is_none(),
            Column::Bool(v) => v.get(row).is_none(),
        }
    }

    /// Number of NULL entries.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(v) => v.null_count(),
            Column::Float(v) => v.null_count(),
            Column::Str(d) => d.codes().iter().filter(|&&c| c == NULL_CODE).count(),
            Column::Bool(v) => v.null_count(),
        }
    }

    /// Numeric view of the value at `row` (`None` for NULL or non-numeric).
    pub fn numeric(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int(v) => v.get(row).map(|x| x as f64),
            Column::Float(v) => v.get(row),
            _ => None,
        }
    }

    /// Access the dictionary column if this is a string column.
    pub fn as_dict(&self) -> Option<&DictColumn> {
        match self {
            Column::Str(d) => Some(d),
            _ => None,
        }
    }

    /// Collect the non-NULL numeric values for the rows selected by `sel`.
    ///
    /// Non-numeric columns return an empty vector. This is the main scan kernel
    /// the `CUT` primitive relies on.
    pub fn numeric_values_where(&self, sel: &Bitmap) -> Vec<f64> {
        let mut out = Vec::with_capacity(sel.count().min(self.len()));
        kernels::numeric_values_part(self, 0, sel, &mut out);
        out
    }

    /// Select the rows whose numeric value lies in `[lo, hi]` (inclusive),
    /// restricted to `sel`. NULLs never match. Non-numeric columns return an
    /// empty selection.
    ///
    /// Runs the word-parallel range kernel (see [`crate::kernels`]): the
    /// selection is walked word-by-word, validity comes from the null-mask
    /// words, and dense 64-row blocks classify with lane-wise compares.
    pub fn select_range(&self, sel: &Bitmap, lo: f64, hi: f64) -> Bitmap {
        let mut out = Bitmap::new_empty(sel.len());
        let bounds = [(lo, hi)];
        let spec = kernels::resolve_ranges(self.data_type(), &bounds);
        kernels::select_ranges_part(self, 0, sel, &bounds, &spec, std::slice::from_mut(&mut out));
        out
    }

    /// Select the rows whose categorical value is in `values`, restricted to
    /// `sel`. For boolean columns the values `"true"` / `"false"` are honoured.
    /// NULLs never match. Numeric columns match on the decimal rendering of the
    /// value, so set predicates degrade gracefully on integers.
    pub fn select_in<S: AsRef<str>>(&self, sel: &Bitmap, values: &[S]) -> Bitmap {
        self.select_in_iter(sel, values.iter().map(S::as_ref))
    }

    /// [`Column::select_in`] over a borrowed value iterator (no value-set
    /// clone required).
    ///
    /// The value set is resolved **once**, before the scan: to dictionary
    /// codes for string columns (membership is then one indexed load per row,
    /// never a string comparison), to native `i64`s for integer columns, and
    /// to rendered-string sets for float columns. The scan itself is the fused
    /// word-by-word filter of [`Bitmap::filter_ones_in_into`].
    pub fn select_in_iter<'v, I>(&self, sel: &Bitmap, values: I) -> Bitmap
    where
        I: IntoIterator<Item = &'v str>,
    {
        let mut out = Bitmap::new_empty(sel.len());
        match self {
            Column::Str(d) => {
                // Resolve the value set to sorted dictionary codes once: the
                // setup cost is O(|values| log |values|) regardless of the
                // dictionary's cardinality, and each row is one binary search
                // over the (typically tiny) code set — never a string compare.
                let mut codes: Vec<u32> = values.into_iter().filter_map(|v| d.code_of(v)).collect();
                if codes.is_empty() {
                    return out;
                }
                codes.sort_unstable();
                sel.filter_ones_in_into(0, d.len(), &mut out, |idx| {
                    let code = d.code(idx);
                    code != NULL_CODE && codes.binary_search(&code).is_ok()
                });
            }
            Column::Bool(v) => {
                let mut want_true = false;
                let mut want_false = false;
                for s in values {
                    want_true |= s.eq_ignore_ascii_case("true");
                    want_false |= s.eq_ignore_ascii_case("false");
                }
                sel.filter_ones_in_into(0, v.len(), &mut out, |idx| match v.get(idx) {
                    Some(true) => want_true,
                    Some(false) => want_false,
                    None => false,
                });
            }
            Column::Int(v) => {
                // Parse the value set once; the round-trip check keeps the
                // semantics of decimal-rendering equality (e.g. "007" or "+7"
                // still never match the value 7).
                let wanted: Vec<i64> = values
                    .into_iter()
                    .filter_map(|s| s.parse::<i64>().ok().filter(|x| x.to_string() == s))
                    .collect();
                if wanted.is_empty() {
                    return out;
                }
                sel.filter_ones_in_into(0, v.len(), &mut out, |idx| match v.get(idx) {
                    Some(x) => wanted.contains(&x),
                    None => false,
                });
            }
            Column::Float(v) => {
                let wanted: std::collections::HashSet<&str> = values.into_iter().collect();
                if wanted.is_empty() {
                    return out;
                }
                sel.filter_ones_in_into(0, v.len(), &mut out, |idx| match v.get(idx) {
                    Some(x) => wanted.contains(x.to_string().as_str()),
                    None => false,
                });
            }
        }
        out
    }

    /// Partition the selected rows into one selection per numeric range, in a
    /// **single pass** over the column (instead of one
    /// [`Column::select_range`] scan per region).
    ///
    /// `bounds` are inclusive `[lo, hi]` intervals and must be pairwise
    /// disjoint (each row is assigned to the first interval containing its
    /// value — for disjoint intervals, the only one). NULLs fall into no
    /// region; non-numeric columns return all-empty selections.
    ///
    /// This is a word-parallel kernel — 64 rows per step, see
    /// [`crate::kernels`]; `ATLAS_FORCE_SCALAR=1` selects the one-row-at-a-
    /// time reference implementation.
    pub fn select_ranges(&self, sel: &Bitmap, bounds: &[(f64, f64)]) -> Vec<Bitmap> {
        let mut out: Vec<Bitmap> = bounds
            .iter()
            .map(|_| Bitmap::new_empty(sel.len()))
            .collect();
        let spec = kernels::resolve_ranges(self.data_type(), bounds);
        kernels::select_ranges_part(self, 0, sel, bounds, &spec, &mut out);
        out
    }

    /// Partition the selected rows into one selection per value group, in a
    /// **single pass** over the column (instead of one [`Column::select_in`]
    /// scan per group).
    ///
    /// Groups must be pairwise disjoint value sets. String columns resolve
    /// every group to dictionary codes once and then classify through the
    /// code→group table (sorted dictionaries whose groups are contiguous
    /// code ranges classify by lane-wise range compares instead); boolean
    /// columns honour `"true"` / `"false"`; numeric columns resolve a
    /// combined value→group map and classify in the same single pass.
    pub fn select_in_groups(&self, sel: &Bitmap, groups: &[Vec<String>]) -> Vec<Bitmap> {
        let mut out: Vec<Bitmap> = groups
            .iter()
            .map(|_| Bitmap::new_empty(sel.len()))
            .collect();
        let spec = kernels::resolve_groups(self.data_type(), groups);
        kernels::select_in_groups_part(self, 0, sel, groups, &spec, &mut out);
        out
    }

    /// The rows holding a non-NULL value, as a bitmap over the column's rows
    /// (the inverted null mask). Primitive columns return their validity mask
    /// directly; dictionary columns assemble it a word at a time.
    pub fn non_null_mask(&self) -> Bitmap {
        match self {
            Column::Int(v) => v.validity().clone(),
            Column::Float(v) => v.validity().clone(),
            Column::Str(d) => Bitmap::from_fn(d.len(), |idx| d.code(idx) != NULL_CODE),
            Column::Bool(v) => v.validity().clone(),
        }
    }

    /// The distinct categorical values of the rows selected by `sel`, ordered
    /// by decreasing frequency (ties broken by first appearance).
    ///
    /// Numeric columns return an empty vector.
    pub fn categories_by_frequency(&self, sel: &Bitmap) -> Vec<(String, usize)> {
        match self {
            Column::Str(d) => {
                let mut counts: Vec<usize> = vec![0; d.cardinality() + 1];
                kernels::count_codes_part(d, 0, sel, &mut counts);
                let mut pairs: Vec<(String, usize)> = counts
                    .into_iter()
                    .take(d.cardinality())
                    .enumerate()
                    .filter(|&(_, n)| n > 0)
                    .map(|(code, n)| (d.dictionary()[code].clone(), n))
                    .collect();
                pairs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
                pairs
            }
            Column::Bool(v) => {
                let mut t = 0usize;
                let mut f = 0usize;
                sel.for_each_one_in(0, v.len(), |idx| {
                    if v.validity().get(idx) {
                        if v.values()[idx] {
                            t += 1;
                        } else {
                            f += 1;
                        }
                    }
                });
                let mut pairs = Vec::new();
                if t > 0 {
                    pairs.push(("true".to_string(), t));
                }
                if f > 0 {
                    pairs.push(("false".to_string(), f));
                }
                pairs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
                pairs
            }
            _ => Vec::new(),
        }
    }

    /// The raw per-category counts of this segment column over the rows of
    /// `sel` (a **global** selection; `offset` is the segment's starting
    /// row): one `(value, count)` pair per distinct value in first-appearance
    /// (dictionary) order, *including zero counts*. This is the per-segment
    /// precursor of [`crate::ColumnView::category_counts`]; per-segment
    /// vectors fold in row order with [`crate::merge_category_counts`] into
    /// exactly the whole-column vector. Numeric columns return an empty
    /// vector.
    pub fn category_counts(&self, sel: &Bitmap, offset: usize) -> Vec<(String, usize)> {
        match self {
            Column::Str(d) => {
                // The extra trailing slot absorbs NULL lanes (see
                // `count_codes_part`); only the real codes are reported.
                let mut counts: Vec<usize> = vec![0; d.cardinality() + 1];
                kernels::count_codes_part(d, offset, sel, &mut counts);
                d.dictionary()
                    .iter()
                    .zip(counts)
                    .map(|(value, n)| (value.clone(), n))
                    .collect()
            }
            Column::Bool(v) => {
                let mut t = 0usize;
                let mut f = 0usize;
                sel.for_each_one_in(offset, offset + v.len(), |idx| match v.get(idx - offset) {
                    Some(true) => t += 1,
                    Some(false) => f += 1,
                    None => {}
                });
                vec![("true".to_string(), t), ("false".to_string(), f)]
            }
            _ => Vec::new(),
        }
    }

    /// Minimum and maximum of the non-NULL numeric values selected by `sel`.
    pub fn numeric_min_max(&self, sel: &Bitmap) -> Option<(f64, f64)> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut seen = false;
        match self {
            Column::Int(v) => sel.for_each_one_in(0, v.len(), |idx| {
                if v.validity().get(idx) {
                    let x = v.values()[idx] as f64;
                    min = min.min(x);
                    max = max.max(x);
                    seen = true;
                }
            }),
            Column::Float(v) => sel.for_each_one_in(0, v.len(), |idx| {
                if v.validity().get(idx) {
                    let x = v.values()[idx];
                    min = min.min(x);
                    max = max.max(x);
                    seen = true;
                }
            }),
            _ => return None,
        }
        if seen {
            Some((min, max))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(values: &[Option<i64>]) -> Column {
        Column::Int(values.to_vec().into())
    }

    #[test]
    fn primitive_column_round_trips_options() {
        let p: PrimitiveColumn<i64> = vec![Some(1), None, Some(3)].into();
        assert_eq!(p.len(), 3);
        assert_eq!(p.get(0), Some(1));
        assert_eq!(p.get(1), None);
        assert_eq!(p.get(2), Some(3));
        assert_eq!(p.null_count(), 1);
        assert_eq!(p.values(), &[1, 0, 3]);
        assert!(p.validity().get(0) && !p.validity().get(1));
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![Some(1), None, Some(3)]);
    }

    #[test]
    fn primitive_column_slice_keeps_validity_alignment() {
        let values: Vec<Option<i64>> = (0..200)
            .map(|i| if i % 7 == 0 { None } else { Some(i) })
            .collect();
        let p: PrimitiveColumn<i64> = values.clone().into();
        for (start, end) in [
            (0usize, 200usize),
            (3, 130),
            (64, 128),
            (65, 67),
            (199, 199),
        ] {
            let s = p.slice(start, end);
            assert_eq!(s.len(), end - start);
            for (i, want) in values[start..end].iter().enumerate() {
                assert_eq!(s.get(i), *want, "slice {start}..{end} row {i}");
            }
        }
    }

    #[test]
    fn dict_column_interning() {
        let mut d = DictColumn::new();
        d.push(Some("a"));
        d.push(Some("b"));
        d.push(Some("a"));
        d.push(None);
        assert_eq!(d.len(), 4);
        assert_eq!(d.cardinality(), 2);
        assert_eq!(d.get(0), Some("a"));
        assert_eq!(d.get(2), Some("a"));
        assert_eq!(d.get(3), None);
        assert_eq!(d.code(0), d.code(2));
        assert_eq!(d.code_of("b"), Some(1));
        assert_eq!(d.code_of("zzz"), None);
        assert_eq!(d.dictionary(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn push_and_value_round_trip() {
        let mut col = Column::new_empty(DataType::Int);
        col.push(&Value::Int(1)).unwrap();
        col.push(&Value::Null).unwrap();
        assert_eq!(col.value(0), Value::Int(1));
        assert_eq!(col.value(1), Value::Null);
        assert!(col.is_null(1));
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.len(), 2);

        let mut s = Column::new_empty(DataType::Str);
        s.push(&Value::Str("x".into())).unwrap();
        assert_eq!(s.value(0), Value::Str("x".into()));
        assert!(s.as_dict().is_some());

        // Int into Float column is widened.
        let mut f = Column::new_empty(DataType::Float);
        f.push(&Value::Int(2)).unwrap();
        assert_eq!(f.value(0), Value::Float(2.0));
    }

    #[test]
    fn push_type_mismatch_errors() {
        let mut col = Column::new_empty(DataType::Int);
        let err = col.push(&Value::Str("x".into())).unwrap_err();
        assert!(matches!(err, ColumnarError::TypeMismatch { .. }));
    }

    #[test]
    fn try_value_bounds() {
        let col = int_col(&[Some(1)]);
        assert!(col.try_value(0).is_ok());
        assert!(matches!(
            col.try_value(5),
            Err(ColumnarError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn numeric_scan_kernels() {
        let col = int_col(&[Some(10), Some(20), None, Some(30), Some(40)]);
        let all = Bitmap::new_full(5);
        assert_eq!(col.numeric_values_where(&all), vec![10.0, 20.0, 30.0, 40.0]);
        let sel = Bitmap::from_indices(5, [0, 2, 3]);
        assert_eq!(col.numeric_values_where(&sel), vec![10.0, 30.0]);
        let hit = col.select_range(&all, 15.0, 35.0);
        assert_eq!(hit.to_indices(), vec![1, 3]);
        assert_eq!(col.numeric_min_max(&all), Some((10.0, 40.0)));
        assert_eq!(col.numeric_min_max(&Bitmap::new_empty(5)), None);
    }

    #[test]
    fn select_in_on_strings_bools_and_ints() {
        let mut d = DictColumn::new();
        for s in ["bsc", "msc", "bsc", "phd"] {
            d.push(Some(s));
        }
        let col = Column::Str(d);
        let all = Bitmap::new_full(4);
        let hit = col.select_in(&all, &["bsc".to_string(), "phd".to_string()]);
        assert_eq!(hit.to_indices(), vec![0, 2, 3]);
        let none = col.select_in(&all, &["unknown".to_string()]);
        assert!(none.is_all_clear());

        let b = Column::Bool(vec![Some(true), Some(false), None, Some(true)].into());
        let allb = Bitmap::new_full(4);
        let hit = b.select_in(&allb, &["true".to_string()]);
        assert_eq!(hit.to_indices(), vec![0, 3]);

        let i = int_col(&[Some(1), Some(2), Some(3)]);
        let alli = Bitmap::new_full(3);
        let hit = i.select_in(&alli, &["2".to_string()]);
        assert_eq!(hit.to_indices(), vec![1]);
    }

    #[test]
    fn categories_by_frequency_orders_desc() {
        let mut d = DictColumn::new();
        for s in ["a", "b", "b", "c", "b", "a"] {
            d.push(Some(s));
        }
        let col = Column::Str(d);
        let all = Bitmap::new_full(col.len());
        let freq = col.categories_by_frequency(&all);
        assert_eq!(freq[0], ("b".to_string(), 3));
        assert_eq!(freq[1], ("a".to_string(), 2));
        assert_eq!(freq[2], ("c".to_string(), 1));
        // numeric columns: empty
        assert!(int_col(&[Some(1)])
            .categories_by_frequency(&Bitmap::new_full(1))
            .is_empty());
    }

    #[test]
    fn select_range_ignores_nan_values() {
        // NaN never satisfies an inclusive range, whatever the bounds.
        let col = Column::Float(vec![Some(1.0), Some(f64::NAN), Some(2.0), None, Some(3.0)].into());
        let all = Bitmap::new_full(5);
        let hit = col.select_range(&all, f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(hit.to_indices(), vec![0, 2, 4]);
        assert_eq!(col.select_range(&all, 1.0, 2.0).to_indices(), vec![0, 2]);
        // NaN bounds match nothing (every comparison is false).
        assert!(col.select_range(&all, f64::NAN, 10.0).is_all_clear());
        assert!(col.select_range(&all, 0.0, f64::NAN).is_all_clear());
        assert!(col.select_range(&all, f64::NAN, f64::NAN).is_all_clear());
    }

    #[test]
    fn select_range_with_inverted_bounds_selects_nothing() {
        // (lo, hi) with lo > hi is an empty interval under the inclusive
        // semantics — pinned so the per-segment kernels keep it.
        let col = int_col(&[Some(1), Some(2), Some(3)]);
        let all = Bitmap::new_full(3);
        assert!(col.select_range(&all, 3.0, 1.0).is_all_clear());
        // Degenerate single-point interval still matches.
        assert_eq!(col.select_range(&all, 2.0, 2.0).to_indices(), vec![1]);
        // select_ranges agrees per region.
        let regions = col.select_ranges(&all, &[(3.0, 1.0), (2.0, 2.0)]);
        assert!(regions[0].is_all_clear());
        assert_eq!(regions[1].to_indices(), vec![1]);
    }

    #[test]
    fn select_range_on_restricted_selection() {
        let col = Column::Float(vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0)].into());
        let sel = Bitmap::from_indices(4, [1, 2]);
        let hit = col.select_range(&sel, 0.0, 10.0);
        assert_eq!(hit.to_indices(), vec![1, 2]);
    }

    #[test]
    fn numeric_select_in_groups_is_single_pass_and_matches_per_group_select_in() {
        // The satellite fix: numeric group partitioning used to run one
        // select_in scan per group; the single-pass kernel must keep the
        // same results for disjoint groups.
        let col = int_col(&[Some(1), Some(2), Some(3), None, Some(4), Some(2)]);
        let all = Bitmap::new_full(6);
        let groups = vec![
            vec!["1".to_string(), "4".to_string()],
            vec!["2".to_string()],
            vec!["007".to_string()], // never matches: round-trip rendering
        ];
        let got = col.select_in_groups(&all, &groups);
        for (g, group) in groups.iter().enumerate() {
            assert_eq!(got[g], col.select_in(&all, group), "group {g}");
        }
        assert_eq!(got[0].to_indices(), vec![0, 4]);
        assert_eq!(got[1].to_indices(), vec![1, 5]);
        assert!(got[2].is_all_clear());

        // Floats match on rendered values, same contract.
        let f = Column::Float(vec![Some(1.5), Some(2.5), None, Some(1.5)].into());
        let allf = Bitmap::new_full(4);
        let fg = vec![vec!["1.5".to_string()], vec!["2.5".to_string()]];
        let got = f.select_in_groups(&allf, &fg);
        assert_eq!(got[0].to_indices(), vec![0, 3]);
        assert_eq!(got[1].to_indices(), vec![1]);
    }
}
