//! Typed columns with null masks and dictionary encoding for strings.

use crate::bitmap::Bitmap;
use crate::error::{ColumnarError, Result};
use crate::value::{DataType, Value};
use std::collections::HashMap;

/// Sentinel code used for NULL entries in dictionary-encoded columns.
pub const NULL_CODE: u32 = u32::MAX;

/// A dictionary-encoded categorical column.
///
/// Values are stored as `u32` codes into `dict`; NULLs are stored as
/// [`NULL_CODE`]. The dictionary preserves first-appearance order, which the
/// query layer uses for the "order in which the user gives them" cutting
/// heuristic of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DictColumn {
    dict: Vec<String>,
    codes: Vec<u32>,
    index: HashMap<String, u32>,
}

impl DictColumn {
    /// Create an empty dictionary column.
    pub fn new() -> Self {
        DictColumn {
            dict: Vec::new(),
            codes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Append a value, interning it in the dictionary.
    pub fn push(&mut self, value: Option<&str>) {
        match value {
            None => self.codes.push(NULL_CODE),
            Some(s) => {
                let code = self.intern(s);
                self.codes.push(code);
            }
        }
    }

    /// Intern a string, returning its code (without appending a row).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = self.dict.len() as u32;
        self.dict.push(s.to_string());
        self.index.insert(s.to_string(), code);
        code
    }

    /// The code stored at `row` ([`NULL_CODE`] for NULL).
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// The string at `row`, or `None` for NULL.
    pub fn get(&self, row: usize) -> Option<&str> {
        let c = self.codes[row];
        if c == NULL_CODE {
            None
        } else {
            Some(self.dict[c as usize].as_str())
        }
    }

    /// Look up the code of a string, if it is present in the dictionary.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The distinct values in first-appearance order.
    pub fn dictionary(&self) -> &[String] {
        &self.dict
    }

    /// The raw code vector.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The number of distinct non-NULL values.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }
}

impl Default for DictColumn {
    fn default() -> Self {
        Self::new()
    }
}

/// A typed column of values with NULL support.
///
/// Numeric and boolean columns store `Option<T>` directly; string columns are
/// dictionary encoded (see [`DictColumn`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integer column.
    Int(Vec<Option<i64>>),
    /// 64-bit float column.
    Float(Vec<Option<f64>>),
    /// Dictionary-encoded string column.
    Str(DictColumn),
    /// Boolean column.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn new_empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(DictColumn::new()),
            DataType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// The data type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(d) => d.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a dynamically-typed value.
    ///
    /// Returns a type-mismatch error if the value does not match the column
    /// type (NULL is accepted by every column).
    pub fn push(&mut self, value: &Value) -> Result<()> {
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(Some(*x)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(x)) => v.push(Some(*x)),
            (Column::Float(v), Value::Int(x)) => v.push(Some(*x as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Str(d), Value::Str(s)) => d.push(Some(s)),
            (Column::Str(d), Value::Null) => d.push(None),
            (Column::Bool(v), Value::Bool(b)) => v.push(Some(*b)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (col, value) => {
                return Err(ColumnarError::TypeMismatch {
                    expected: col.data_type().name().to_string(),
                    found: value
                        .data_type()
                        .map(|t| t.name().to_string())
                        .unwrap_or_else(|| "null".to_string()),
                })
            }
        }
        Ok(())
    }

    /// The value at `row` as a dynamically-typed [`Value`].
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => v[row].map(Value::Int).unwrap_or(Value::Null),
            Column::Float(v) => v[row].map(Value::Float).unwrap_or(Value::Null),
            Column::Str(d) => d
                .get(row)
                .map(|s| Value::Str(s.to_string()))
                .unwrap_or(Value::Null),
            Column::Bool(v) => v[row].map(Value::Bool).unwrap_or(Value::Null),
        }
    }

    /// Checked version of [`Column::value`].
    pub fn try_value(&self, row: usize) -> Result<Value> {
        if row >= self.len() {
            return Err(ColumnarError::RowOutOfBounds {
                row,
                len: self.len(),
            });
        }
        Ok(self.value(row))
    }

    /// True if the value at `row` is NULL.
    pub fn is_null(&self, row: usize) -> bool {
        match self {
            Column::Int(v) => v[row].is_none(),
            Column::Float(v) => v[row].is_none(),
            Column::Str(d) => d.get(row).is_none(),
            Column::Bool(v) => v[row].is_none(),
        }
    }

    /// Number of NULL entries.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Str(d) => d.codes().iter().filter(|&&c| c == NULL_CODE).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Numeric view of the value at `row` (`None` for NULL or non-numeric).
    pub fn numeric(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int(v) => v[row].map(|x| x as f64),
            Column::Float(v) => v[row],
            _ => None,
        }
    }

    /// Access the dictionary column if this is a string column.
    pub fn as_dict(&self) -> Option<&DictColumn> {
        match self {
            Column::Str(d) => Some(d),
            _ => None,
        }
    }

    /// Collect the non-NULL numeric values for the rows selected by `sel`.
    ///
    /// Non-numeric columns return an empty vector. This is the main scan kernel
    /// the `CUT` primitive relies on.
    pub fn numeric_values_where(&self, sel: &Bitmap) -> Vec<f64> {
        let mut out = Vec::with_capacity(sel.count().min(self.len()));
        match self {
            Column::Int(v) => sel.for_each_one(|idx| {
                if let Some(Some(x)) = v.get(idx) {
                    out.push(*x as f64);
                }
            }),
            Column::Float(v) => sel.for_each_one(|idx| {
                if let Some(Some(x)) = v.get(idx) {
                    out.push(*x);
                }
            }),
            _ => {}
        }
        out
    }

    /// Select the rows whose numeric value lies in `[lo, hi]` (inclusive),
    /// restricted to `sel`. NULLs never match. Non-numeric columns return an
    /// empty selection.
    ///
    /// Fused kernel: the selection is walked word-by-word (all-zero words are
    /// skipped) and result words are assembled directly.
    pub fn select_range(&self, sel: &Bitmap, lo: f64, hi: f64) -> Bitmap {
        match self {
            Column::Int(v) => sel.filter_ones(|idx| match v.get(idx) {
                Some(Some(x)) => {
                    let x = *x as f64;
                    x >= lo && x <= hi
                }
                _ => false,
            }),
            Column::Float(v) => sel.filter_ones(|idx| match v.get(idx) {
                Some(Some(x)) => *x >= lo && *x <= hi,
                _ => false,
            }),
            _ => Bitmap::new_empty(sel.len()),
        }
    }

    /// Select the rows whose categorical value is in `values`, restricted to
    /// `sel`. For boolean columns the values `"true"` / `"false"` are honoured.
    /// NULLs never match. Numeric columns match on the decimal rendering of the
    /// value, so set predicates degrade gracefully on integers.
    pub fn select_in<S: AsRef<str>>(&self, sel: &Bitmap, values: &[S]) -> Bitmap {
        self.select_in_iter(sel, values.iter().map(S::as_ref))
    }

    /// [`Column::select_in`] over a borrowed value iterator (no value-set
    /// clone required).
    ///
    /// The value set is resolved **once**, before the scan: to dictionary
    /// codes for string columns (membership is then one indexed load per row,
    /// never a string comparison), to native `i64`s for integer columns, and
    /// to rendered-string sets for float columns. The scan itself is the fused
    /// word-by-word filter of [`Bitmap::filter_ones`].
    pub fn select_in_iter<'v, I>(&self, sel: &Bitmap, values: I) -> Bitmap
    where
        I: IntoIterator<Item = &'v str>,
    {
        match self {
            Column::Str(d) => {
                // Resolve the value set to sorted dictionary codes once: the
                // setup cost is O(|values| log |values|) regardless of the
                // dictionary's cardinality, and each row is one binary search
                // over the (typically tiny) code set — never a string compare.
                let mut codes: Vec<u32> = values.into_iter().filter_map(|v| d.code_of(v)).collect();
                if codes.is_empty() {
                    return Bitmap::new_empty(sel.len());
                }
                codes.sort_unstable();
                sel.filter_ones(|idx| {
                    let code = d.code(idx);
                    code != NULL_CODE && codes.binary_search(&code).is_ok()
                })
            }
            Column::Bool(v) => {
                let mut want_true = false;
                let mut want_false = false;
                for s in values {
                    want_true |= s.eq_ignore_ascii_case("true");
                    want_false |= s.eq_ignore_ascii_case("false");
                }
                sel.filter_ones(|idx| match v.get(idx) {
                    Some(Some(true)) => want_true,
                    Some(Some(false)) => want_false,
                    _ => false,
                })
            }
            Column::Int(v) => {
                // Parse the value set once; the round-trip check keeps the
                // semantics of decimal-rendering equality (e.g. "007" or "+7"
                // still never match the value 7).
                let wanted: Vec<i64> = values
                    .into_iter()
                    .filter_map(|s| s.parse::<i64>().ok().filter(|x| x.to_string() == s))
                    .collect();
                if wanted.is_empty() {
                    return Bitmap::new_empty(sel.len());
                }
                sel.filter_ones(|idx| match v.get(idx) {
                    Some(Some(x)) => wanted.contains(x),
                    _ => false,
                })
            }
            Column::Float(v) => {
                let wanted: std::collections::HashSet<&str> = values.into_iter().collect();
                if wanted.is_empty() {
                    return Bitmap::new_empty(sel.len());
                }
                sel.filter_ones(|idx| match v.get(idx) {
                    Some(Some(x)) => wanted.contains(x.to_string().as_str()),
                    _ => false,
                })
            }
        }
    }

    /// Partition the selected rows into one selection per numeric range, in a
    /// **single pass** over the column (instead of one
    /// [`Column::select_range`] scan per region).
    ///
    /// `bounds` are inclusive `[lo, hi]` intervals and must be pairwise
    /// disjoint (each row is assigned to the first interval containing its
    /// value — for disjoint intervals, the only one). NULLs fall into no
    /// region; non-numeric columns return all-empty selections.
    pub fn select_ranges(&self, sel: &Bitmap, bounds: &[(f64, f64)]) -> Vec<Bitmap> {
        let mut out: Vec<Bitmap> = bounds
            .iter()
            .map(|_| Bitmap::new_empty(sel.len()))
            .collect();
        let mut assign = |idx: usize, x: f64| {
            for (region, &(lo, hi)) in out.iter_mut().zip(bounds) {
                if x >= lo && x <= hi {
                    region.set(idx);
                    break;
                }
            }
        };
        match self {
            Column::Int(v) => sel.for_each_one(|idx| {
                if let Some(Some(x)) = v.get(idx) {
                    assign(idx, *x as f64);
                }
            }),
            Column::Float(v) => sel.for_each_one(|idx| {
                if let Some(Some(x)) = v.get(idx) {
                    assign(idx, *x);
                }
            }),
            _ => {}
        }
        out
    }

    /// Partition the selected rows into one selection per value group, in a
    /// **single pass** over the column (instead of one [`Column::select_in`]
    /// scan per group).
    ///
    /// Groups must be pairwise disjoint value sets. String columns resolve
    /// every group to dictionary codes once and then do one indexed lookup
    /// per row; boolean columns honour `"true"` / `"false"`. Numeric columns
    /// fall back to one [`Column::select_in`] pass per group (set predicates
    /// on numeric columns are a degraded edge case, not a hot path).
    pub fn select_in_groups(&self, sel: &Bitmap, groups: &[Vec<String>]) -> Vec<Bitmap> {
        match self {
            Column::Str(d) => {
                // code → group index (usize::MAX = no group), resolved once.
                const NO_GROUP: usize = usize::MAX;
                let mut group_of = vec![NO_GROUP; d.cardinality()];
                for (g, group) in groups.iter().enumerate() {
                    for value in group {
                        if let Some(code) = d.code_of(value) {
                            group_of[code as usize] = g;
                        }
                    }
                }
                let mut out: Vec<Bitmap> = groups
                    .iter()
                    .map(|_| Bitmap::new_empty(sel.len()))
                    .collect();
                sel.for_each_one(|idx| {
                    let code = d.code(idx);
                    if code != NULL_CODE {
                        let g = group_of[code as usize];
                        if g != NO_GROUP {
                            out[g].set(idx);
                        }
                    }
                });
                out
            }
            Column::Bool(v) => {
                let group_of_bool = |value: bool| {
                    groups.iter().position(|group| {
                        group
                            .iter()
                            .any(|s| s.eq_ignore_ascii_case(if value { "true" } else { "false" }))
                    })
                };
                let true_group = group_of_bool(true);
                let false_group = group_of_bool(false);
                let mut out: Vec<Bitmap> = groups
                    .iter()
                    .map(|_| Bitmap::new_empty(sel.len()))
                    .collect();
                sel.for_each_one(|idx| {
                    let target = match v.get(idx) {
                        Some(Some(true)) => true_group,
                        Some(Some(false)) => false_group,
                        _ => None,
                    };
                    if let Some(g) = target {
                        out[g].set(idx);
                    }
                });
                out
            }
            _ => groups
                .iter()
                .map(|group| self.select_in(sel, group))
                .collect(),
        }
    }

    /// The rows holding a non-NULL value, as a bitmap over the column's rows
    /// (the inverted null mask), assembled a word at a time.
    pub fn non_null_mask(&self) -> Bitmap {
        match self {
            Column::Int(v) => Bitmap::from_fn(v.len(), |idx| v[idx].is_some()),
            Column::Float(v) => Bitmap::from_fn(v.len(), |idx| v[idx].is_some()),
            Column::Str(d) => Bitmap::from_fn(d.len(), |idx| d.code(idx) != NULL_CODE),
            Column::Bool(v) => Bitmap::from_fn(v.len(), |idx| v[idx].is_some()),
        }
    }

    /// The distinct categorical values of the rows selected by `sel`, ordered
    /// by decreasing frequency (ties broken by first appearance).
    ///
    /// Numeric columns return an empty vector.
    pub fn categories_by_frequency(&self, sel: &Bitmap) -> Vec<(String, usize)> {
        match self {
            Column::Str(d) => {
                let mut counts: Vec<usize> = vec![0; d.cardinality()];
                sel.for_each_one(|idx| {
                    let c = d.code(idx);
                    if c != NULL_CODE {
                        counts[c as usize] += 1;
                    }
                });
                let mut pairs: Vec<(String, usize)> = counts
                    .into_iter()
                    .enumerate()
                    .filter(|&(_, n)| n > 0)
                    .map(|(code, n)| (d.dictionary()[code].clone(), n))
                    .collect();
                pairs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
                pairs
            }
            Column::Bool(v) => {
                let mut t = 0usize;
                let mut f = 0usize;
                sel.for_each_one(|idx| match v.get(idx) {
                    Some(Some(true)) => t += 1,
                    Some(Some(false)) => f += 1,
                    _ => {}
                });
                let mut pairs = Vec::new();
                if t > 0 {
                    pairs.push(("true".to_string(), t));
                }
                if f > 0 {
                    pairs.push(("false".to_string(), f));
                }
                pairs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
                pairs
            }
            _ => Vec::new(),
        }
    }

    /// Minimum and maximum of the non-NULL numeric values selected by `sel`.
    pub fn numeric_min_max(&self, sel: &Bitmap) -> Option<(f64, f64)> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut seen = false;
        match self {
            Column::Int(v) => sel.for_each_one(|idx| {
                if let Some(Some(x)) = v.get(idx) {
                    let x = *x as f64;
                    min = min.min(x);
                    max = max.max(x);
                    seen = true;
                }
            }),
            Column::Float(v) => sel.for_each_one(|idx| {
                if let Some(Some(x)) = v.get(idx) {
                    min = min.min(*x);
                    max = max.max(*x);
                    seen = true;
                }
            }),
            _ => return None,
        }
        if seen {
            Some((min, max))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(values: &[Option<i64>]) -> Column {
        Column::Int(values.to_vec())
    }

    #[test]
    fn dict_column_interning() {
        let mut d = DictColumn::new();
        d.push(Some("a"));
        d.push(Some("b"));
        d.push(Some("a"));
        d.push(None);
        assert_eq!(d.len(), 4);
        assert_eq!(d.cardinality(), 2);
        assert_eq!(d.get(0), Some("a"));
        assert_eq!(d.get(2), Some("a"));
        assert_eq!(d.get(3), None);
        assert_eq!(d.code(0), d.code(2));
        assert_eq!(d.code_of("b"), Some(1));
        assert_eq!(d.code_of("zzz"), None);
        assert_eq!(d.dictionary(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn push_and_value_round_trip() {
        let mut col = Column::new_empty(DataType::Int);
        col.push(&Value::Int(1)).unwrap();
        col.push(&Value::Null).unwrap();
        assert_eq!(col.value(0), Value::Int(1));
        assert_eq!(col.value(1), Value::Null);
        assert!(col.is_null(1));
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.len(), 2);

        let mut s = Column::new_empty(DataType::Str);
        s.push(&Value::Str("x".into())).unwrap();
        assert_eq!(s.value(0), Value::Str("x".into()));
        assert!(s.as_dict().is_some());

        // Int into Float column is widened.
        let mut f = Column::new_empty(DataType::Float);
        f.push(&Value::Int(2)).unwrap();
        assert_eq!(f.value(0), Value::Float(2.0));
    }

    #[test]
    fn push_type_mismatch_errors() {
        let mut col = Column::new_empty(DataType::Int);
        let err = col.push(&Value::Str("x".into())).unwrap_err();
        assert!(matches!(err, ColumnarError::TypeMismatch { .. }));
    }

    #[test]
    fn try_value_bounds() {
        let col = int_col(&[Some(1)]);
        assert!(col.try_value(0).is_ok());
        assert!(matches!(
            col.try_value(5),
            Err(ColumnarError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn numeric_scan_kernels() {
        let col = int_col(&[Some(10), Some(20), None, Some(30), Some(40)]);
        let all = Bitmap::new_full(5);
        assert_eq!(col.numeric_values_where(&all), vec![10.0, 20.0, 30.0, 40.0]);
        let sel = Bitmap::from_indices(5, [0, 2, 3]);
        assert_eq!(col.numeric_values_where(&sel), vec![10.0, 30.0]);
        let hit = col.select_range(&all, 15.0, 35.0);
        assert_eq!(hit.to_indices(), vec![1, 3]);
        assert_eq!(col.numeric_min_max(&all), Some((10.0, 40.0)));
        assert_eq!(col.numeric_min_max(&Bitmap::new_empty(5)), None);
    }

    #[test]
    fn select_in_on_strings_bools_and_ints() {
        let mut d = DictColumn::new();
        for s in ["bsc", "msc", "bsc", "phd"] {
            d.push(Some(s));
        }
        let col = Column::Str(d);
        let all = Bitmap::new_full(4);
        let hit = col.select_in(&all, &["bsc".to_string(), "phd".to_string()]);
        assert_eq!(hit.to_indices(), vec![0, 2, 3]);
        let none = col.select_in(&all, &["unknown".to_string()]);
        assert!(none.is_all_clear());

        let b = Column::Bool(vec![Some(true), Some(false), None, Some(true)]);
        let allb = Bitmap::new_full(4);
        let hit = b.select_in(&allb, &["true".to_string()]);
        assert_eq!(hit.to_indices(), vec![0, 3]);

        let i = int_col(&[Some(1), Some(2), Some(3)]);
        let alli = Bitmap::new_full(3);
        let hit = i.select_in(&alli, &["2".to_string()]);
        assert_eq!(hit.to_indices(), vec![1]);
    }

    #[test]
    fn categories_by_frequency_orders_desc() {
        let mut d = DictColumn::new();
        for s in ["a", "b", "b", "c", "b", "a"] {
            d.push(Some(s));
        }
        let col = Column::Str(d);
        let all = Bitmap::new_full(col.len());
        let freq = col.categories_by_frequency(&all);
        assert_eq!(freq[0], ("b".to_string(), 3));
        assert_eq!(freq[1], ("a".to_string(), 2));
        assert_eq!(freq[2], ("c".to_string(), 1));
        // numeric columns: empty
        assert!(int_col(&[Some(1)])
            .categories_by_frequency(&Bitmap::new_full(1))
            .is_empty());
    }

    #[test]
    fn select_range_ignores_nan_values() {
        // NaN never satisfies an inclusive range, whatever the bounds.
        let col = Column::Float(vec![Some(1.0), Some(f64::NAN), Some(2.0), None, Some(3.0)]);
        let all = Bitmap::new_full(5);
        let hit = col.select_range(&all, f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(hit.to_indices(), vec![0, 2, 4]);
        assert_eq!(col.select_range(&all, 1.0, 2.0).to_indices(), vec![0, 2]);
        // NaN bounds match nothing (every comparison is false).
        assert!(col.select_range(&all, f64::NAN, 10.0).is_all_clear());
        assert!(col.select_range(&all, 0.0, f64::NAN).is_all_clear());
        assert!(col.select_range(&all, f64::NAN, f64::NAN).is_all_clear());
    }

    #[test]
    fn select_range_with_inverted_bounds_selects_nothing() {
        // (lo, hi) with lo > hi is an empty interval under the inclusive
        // semantics — pinned so the per-segment kernels keep it.
        let col = int_col(&[Some(1), Some(2), Some(3)]);
        let all = Bitmap::new_full(3);
        assert!(col.select_range(&all, 3.0, 1.0).is_all_clear());
        // Degenerate single-point interval still matches.
        assert_eq!(col.select_range(&all, 2.0, 2.0).to_indices(), vec![1]);
        // select_ranges agrees per region.
        let regions = col.select_ranges(&all, &[(3.0, 1.0), (2.0, 2.0)]);
        assert!(regions[0].is_all_clear());
        assert_eq!(regions[1].to_indices(), vec![1]);
    }

    #[test]
    fn select_range_on_restricted_selection() {
        let col = Column::Float(vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0)]);
        let sel = Bitmap::from_indices(4, [1, 2]);
        let hit = col.select_range(&sel, 0.0, 10.0);
        assert_eq!(hit.to_indices(), vec![1, 2]);
    }
}
