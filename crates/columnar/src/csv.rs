//! Minimal CSV ingestion and export.
//!
//! The reader supports a header line, quoted fields (RFC-4180 style double
//! quotes with `""` escapes), type inference over a configurable prefix of the
//! file, and explicit schemas. It exists so the examples can load real files;
//! the generators in `atlas-datagen` construct tables directly.

use crate::builder::TableBuilder;
use crate::error::{ColumnarError, Result};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first line is a header (default `true`).
    pub has_header: bool,
    /// How many data lines to examine for type inference (default 256).
    pub inference_rows: usize,
    /// Strings treated as NULL (default: empty string, `NULL`, `null`, `NA`).
    pub null_markers: Vec<String>,
    /// Rows per sealed storage segment while streaming
    /// (default: [`crate::segment::default_segment_rows`]).
    pub segment_rows: Option<usize>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            inference_rows: 256,
            null_markers: vec![
                String::new(),
                "NULL".to_string(),
                "null".to_string(),
                "NA".to_string(),
            ],
            segment_rows: None,
        }
    }
}

/// Split one CSV line into fields, honouring double quotes.
fn split_line(line: &str, delimiter: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                current.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut current));
        } else {
            current.push(c);
        }
    }
    fields.push(current);
    fields
}

fn parse_field(raw: &str, dtype: DataType, opts: &CsvOptions) -> Option<Value> {
    let trimmed = raw.trim();
    if opts.null_markers.iter().any(|m| m == trimmed) {
        return Some(Value::Null);
    }
    match dtype {
        DataType::Int => trimmed.parse::<i64>().ok().map(Value::Int),
        DataType::Float => trimmed.parse::<f64>().ok().map(Value::Float),
        DataType::Bool => match trimmed.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" | "yes" => Some(Value::Bool(true)),
            "false" | "f" | "0" | "no" => Some(Value::Bool(false)),
            _ => None,
        },
        DataType::Str => Some(Value::Str(trimmed.to_string())),
    }
}

fn infer_type(samples: &[&str], opts: &CsvOptions) -> DataType {
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    let mut any_value = false;
    for raw in samples {
        let trimmed = raw.trim();
        if opts.null_markers.iter().any(|m| m == trimmed) {
            continue;
        }
        any_value = true;
        if trimmed.parse::<i64>().is_err() {
            all_int = false;
        }
        if trimmed.parse::<f64>().is_err() {
            all_float = false;
        }
        let lower = trimmed.to_ascii_lowercase();
        if !matches!(lower.as_str(), "true" | "false" | "t" | "f" | "yes" | "no") {
            all_bool = false;
        }
    }
    if !any_value {
        return DataType::Str;
    }
    if all_int {
        DataType::Int
    } else if all_float {
        DataType::Float
    } else if all_bool {
        DataType::Bool
    } else {
        DataType::Str
    }
}

/// Read a table from any reader producing CSV text, **streaming**: rows flow
/// straight into a segment-sealing [`TableBuilder`], so the parser's working
/// state — raw text buffered, rows pending in the open segment — is bounded
/// by one segment of rows (plus the type-inference prefix when no schema is
/// supplied), never by the file size. The decoded table itself still grows
/// with the data, of course; what streaming removes is the old
/// whole-file-in-memory line buffer alongside it.
pub fn read_csv<R: Read>(
    name: &str,
    reader: R,
    schema: Option<Schema>,
    opts: &CsvOptions,
) -> Result<Table> {
    let mut lines = BufReader::new(reader).lines();
    // Pull the next non-empty line (whitespace-only lines are skipped, as the
    // buffered reader always did).
    let mut next_line = move || -> Result<Option<String>> {
        for line in lines.by_ref() {
            let line = line?;
            if !line.trim().is_empty() {
                return Ok(Some(line));
            }
        }
        Ok(None)
    };

    let first = next_line()?.ok_or_else(|| ColumnarError::Csv {
        line: 0,
        message: "empty input".to_string(),
    })?;
    // Header handling: a headerless file's first line is data and must be
    // processed again below.
    let (header, mut pending): (Vec<String>, Vec<String>) = if opts.has_header {
        (
            split_line(&first, opts.delimiter)
                .into_iter()
                .map(|h| h.trim().to_string())
                .collect(),
            Vec::new(),
        )
    } else {
        let ncols = split_line(&first, opts.delimiter).len();
        ((0..ncols).map(|i| format!("col{i}")).collect(), vec![first])
    };

    let schema = match schema {
        Some(s) => {
            if s.len() != header.len() {
                return Err(ColumnarError::LengthMismatch {
                    expected: s.len(),
                    found: header.len(),
                });
            }
            s
        }
        None => {
            // Buffer only the inference prefix, infer types, then replay it.
            while pending.len() < opts.inference_rows {
                match next_line()? {
                    Some(line) => pending.push(line),
                    None => break,
                }
            }
            let mut columns_samples: Vec<Vec<&str>> = vec![Vec::new(); header.len()];
            let split_pending: Vec<Vec<String>> = pending
                .iter()
                .map(|line| split_line(line, opts.delimiter))
                .collect();
            for fields in &split_pending {
                for (i, f) in fields.iter().enumerate().take(header.len()) {
                    columns_samples[i].push(f.as_str());
                }
            }
            let fields: Vec<Field> = header
                .iter()
                .zip(columns_samples.iter())
                .map(|(name, samples)| Field::nullable(name.clone(), infer_type(samples, opts)))
                .collect();
            Schema::new(fields)?
        }
    };

    let mut builder = TableBuilder::new(name, schema.clone());
    if let Some(segment_rows) = opts.segment_rows {
        builder = builder.with_segment_rows(segment_rows);
    }
    let mut data_line_no = 0usize; // 0-based index among non-empty data lines
    let mut row = Vec::with_capacity(schema.len());
    let mut push_line = |builder: &mut TableBuilder, line: &str, line_no: usize| -> Result<()> {
        parse_row(line, &schema, opts, line_no, &mut row)?;
        builder.push_row(&row)
    };
    for line in pending.drain(..) {
        push_line(&mut builder, &line, data_line_no)?;
        data_line_no += 1;
    }
    while let Some(line) = next_line()? {
        push_line(&mut builder, &line, data_line_no)?;
        data_line_no += 1;
    }
    builder.build()
}

/// Split and type one data line into `row`, reporting errors with the
/// 1-based physical line number (`line_no` counts non-empty data lines).
fn parse_row(
    line: &str,
    schema: &Schema,
    opts: &CsvOptions,
    line_no: usize,
    row: &mut Vec<Value>,
) -> Result<()> {
    let physical = line_no + if opts.has_header { 2 } else { 1 };
    let fields = split_line(line, opts.delimiter);
    if fields.len() != schema.len() {
        return Err(ColumnarError::Csv {
            line: physical,
            message: format!("expected {} fields, found {}", schema.len(), fields.len()),
        });
    }
    row.clear();
    for (raw, field) in fields.iter().zip(schema.fields().iter()) {
        match parse_field(raw, field.dtype, opts) {
            Some(v) => row.push(v),
            None => {
                return Err(ColumnarError::Csv {
                    line: physical,
                    message: format!(
                        "cannot parse '{raw}' as {} for column {}",
                        field.dtype, field.name
                    ),
                })
            }
        }
    }
    Ok(())
}

/// Read a table from a CSV file on disk.
pub fn read_csv_path<P: AsRef<Path>>(
    name: &str,
    path: P,
    schema: Option<Schema>,
    opts: &CsvOptions,
) -> Result<Table> {
    let file = std::fs::File::open(path)?;
    read_csv(name, file, schema, opts)
}

/// Parse a CSV given as a string (used heavily in tests and examples).
pub fn read_csv_str(
    name: &str,
    text: &str,
    schema: Option<Schema>,
    opts: &CsvOptions,
) -> Result<Table> {
    read_csv(name, text.as_bytes(), schema, opts)
}

/// Write a table as CSV (header + rows) to any writer.
pub fn write_csv<W: Write>(table: &Table, mut writer: W) -> Result<()> {
    let names = table.schema().names();
    writeln!(writer, "{}", names.join(","))?;
    // Walk segment by segment so each cell is a direct indexed load instead
    // of a per-cell segment lookup.
    for segment in table.segments() {
        for local in 0..segment.num_rows() {
            let mut fields = Vec::with_capacity(names.len());
            for col in segment.columns() {
                let s = match col.value(local) {
                    Value::Null => String::new(),
                    Value::Str(s) => {
                        if s.contains(',') || s.contains('"') {
                            format!("\"{}\"", s.replace('"', "\"\""))
                        } else {
                            s
                        }
                    }
                    Value::Int(i) => i.to_string(),
                    Value::Float(f) => f.to_string(),
                    Value::Bool(b) => b.to_string(),
                };
                fields.push(s);
            }
            writeln!(writer, "{}", fields.join(","))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "age,sex,salary,score\n25,M,>50k,1.5\n40,F,<50k,2.5\n33,F,,3.0\n";

    #[test]
    fn split_line_handles_quotes() {
        assert_eq!(split_line("a,b,c", ','), vec!["a", "b", "c"]);
        assert_eq!(split_line("a,\"b,c\",d", ','), vec!["a", "b,c", "d"]);
        assert_eq!(
            split_line("\"say \"\"hi\"\"\",x", ','),
            vec!["say \"hi\"", "x"]
        );
        assert_eq!(split_line("a,,c", ','), vec!["a", "", "c"]);
    }

    #[test]
    fn inference_and_parsing() {
        let t = read_csv_str("survey", SAMPLE, None, &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.schema().field("age").unwrap().dtype, DataType::Int);
        assert_eq!(t.schema().field("sex").unwrap().dtype, DataType::Str);
        assert_eq!(t.schema().field("score").unwrap().dtype, DataType::Float);
        assert_eq!(t.value(0, "age").unwrap(), Value::Int(25));
        assert_eq!(t.value(2, "salary").unwrap(), Value::Null);
    }

    #[test]
    fn explicit_schema_overrides_inference() {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Float),
            Field::new("sex", DataType::Str),
            Field::nullable("salary", DataType::Str),
            Field::new("score", DataType::Float),
        ])
        .unwrap();
        let t = read_csv_str("survey", SAMPLE, Some(schema), &CsvOptions::default()).unwrap();
        assert_eq!(t.schema().field("age").unwrap().dtype, DataType::Float);
        assert_eq!(t.value(0, "age").unwrap(), Value::Float(25.0));
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let bad = "a,b\n1,2\n3\n";
        let err = read_csv_str("t", bad, None, &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, ColumnarError::Csv { line: 3, .. }));
    }

    #[test]
    fn unparseable_field_is_rejected_with_line_number() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
        let bad = "x\n1\nnot-a-number\n";
        let err = read_csv_str("t", bad, Some(schema), &CsvOptions::default()).unwrap_err();
        match err {
            ColumnarError::Csv { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("not-a-number"));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn headerless_input_gets_generated_names() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "1,a\n2,b\n", None, &opts).unwrap();
        assert_eq!(t.schema().names(), vec!["col0", "col1"]);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn bool_inference() {
        let t = read_csv_str(
            "t",
            "flag\ntrue\nfalse\nyes\n",
            None,
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(t.schema().field("flag").unwrap().dtype, DataType::Bool);
        assert_eq!(t.value(2, "flag").unwrap(), Value::Bool(true));
    }

    #[test]
    fn round_trip_write_read() {
        let t = read_csv_str("survey", SAMPLE, None, &CsvOptions::default()).unwrap();
        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let t2 = read_csv_str("survey2", &text, None, &CsvOptions::default()).unwrap();
        assert_eq!(t2.num_rows(), t.num_rows());
        assert_eq!(t2.value(1, "sex").unwrap(), Value::Str("F".into()));
    }

    #[test]
    fn empty_input_is_an_error() {
        let err = read_csv_str("t", "", None, &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, ColumnarError::Csv { .. }));
        // Whitespace-only input is empty too.
        let err = read_csv_str("t", "\n  \n", None, &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, ColumnarError::Csv { line: 0, .. }));
    }

    #[test]
    fn streaming_reader_seals_segments_and_matches_the_one_shot_parse() {
        // 10 data rows with a tiny inference prefix and 3-row segments: the
        // reader must hand rows straight to the segment-sealing builder (its
        // live state never exceeds one segment) and still parse identically.
        let mut text = String::from("id,group\n");
        for i in 0..10 {
            text.push_str(&format!("{i},{}\n", ["a", "b"][i % 2]));
        }
        let opts = CsvOptions {
            inference_rows: 2,
            segment_rows: Some(3),
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", &text, None, &opts).unwrap();
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.num_segments(), 4, "3+3+3+1");
        assert_eq!(t.schema().field("id").unwrap().dtype, DataType::Int);
        let whole = read_csv_str("t", &text, None, &CsvOptions::default()).unwrap();
        for row in 0..10 {
            assert_eq!(t.row(row).unwrap(), whole.row(row).unwrap());
        }
        // Inference still sees rows beyond the first segment? No — only the
        // prefix: a float first appearing after the prefix is a parse error,
        // pinning the bounded-memory contract (nothing past the prefix is
        // buffered for inference).
        let text = String::from("v\n1\n2\n2.5\n");
        let err = read_csv_str("t", &text, None, &opts).unwrap_err();
        assert!(matches!(err, ColumnarError::Csv { line: 4, .. }));
    }
}
