//! Word-parallel partition kernels.
//!
//! The `CUT` hot loop is "partition the selected rows of one column into k
//! disjoint selections" — by numeric range ([`crate::Column::select_ranges`])
//! or by categorical group ([`crate::Column::select_in_groups`]). The kernels
//! here process **64 rows per step** instead of one:
//!
//! * the selection bitmap is walked word-at-a-time (all-zero words are
//!   skipped, boundary words are masked — `for_each_sel_word`);
//! * nullness is driven from the column's validity-mask *words* (one
//!   shift-and-or per 64 rows — [`Bitmap::word_at`]), never from a per-row
//!   `Option`;
//! * a dense 64-row block is classified branchlessly: numeric range checks
//!   compile to lane-wise compares over the raw `i64`/`f64` value slices, and
//!   dictionary codes go through a precomputed code→group table (or, for
//!   sorted dictionaries whose groups are contiguous code ranges, a handful
//!   of lane-wise compares against the range starts);
//! * one output word per region is assembled in a register and written with
//!   the word-level writer [`Bitmap::or_word`] — no per-row `Bitmap::set`.
//!
//! An all-ones selection word (the common case when exploring the whole
//! table) takes the dense path with no per-bit iteration at all; sparse words
//! fall back to a set-bit loop so heavily drilled-down selections don't pay
//! for lanes they never read.
//!
//! Integer range bounds arrive as `f64`s. The scalar semantics are
//! `(x as f64) ∈ [lo, hi]`; because `i64 → f64` conversion is monotone, the
//! matching integers form one contiguous interval, whose exact endpoints
//! `int_range_bounds` finds by binary search (a naive `ceil`/`floor` is
//! wrong beyond 2⁵³, where the conversion rounds). The lane test is then a
//! pure `i64` compare — exact, and vectorisable.
//!
//! ## The scalar reference, `ATLAS_FORCE_SCALAR`
//!
//! Every word-parallel kernel keeps its pre-existing one-row-at-a-time
//! implementation as a *reference*: set `ATLAS_FORCE_SCALAR=1` (or any
//! non-empty value other than `0`) to route all partition kernels through it,
//! or use [`with_kernel_path`] to pin a path for the current thread. Both
//! paths are **bit-identical** by contract — the property tests in
//! `tests/partition_kernels.rs` compare them on adversarial inputs (word
//! boundaries, trailing partial words, NaN/inverted bounds, all-null
//! columns, every segment layout).

use crate::bitmap::Bitmap;
use crate::column::{Column, DictColumn, NULL_CODE};
use crate::value::DataType;
use std::cell::Cell;
use std::sync::OnceLock;

const WORD_BITS: usize = 64;

/// Minimum number of candidate lanes in a word for the branchless 64-lane
/// classification to beat the per-set-bit loop. Below this, a drilled-down
/// selection touches only the lanes it actually selected.
const DENSE_LANES: u32 = 16;

/// Which implementation the partition kernels run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// 64-rows-per-step kernels (the default).
    WordParallel,
    /// The one-row-at-a-time reference implementation.
    Scalar,
}

thread_local! {
    static PATH_OVERRIDE: Cell<Option<KernelPath>> = const { Cell::new(None) };
}

fn env_kernel_path() -> KernelPath {
    static PATH: OnceLock<KernelPath> = OnceLock::new();
    *PATH.get_or_init(|| match std::env::var("ATLAS_FORCE_SCALAR") {
        Ok(v) if !v.is_empty() && v != "0" => KernelPath::Scalar,
        _ => KernelPath::WordParallel,
    })
}

/// The kernel path in effect on this thread: a [`with_kernel_path`] override
/// if one is active, else the process-wide `ATLAS_FORCE_SCALAR` setting
/// (read once).
pub fn active_kernel_path() -> KernelPath {
    PATH_OVERRIDE
        .with(|cell| cell.get())
        .unwrap_or_else(env_kernel_path)
}

/// True when the scalar reference path is in effect on this thread.
pub fn force_scalar() -> bool {
    active_kernel_path() == KernelPath::Scalar
}

/// Run `f` with the partition kernels pinned to `path` on the current thread
/// (restored afterwards, panic-safe). This is how the bit-identity property
/// tests and the `e7_partition_kernels` bench compare both paths inside one
/// process.
pub fn with_kernel_path<R>(path: KernelPath, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<KernelPath>);
    impl Drop for Restore {
        fn drop(&mut self) {
            PATH_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(PATH_OVERRIDE.with(|cell| cell.replace(Some(path))));
    f()
}

/// Which compilation [`range_mask_64`] dispatches to on this CPU — cached
/// once for trace attributes (the per-64-row dispatch itself relies on the
/// detection macro's own cache and is far too hot to instrument).
fn simd_label() -> &'static str {
    static SIMD: OnceLock<&'static str> = OnceLock::new();
    SIMD.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
        "scalar-fold"
    })
}

/// Record one partition-kernel dispatch: bump the always-on per-path counter
/// (surfaced in `/metrics`) and, when tracing is enabled, attach a
/// `kernel.dispatch` event to the current span. Called once per
/// (segment, column) partition call — not per row or per word.
fn observe_dispatch(op: &'static str, path: KernelPath) {
    static COUNTERS: OnceLock<[&'static atlas_obs::Counter; 4]> = OnceLock::new();
    let counters = COUNTERS.get_or_init(|| {
        [
            atlas_obs::counter("kernel.select_ranges.word_parallel"),
            atlas_obs::counter("kernel.select_ranges.scalar"),
            atlas_obs::counter("kernel.select_in_groups.word_parallel"),
            atlas_obs::counter("kernel.select_in_groups.scalar"),
        ]
    });
    let idx = match (op, path) {
        ("select_ranges", KernelPath::WordParallel) => 0,
        ("select_ranges", KernelPath::Scalar) => 1,
        (_, KernelPath::WordParallel) => 2,
        (_, KernelPath::Scalar) => 3,
    };
    counters[idx].add(1);
    if atlas_obs::enabled() {
        let path_label = match path {
            KernelPath::WordParallel => "word-parallel",
            KernelPath::Scalar => "scalar",
        };
        atlas_obs::event(
            "kernel.dispatch",
            &[("op", op), ("path", path_label), ("simd", simd_label())],
        );
    }
}

// ---------------------------------------------------------------------------
// Word-walk plumbing
// ---------------------------------------------------------------------------

/// Walk the words of `sel` that cover the global row range `[offset, end)`,
/// calling `f(word_idx, candidates)` for every word with at least one
/// selected row in range. Out-of-range bits are already masked off.
#[inline(always)]
pub(crate) fn for_each_sel_word(
    sel: &Bitmap,
    offset: usize,
    end: usize,
    mut f: impl FnMut(usize, u64),
) {
    let end = end.min(sel.len());
    if offset >= end {
        return;
    }
    let words = sel.words();
    let first = offset / WORD_BITS;
    let last = (end - 1) / WORD_BITS;
    for (w, &word) in words.iter().enumerate().take(last + 1).skip(first) {
        let mut cand = word;
        if cand == 0 {
            continue;
        }
        let base = w * WORD_BITS;
        if base < offset {
            cand &= !0u64 << (offset - base);
        }
        let rem = end - base;
        if rem < WORD_BITS {
            cand &= (1u64 << rem) - 1;
        }
        if cand != 0 {
            f(w, cand);
        }
    }
}

/// The 64-bit validity window for the block of global rows starting at
/// `base`, for a column whose local row 0 sits at global row `offset`.
/// Lanes before `offset` or past the column's end read as invalid.
#[inline]
fn validity_word(validity: &Bitmap, offset: usize, base: usize) -> u64 {
    if base >= offset {
        validity.word_at(base - offset)
    } else {
        validity.word_at(0) << (offset - base)
    }
}

// ---------------------------------------------------------------------------
// Exact integer bounds for f64 ranges
// ---------------------------------------------------------------------------

/// Smallest `x: i64` with `(x as f64) >= lo`, if any.
fn min_int_matching(lo: f64) -> Option<i64> {
    if lo.is_nan() {
        return None;
    }
    if (i64::MIN as f64) >= lo {
        return Some(i64::MIN);
    }
    if (i64::MAX as f64) < lo {
        return None;
    }
    // Invariant: (l as f64) < lo <= (r as f64). i64→f64 is monotone, so the
    // predicate is monotone and binary search finds the exact boundary.
    let (mut l, mut r) = (i64::MIN, i64::MAX);
    while l + 1 < r {
        let m = ((l as i128 + r as i128) / 2) as i64;
        if (m as f64) >= lo {
            r = m;
        } else {
            l = m;
        }
    }
    Some(r)
}

/// Largest `x: i64` with `(x as f64) <= hi`, if any.
fn max_int_matching(hi: f64) -> Option<i64> {
    if hi.is_nan() {
        return None;
    }
    if (i64::MAX as f64) <= hi {
        return Some(i64::MAX);
    }
    if (i64::MIN as f64) > hi {
        return None;
    }
    let (mut l, mut r) = (i64::MIN, i64::MAX);
    while l + 1 < r {
        let m = ((l as i128 + r as i128) / 2) as i64;
        if (m as f64) <= hi {
            l = m;
        } else {
            r = m;
        }
    }
    Some(l)
}

/// The exact `i64` interval `[a, b]` such that `x ∈ [a, b]` ⇔
/// `(x as f64) ∈ [lo, hi]`, or `None` when no integer matches (NaN or
/// inverted bounds included). Correct for magnitudes beyond 2⁵³, where the
/// conversion rounds and naive `ceil`/`floor` on the bounds is wrong.
pub(crate) fn int_range_bounds(lo: f64, hi: f64) -> Option<(i64, i64)> {
    let a = min_int_matching(lo)?;
    let b = max_int_matching(hi)?;
    (a <= b).then_some((a, b))
}

// ---------------------------------------------------------------------------
// Range partitioning (select_range / select_ranges)
// ---------------------------------------------------------------------------

/// Pre-resolved form of a `select_ranges` bound list for one column type.
pub(crate) enum RangesSpec {
    /// Exact `i64` intervals (empty intervals encoded as `(1, 0)`).
    Int(Vec<(i64, i64)>),
    /// `f64` columns compare against the bounds directly.
    Float,
    /// Non-numeric columns select nothing.
    Inert,
}

/// Resolve `bounds` once per (type, bound-list) — shared across the segments
/// of a [`crate::ColumnView`] walk.
pub(crate) fn resolve_ranges(dtype: DataType, bounds: &[(f64, f64)]) -> RangesSpec {
    match dtype {
        DataType::Int => RangesSpec::Int(
            bounds
                .iter()
                .map(|&(lo, hi)| int_range_bounds(lo, hi).unwrap_or((1, 0)))
                .collect(),
        ),
        DataType::Float => RangesSpec::Float,
        _ => RangesSpec::Inert,
    }
}

/// Partition one segment-local column over its global row range, OR-ing each
/// row's region bit into `out` (global coordinates, one bitmap per bound).
/// Rows are assigned to the **first** bound containing their value.
pub(crate) fn select_ranges_part(
    column: &Column,
    offset: usize,
    sel: &Bitmap,
    bounds: &[(f64, f64)],
    spec: &RangesSpec,
    out: &mut [Bitmap],
) {
    debug_assert_eq!(bounds.len(), out.len());
    let path = active_kernel_path();
    let scalar = path == KernelPath::Scalar;
    observe_dispatch("select_ranges", path);
    match (column, spec) {
        (Column::Int(p), _) if scalar => ranges_scalar(
            p.values(),
            p.validity(),
            offset,
            sel,
            bounds,
            |x| x as f64,
            out,
        ),
        (Column::Float(p), _) if scalar => {
            ranges_scalar(p.values(), p.validity(), offset, sel, bounds, |x| x, out)
        }
        (Column::Int(p), RangesSpec::Int(ibounds)) => {
            ranges_word(p.values(), p.validity(), offset, sel, ibounds, out)
        }
        (Column::Float(p), RangesSpec::Float) => {
            ranges_word(p.values(), p.validity(), offset, sel, bounds, out)
        }
        _ => {}
    }
}

/// The pre-PR reference: per selected row, unwrap nullness, convert to `f64`,
/// linear-scan the bounds, `set` the hit.
fn ranges_scalar<T: Copy>(
    values: &[T],
    validity: &Bitmap,
    offset: usize,
    sel: &Bitmap,
    bounds: &[(f64, f64)],
    to_f64: impl Fn(T) -> f64,
    out: &mut [Bitmap],
) {
    sel.for_each_one_in(offset, offset + values.len(), |idx| {
        let local = idx - offset;
        if !validity.get(local) {
            return;
        }
        let x = to_f64(values[local]);
        for (region, &(lo, hi)) in out.iter_mut().zip(bounds) {
            if x >= lo && x <= hi {
                region.set(idx);
                break;
            }
        }
    });
}

/// The plain lane fold behind [`range_mask_64`], kept as simple as possible
/// so LLVM auto-vectorises the compare+shift+or pattern (a hand-interleaved
/// multi-accumulator version of the same fold measured *slower* — manual
/// unrolling defeats the vectoriser). `inline(always)` so each caller stamps
/// out a copy under its own instruction set.
#[inline(always)]
fn range_mask_64_fold<T: Copy + PartialOrd>(lanes: &[T; WORD_BITS], lo: T, hi: T) -> u64 {
    let mut m = 0u64;
    for (b, &x) in lanes.iter().enumerate() {
        m |= (((x >= lo) & (x <= hi)) as u64) << b;
    }
    m
}

/// The AVX2 compilation of [`range_mask_64_fold`]: identical safe Rust,
/// wider instruction selection. Baseline x86-64 has no 64-bit SIMD compare,
/// so the `i64` lane fold is emulated there; under `avx2` LLVM selects
/// `vpcmpgtq` / `vcmppd` and folds four lanes per instruction — measured ~4x
/// on the integer and float partition kernels. Never inlined into baseline
/// callers (the feature mismatch forbids it), so the dispatch in
/// [`range_mask_64`] stays an outlined call.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn range_mask_64_avx2<T: Copy + PartialOrd>(lanes: &[T; WORD_BITS], lo: T, hi: T) -> u64 {
    range_mask_64_fold(lanes, lo, hi)
}

/// Branchless in-range mask of one full 64-lane block: bit `b` is set iff
/// `lanes[b] ∈ [lo, hi]`. Dispatches to the AVX2 compilation of the fold
/// when the CPU supports it (the detection macro caches, and the result is
/// bit-identical by construction — same source, different codegen).
#[inline(always)]
fn range_mask_64<T: Copy + PartialOrd>(lanes: &[T; WORD_BITS], lo: T, hi: T) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: `range_mask_64_avx2` is ordinary safe Rust whose only
        // precondition is a CPU that executes AVX2 instructions, which the
        // runtime detection above just confirmed.
        return unsafe { range_mask_64_avx2(lanes, lo, hi) };
    }
    range_mask_64_fold(lanes, lo, hi)
}

/// Word-parallel range partition: per selection word, mask validity in one
/// shift-and-or, then either classify all 64 lanes branchlessly (dense) or
/// walk the set bits (sparse). `first-match` semantics are preserved by
/// removing each region's matches from the remaining candidate mask. (A
/// one-pass rank-counting classification of ascending disjoint bounds was
/// tried and measured slower: the indexed accumulate defeats the vectoriser,
/// while one `range_mask_64` pass per region stays fully vectorised.)
fn ranges_word<T: Copy + PartialOrd>(
    values: &[T],
    validity: &Bitmap,
    offset: usize,
    sel: &Bitmap,
    bounds: &[(T, T)],
    out: &mut [Bitmap],
) {
    let end = offset + values.len();
    for_each_sel_word(sel, offset, end, |w, mut cand| {
        let base = w * WORD_BITS;
        cand &= validity_word(validity, offset, base);
        if cand == 0 {
            return;
        }
        let full = base >= offset && base + WORD_BITS <= end;
        if full && cand.count_ones() >= DENSE_LANES {
            let lanes: &[T; WORD_BITS] = values[base - offset..base - offset + WORD_BITS]
                .try_into()
                .expect("full word has exactly WORD_BITS lanes");
            let mut remaining = cand;
            for (region, &(lo, hi)) in out.iter_mut().zip(bounds) {
                if remaining == 0 {
                    break;
                }
                let m = range_mask_64(lanes, lo, hi);
                let take = m & remaining;
                if take != 0 {
                    region.or_word(w, take);
                    remaining &= !m;
                }
            }
        } else {
            let mut bits = cand;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let x = values[base + b - offset];
                for (region, &(lo, hi)) in out.iter_mut().zip(bounds) {
                    if x >= lo && x <= hi {
                        region.set(base + b);
                        break;
                    }
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Group partitioning (select_in_groups)
// ---------------------------------------------------------------------------

/// Pre-resolved form of a `select_in_groups` group list for one column type.
/// String groups resolve per segment (each segment has its own dictionary);
/// the other types resolve once.
pub(crate) enum GroupsSpec {
    /// Resolved per part against each segment dictionary.
    Str,
    /// Which group (if any) `true` / `false` fall into.
    Bool {
        /// Group index selecting `true` rows.
        true_group: Option<usize>,
        /// Group index selecting `false` rows.
        false_group: Option<usize>,
    },
    /// `(value, group)` pairs sorted by value (first group wins duplicates).
    Int(Vec<(i64, u32)>),
    /// `(rendered value, group)` pairs sorted by string.
    Float(Vec<(String, u32)>),
}

/// Resolve `groups` once per (type, group-list) — shared across the segments
/// of a [`crate::ColumnView`] walk.
pub(crate) fn resolve_groups(dtype: DataType, groups: &[Vec<String>]) -> GroupsSpec {
    match dtype {
        DataType::Str => GroupsSpec::Str,
        DataType::Bool => {
            let group_of = |value: &str| {
                groups
                    .iter()
                    .position(|group| group.iter().any(|s| s.eq_ignore_ascii_case(value)))
            };
            GroupsSpec::Bool {
                true_group: group_of("true"),
                false_group: group_of("false"),
            }
        }
        DataType::Int => {
            // Parse each value once with the round-trip check of `select_in`
            // ("007" never matches 7); on duplicate values across groups the
            // first group wins (groups are disjoint by contract).
            let mut map: Vec<(i64, u32)> = Vec::new();
            for (g, group) in groups.iter().enumerate() {
                for s in group {
                    if let Some(x) = s.parse::<i64>().ok().filter(|x| x.to_string() == *s) {
                        map.push((x, g as u32));
                    }
                }
            }
            map.sort_by_key(|&(x, g)| (x, g));
            map.dedup_by_key(|&mut (x, _)| x);
            GroupsSpec::Int(map)
        }
        DataType::Float => {
            let mut map: Vec<(String, u32)> = Vec::new();
            for (g, group) in groups.iter().enumerate() {
                for s in group {
                    map.push((s.clone(), g as u32));
                }
            }
            map.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
            map.dedup_by(|a, b| a.0 == b.0);
            GroupsSpec::Float(map)
        }
    }
}

/// code → group table for one segment dictionary: `groups.len()` means "no
/// group", and the extra trailing slot absorbs `NULL_CODE` lanes (indexed as
/// `min(code, cardinality)`), so the kernel loop needs no null branch.
/// Later groups overwrite earlier ones on duplicate values, matching the
/// scalar path (groups are disjoint by contract).
pub(crate) fn dict_group_table(d: &DictColumn, groups: &[Vec<String>]) -> Vec<u32> {
    let no_group = groups.len() as u32;
    let mut table = vec![no_group; d.cardinality() + 1];
    for (g, group) in groups.iter().enumerate() {
        for value in group {
            if let Some(code) = d.code_of(value) {
                table[code as usize] = g as u32;
            }
        }
    }
    table
}

/// If every code belongs to a group and the code→group table is
/// non-decreasing (a sorted dictionary partitioned into contiguous code
/// *ranges*), the per-lane table lookup can become `starts.len()` lane-wise
/// compares: group = |{s ∈ starts : code ≥ s}|. Returns the range starts, or
/// `None` when the layout (or a group count past [`DENSE_LANES`]/8) doesn't
/// qualify.
fn contiguous_range_starts(table: &[u32], num_groups: usize) -> Option<Vec<u32>> {
    let card = table.len() - 1; // last slot is the NULL sentinel
    if card == 0 || num_groups == 0 || num_groups > 8 {
        return None;
    }
    let codes = &table[..card];
    let no_group = num_groups as u32;
    if codes.contains(&no_group) || codes.windows(2).any(|w| w[0] > w[1]) {
        return None;
    }
    Some(
        (1..num_groups as u32)
            .map(|g| codes.partition_point(|&t| t < g) as u32)
            .collect(),
    )
}

/// Partition one segment-local column over its global row range into `out`
/// (one bitmap per group, global coordinates).
pub(crate) fn select_in_groups_part(
    column: &Column,
    offset: usize,
    sel: &Bitmap,
    groups: &[Vec<String>],
    spec: &GroupsSpec,
    out: &mut [Bitmap],
) {
    debug_assert_eq!(groups.len(), out.len());
    let path = active_kernel_path();
    let scalar = path == KernelPath::Scalar;
    observe_dispatch("select_in_groups", path);
    match (column, spec) {
        (Column::Str(d), GroupsSpec::Str) => {
            let table = dict_group_table(d, groups);
            if scalar {
                groups_scalar_codes(d.codes(), offset, sel, &table, out);
            } else {
                groups_word_codes(d.codes(), offset, sel, &table, out);
            }
        }
        (
            Column::Bool(p),
            &GroupsSpec::Bool {
                true_group,
                false_group,
            },
        ) => {
            if scalar {
                groups_scalar_bool(
                    p.values(),
                    p.validity(),
                    offset,
                    sel,
                    true_group,
                    false_group,
                    out,
                );
            } else {
                groups_word_bool(
                    p.values(),
                    p.validity(),
                    offset,
                    sel,
                    true_group,
                    false_group,
                    out,
                );
            }
        }
        (Column::Int(p), GroupsSpec::Int(map)) => {
            let lookup = |x: i64| {
                map.binary_search_by(|probe| probe.0.cmp(&x))
                    .ok()
                    .map(|pos| map[pos].1 as usize)
            };
            if scalar {
                groups_scalar_keyed(p.values(), p.validity(), offset, sel, lookup, out);
            } else {
                groups_word_keyed(p.values(), p.validity(), offset, sel, lookup, out);
            }
        }
        (Column::Float(p), GroupsSpec::Float(map)) => {
            // Set predicates on floats match on the decimal rendering, same
            // as `select_in` — a degraded edge case kept for completeness,
            // now in a single pass instead of one pass per group.
            let lookup = |x: f64| {
                let rendered = x.to_string();
                map.binary_search_by(|probe| probe.0.as_str().cmp(rendered.as_str()))
                    .ok()
                    .map(|pos| map[pos].1 as usize)
            };
            if scalar {
                groups_scalar_keyed(p.values(), p.validity(), offset, sel, lookup, out);
            } else {
                groups_word_keyed(p.values(), p.validity(), offset, sel, lookup, out);
            }
        }
        _ => {}
    }
}

/// Scalar reference for dictionary-code grouping (the pre-PR per-row loop,
/// routed through the same code→group table as the word path).
fn groups_scalar_codes(
    codes: &[u32],
    offset: usize,
    sel: &Bitmap,
    table: &[u32],
    out: &mut [Bitmap],
) {
    let card = table.len() - 1;
    let no_group = out.len();
    sel.for_each_one_in(offset, offset + codes.len(), |idx| {
        let code = codes[idx - offset];
        if code != NULL_CODE {
            let g = table[(code as usize).min(card)] as usize;
            if g != no_group {
                out[g].set(idx);
            }
        }
    });
}

/// Word-parallel dictionary-code grouping: per selection word, classify every
/// candidate lane through the code→group table (or range-start compares for
/// contiguous layouts), OR its bit into a per-group accumulator, and flush
/// one word per non-empty group.
fn groups_word_codes(
    codes: &[u32],
    offset: usize,
    sel: &Bitmap,
    table: &[u32],
    out: &mut [Bitmap],
) {
    let card = table.len() - 1;
    let num_groups = out.len();
    let starts = contiguous_range_starts(table, num_groups);
    // Four 16-lane accumulator *stripes* per group plus a trash slot for "no
    // group" (which the NULL sentinel also maps to): stripe `q` of group `g`
    // lives at `accs[g * 4 + q]` and holds lane bits `[16q, 16q + 16)`. A
    // single accumulator per group serialises dense blocks on a 64-deep
    // store-forwarding chain whenever consecutive lanes land in the same
    // group (the common case); four interleaved stripes cut the chain to 16.
    // Dense blocks classify all 64 lanes branch-free and mask candidates at
    // flush time; the sparse walk touches stripe 0 only.
    let mut accs = vec![0u64; 4 * (num_groups + 1)];
    let end = offset + codes.len();
    for_each_sel_word(sel, offset, end, |w, cand| {
        let base = w * WORD_BITS;
        let full = base >= offset && base + WORD_BITS <= end;
        if full && cand.count_ones() >= DENSE_LANES {
            let lanes: &[u32; WORD_BITS] = codes[base - offset..base - offset + WORD_BITS]
                .try_into()
                .expect("full word has exactly WORD_BITS lanes");
            if let Some(starts) = &starts {
                for b in 0..WORD_BITS / 4 {
                    for q in 0..4 {
                        let code = lanes[q * 16 + b];
                        let mut g = 0u32;
                        for &s in starts {
                            g += (code >= s) as u32;
                        }
                        // NULL_CODE compares past every range start, so gate
                        // the bit on validity instead of re-routing the lane.
                        let valid = (code != NULL_CODE) as u64;
                        accs[g as usize * 4 + q] |= valid << (q * 16 + b);
                    }
                }
            } else {
                for b in 0..WORD_BITS / 4 {
                    for q in 0..4 {
                        let code = lanes[q * 16 + b];
                        let g = table[(code as usize).min(card)] as usize;
                        accs[g * 4 + q] |= 1u64 << (q * 16 + b);
                    }
                }
            }
        } else {
            let mut bits = cand;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let code = codes[base + b - offset];
                let g = table[(code as usize).min(card)] as usize;
                accs[g * 4] |= 1u64 << b;
            }
        }
        for g in 0..=num_groups {
            let m = (accs[g * 4] | accs[g * 4 + 1] | accs[g * 4 + 2] | accs[g * 4 + 3]) & cand;
            accs[g * 4..g * 4 + 4].fill(0);
            if m != 0 && g < num_groups {
                out[g].or_word(w, m);
            }
        }
    });
}

/// Scalar reference for boolean grouping (the pre-PR per-row loop).
fn groups_scalar_bool(
    values: &[bool],
    validity: &Bitmap,
    offset: usize,
    sel: &Bitmap,
    true_group: Option<usize>,
    false_group: Option<usize>,
    out: &mut [Bitmap],
) {
    sel.for_each_one_in(offset, offset + values.len(), |idx| {
        let local = idx - offset;
        if !validity.get(local) {
            return;
        }
        let target = if values[local] {
            true_group
        } else {
            false_group
        };
        if let Some(g) = target {
            out[g].set(idx);
        }
    });
}

/// Word-parallel boolean grouping: gather the true-lane mask for the block,
/// then the two group words are single AND/AND-NOTs of the candidate mask.
fn groups_word_bool(
    values: &[bool],
    validity: &Bitmap,
    offset: usize,
    sel: &Bitmap,
    true_group: Option<usize>,
    false_group: Option<usize>,
    out: &mut [Bitmap],
) {
    let end = offset + values.len();
    for_each_sel_word(sel, offset, end, |w, mut cand| {
        let base = w * WORD_BITS;
        cand &= validity_word(validity, offset, base);
        if cand == 0 {
            return;
        }
        let full = base >= offset && base + WORD_BITS <= end;
        let tmask = if full && cand.count_ones() >= DENSE_LANES {
            // Plain lane fold over a fixed-size block — LLVM turns the
            // byte-compare + movemask pattern into vector code on its own.
            let lanes: &[bool; WORD_BITS] = values[base - offset..base - offset + WORD_BITS]
                .try_into()
                .expect("full word has exactly WORD_BITS lanes");
            let mut t = 0u64;
            for (b, &v) in lanes.iter().enumerate() {
                t |= (v as u64) << b;
            }
            t
        } else {
            let mut t = 0u64;
            let mut bits = cand;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                t |= (values[base + b - offset] as u64) << b;
            }
            t
        };
        if let Some(g) = true_group {
            let m = cand & tmask;
            if m != 0 {
                out[g].or_word(w, m);
            }
        }
        if let Some(g) = false_group {
            let m = cand & !tmask;
            if m != 0 {
                out[g].or_word(w, m);
            }
        }
    });
}

/// Scalar reference for keyed (numeric) grouping: one pass, one key lookup
/// per selected non-null row.
fn groups_scalar_keyed<T: Copy>(
    values: &[T],
    validity: &Bitmap,
    offset: usize,
    sel: &Bitmap,
    lookup: impl Fn(T) -> Option<usize>,
    out: &mut [Bitmap],
) {
    sel.for_each_one_in(offset, offset + values.len(), |idx| {
        let local = idx - offset;
        if !validity.get(local) {
            return;
        }
        if let Some(g) = lookup(values[local]) {
            out[g].set(idx);
        }
    });
}

/// Word-level keyed (numeric) grouping: the key lookup stays per-lane (a
/// binary search), but selection/validity are word-masked and output words
/// are accumulated per group — the single-pass replacement for the old
/// one-`select_in`-per-group fallback.
fn groups_word_keyed<T: Copy>(
    values: &[T],
    validity: &Bitmap,
    offset: usize,
    sel: &Bitmap,
    lookup: impl Fn(T) -> Option<usize>,
    out: &mut [Bitmap],
) {
    let mut accs = vec![0u64; out.len()];
    let end = offset + values.len();
    for_each_sel_word(sel, offset, end, |w, mut cand| {
        let base = w * WORD_BITS;
        cand &= validity_word(validity, offset, base);
        if cand == 0 {
            return;
        }
        let mut bits = cand;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if let Some(g) = lookup(values[base + b - offset]) {
                accs[g] |= 1u64 << b;
            }
        }
        for (g, acc) in accs.iter_mut().enumerate() {
            if *acc != 0 {
                out[g].or_word(w, *acc);
                *acc = 0;
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Numeric gather (numeric_values_where)
// ---------------------------------------------------------------------------

/// Append the non-null numeric values selected by `sel` within this part's
/// global row range, in row order. All-ones candidate words push their 64
/// lanes without per-bit iteration. (Exact either way — not path-gated.)
pub(crate) fn numeric_values_part(
    column: &Column,
    offset: usize,
    sel: &Bitmap,
    out: &mut Vec<f64>,
) {
    match column {
        Column::Int(p) => gather_numeric(p.values(), p.validity(), offset, sel, |x| x as f64, out),
        Column::Float(p) => gather_numeric(p.values(), p.validity(), offset, sel, |x| x, out),
        _ => {}
    }
}

fn gather_numeric<T: Copy>(
    values: &[T],
    validity: &Bitmap,
    offset: usize,
    sel: &Bitmap,
    to_f64: impl Fn(T) -> f64,
    out: &mut Vec<f64>,
) {
    let end = offset + values.len();
    for_each_sel_word(sel, offset, end, |w, mut cand| {
        let base = w * WORD_BITS;
        cand &= validity_word(validity, offset, base);
        if cand == u64::MAX && base >= offset && base + WORD_BITS <= end {
            for &x in &values[base - offset..base - offset + WORD_BITS] {
                out.push(to_f64(x));
            }
        } else {
            let mut bits = cand;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push(to_f64(values[base + b - offset]));
            }
        }
    });
}

/// Per-code selected-row counts for one dictionary part: `counts` has
/// `cardinality + 1` slots, the last absorbing NULL lanes. Dense candidate
/// words count all 64 lanes without per-bit iteration. (Exact either way —
/// not path-gated.)
pub(crate) fn count_codes_part(d: &DictColumn, offset: usize, sel: &Bitmap, counts: &mut [usize]) {
    let codes = d.codes();
    let card = d.cardinality();
    debug_assert_eq!(counts.len(), card + 1);
    let end = offset + codes.len();
    for_each_sel_word(sel, offset, end, |w, cand| {
        let base = w * WORD_BITS;
        let full = base >= offset && base + WORD_BITS <= end;
        if full && cand == u64::MAX {
            for &code in &codes[base - offset..base - offset + WORD_BITS] {
                counts[(code as usize).min(card)] += 1;
            }
        } else {
            let mut bits = cand;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let code = codes[base + b - offset];
                counts[(code as usize).min(card)] += 1;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_bounds_small_magnitudes_match_ceil_floor() {
        assert_eq!(int_range_bounds(1.5, 3.5), Some((2, 3)));
        assert_eq!(int_range_bounds(2.0, 3.0), Some((2, 3)));
        assert_eq!(int_range_bounds(-3.5, -1.5), Some((-3, -2)));
        assert_eq!(int_range_bounds(2.5, 2.9), None);
        assert_eq!(int_range_bounds(3.0, 1.0), None);
        assert_eq!(int_range_bounds(f64::NAN, 1.0), None);
        assert_eq!(int_range_bounds(0.0, f64::NAN), None);
        assert_eq!(
            int_range_bounds(f64::NEG_INFINITY, f64::INFINITY),
            Some((i64::MIN, i64::MAX))
        );
    }

    #[test]
    fn int_range_bounds_are_exact_beyond_2_53() {
        // 2^60 as f64 is exact; 2^60 - 1 is not — it rounds *up* to 2^60, so
        // it must be inside the interval [2^60, ...] under the
        // `(x as f64) >= lo` semantics. Naive ceil(lo) would exclude it.
        let lo = (1i64 << 60) as f64;
        let (a, b) = int_range_bounds(lo, f64::INFINITY).unwrap();
        assert_eq!(b, i64::MAX);
        assert!(((a - 1) as f64) < lo && (a as f64) >= lo);
        assert!(a < (1i64 << 60), "2^60 - k values that round up must match");
        // Brute-check the boundary in both directions.
        for x in [a - 2, a - 1, a, a + 1, a + 2] {
            assert_eq!((x as f64) >= lo, x >= a, "x={x}");
        }
        // And the symmetric upper-bound case.
        let hi = -((1i64 << 60) as f64);
        let (_, b) = int_range_bounds(f64::NEG_INFINITY, hi).unwrap();
        for x in [b - 2, b - 1, b, b + 1, b + 2] {
            assert_eq!((x as f64) <= hi, x <= b, "x={x}");
        }
        // Extremes.
        assert_eq!(
            int_range_bounds((i64::MAX as f64) * 2.0, f64::INFINITY),
            None
        );
        assert_eq!(
            int_range_bounds(f64::NEG_INFINITY, (i64::MIN as f64) * 2.0),
            None
        );
    }

    #[test]
    fn contiguous_range_starts_detects_sorted_layouts() {
        // table has the trailing NULL sentinel slot (= num_groups).
        assert_eq!(
            contiguous_range_starts(&[0, 0, 1, 1, 1, 2, 3], 3),
            Some(vec![2, 5])
        );
        // A hole (ungrouped code) disqualifies.
        assert_eq!(contiguous_range_starts(&[0, 3, 1, 1, 3], 3), None);
        // Non-monotone tables disqualify.
        assert_eq!(contiguous_range_starts(&[1, 0, 1, 2], 2), None);
        // Empty dictionaries disqualify.
        assert_eq!(contiguous_range_starts(&[1], 1), None);
    }

    #[test]
    fn kernel_path_override_nests_and_restores() {
        let outer = active_kernel_path();
        with_kernel_path(KernelPath::Scalar, || {
            assert!(force_scalar());
            with_kernel_path(KernelPath::WordParallel, || {
                assert!(!force_scalar());
            });
            assert!(force_scalar());
        });
        assert_eq!(active_kernel_path(), outer);
    }

    #[test]
    fn for_each_sel_word_masks_boundaries() {
        let sel = Bitmap::new_full(200);
        let mut seen: Vec<(usize, u64)> = Vec::new();
        for_each_sel_word(&sel, 70, 190, |w, cand| seen.push((w, cand)));
        let mut bits = Vec::new();
        for (w, cand) in seen {
            for b in 0..64 {
                if (cand >> b) & 1 == 1 {
                    bits.push(w * 64 + b);
                }
            }
        }
        assert_eq!(bits, (70..190).collect::<Vec<_>>());
        // Empty and inverted ranges are no-ops.
        for_each_sel_word(&sel, 5, 5, |_, _| panic!("empty range"));
        for_each_sel_word(&sel, 300, 400, |_, _| panic!("past the end"));
    }
}
